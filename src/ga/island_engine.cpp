#include "ga/island_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "ga/migration.hpp"
#include "ga/multipopulation.hpp"
#include "util/error.hpp"

namespace ldga::ga {

namespace {

/// Strict-improvement tolerance, identical to the synchronous engine's.
constexpr double kImprovementEpsilon = 1e-9;

/// Migrant-pool cap per island: mates for the inter-population
/// crossover; old elites rotate out as fresher ones arrive.
constexpr std::size_t kMigrantPoolCap = 8;

/// One offspring (or initial/immigrant) awaiting its evaluation result.
struct PendingRecord {
  enum class Kind : std::uint8_t {
    kInitial,
    kMutation,    ///< one trial of a mutation application
    kCrossChild,  ///< one child of a crossover application
    kImmigrant,
  };

  HaplotypeIndividual individual;
  Kind kind = Kind::kInitial;
  std::uint32_t op = 0;
  double baseline = 0.0;
  std::int64_t group = -1;        ///< SNP-mutation trial group
  std::int64_t application = -1;  ///< crossover application
  std::uint32_t target_slot = 0;  ///< immigrant destination slot
};

/// "Applied several times in parallel, keep the best": the group
/// resolves when every trial's result has arrived — in any order.
struct TrialGroup {
  std::uint32_t remaining = 0;
  bool any = false;
  HaplotypeIndividual best;
  double baseline = 0.0;
};

/// One crossover application: progress is the mean improvement of its
/// children (§4.3.2), credited when the last child's result arrives.
struct CrossoverApplication {
  std::uint32_t remaining = 0;
  std::uint32_t counted = 0;
  double sum = 0.0;
  std::uint32_t op = 0;
};

}  // namespace

void IslandConfig::validate() const {
  ga.validate();
  if (lanes < 1) throw ConfigError("IslandConfig: lanes must be >= 1");
  if (max_coalesce < 1) {
    throw ConfigError("IslandConfig: max_coalesce must be >= 1");
  }
  if (max_pending < 1) {
    throw ConfigError("IslandConfig: max_pending must be >= 1");
  }
  if (migration_interval < 1 || migration_elites < 1) {
    throw ConfigError("IslandConfig: migration cadence must be >= 1");
  }
  if (rate_sync_interval < 1) {
    throw ConfigError("IslandConfig: rate_sync_interval must be >= 1");
  }
  if (poll_timeout.count() <= 0) {
    throw ConfigError("IslandConfig: poll_timeout must be positive");
  }
}

IslandConfig IslandConfig::validated() const {
  validate();
  return *this;
}

const char* to_string(IslandEvent::Kind kind) {
  switch (kind) {
    case IslandEvent::Kind::kInitialized: return "initialized";
    case IslandEvent::Kind::kImprovement: return "improvement";
    case IslandEvent::Kind::kMigrationOut: return "migration_out";
    case IslandEvent::Kind::kMigrationIn: return "migration_in";
    case IslandEvent::Kind::kImmigrants: return "immigrants";
    case IslandEvent::Kind::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

/// Everything one island thread owns exclusively. No other thread
/// touches a live island's subpopulation, RNG or bookkeeping — the only
/// cross-thread surfaces are the stream, the router, the shared rate
/// controllers and the published fitness ranges.
struct IslandEngine::Island {
  Island(std::uint32_t island_index, std::uint32_t size,
         std::uint32_t capacity, std::uint64_t seed)
      : index(island_index),
        subpop(size, capacity),
        rng(seed ^ (0x9e3779b97f4a7c15ULL * (island_index + 1))) {}

  std::uint32_t index;
  Subpopulation subpop;
  Rng rng;

  RateDelta mutation_delta;
  RateDelta crossover_delta;
  RateSnapshot mutation_snapshot;
  RateSnapshot crossover_snapshot;

  std::unordered_map<std::uint64_t, PendingRecord> pending;
  std::unordered_map<std::int64_t, TrialGroup> groups;
  std::unordered_map<std::int64_t, CrossoverApplication> applications;
  std::int64_t next_group = 0;
  std::int64_t next_application = 0;
  std::uint64_t next_ticket = 0;

  std::uint32_t initials_outstanding = 0;
  bool initialized = false;
  std::uint32_t inflight_applications = 0;

  std::uint64_t steps = 0;  ///< integrated applications this run
  std::uint64_t steps_since_sync = 0;
  std::uint64_t steps_since_migration = 0;
  std::uint64_t immigrant_mark = 0;  ///< global step of the last wave

  double local_best = 0.0;
  bool has_best = false;

  std::vector<HaplotypeIndividual> migrant_pool;
};

/// State shared by the island threads and the coordinator.
struct IslandEngine::Shared {
  const VariationOperators* operators = nullptr;
  const Selector* selector = nullptr;
  stats::EvaluationStream* stream = nullptr;
  /// First completion queue of this engine's block: 0 with a private
  /// stream, the open_queues() base when attached to a shared one.
  std::uint32_t queue_base = 0;
  MigrationRouter* router = nullptr;
  SharedRateController* mutation_rates = nullptr;
  SharedRateController* crossover_rates = nullptr;
  std::uint32_t island_count = 0;
  std::uint32_t min_size = 0;
  std::uint32_t snp_count = 0;

  std::chrono::steady_clock::time_point start;
  std::uint64_t evaluations_base = 0;
  std::uint64_t evaluations_at_start = 0;
  const stats::HaplotypeEvaluator* evaluator = nullptr;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_steps{0};
  std::atomic<std::uint64_t> last_improvement{0};
  std::atomic<std::uint32_t> immigrant_events{0};
  std::atomic<std::uint64_t> failed_offspring{0};
  std::atomic<std::uint32_t> initialized_islands{0};

  /// Published per-island fitness ranges for cross-size normalization.
  /// Islands republish their own range at the rate-sync cadence; a
  /// breeding island normalizes offspring of *other* sizes against the
  /// owner's last published range — a slightly stale range shifts the
  /// progress signal, never correctness.
  mutable std::mutex range_mutex;
  std::vector<FitnessRange> ranges;

  /// Coordinator wakeup: islands signal after every integrated step
  /// (and on stop) so termination checks run event-driven instead of on
  /// a polling cadence. The coordinator still wakes on a coarse
  /// fallback timeout for liveness, so a lost notify costs latency,
  /// never a hang — which is why notifying without holding the mutex
  /// is fine here.
  std::mutex coord_mutex;
  std::condition_variable coord_cv;

  /// Checkpoint rendezvous. `pause_flag` is the cheap loop-top check;
  /// the mutex/cv pair implements the rendezvous itself.
  std::atomic<bool> pause_flag{false};
  std::mutex pause_mutex;
  std::condition_variable pause_cv;
  bool pause_requested = false;
  std::uint32_t paused = 0;

  std::mutex error_mutex;
  std::exception_ptr error;

  std::mutex event_mutex;

  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }
  std::uint64_t evaluations_used() const {
    return evaluations_base + evaluator->evaluation_count() -
           evaluations_at_start;
  }
  double norm(std::uint32_t size, double fitness) const {
    const std::lock_guard<std::mutex> lock(range_mutex);
    return ranges[size - min_size].normalize(fitness);
  }
  void publish_range(std::uint32_t island, FitnessRange range) {
    const std::lock_guard<std::mutex> lock(range_mutex);
    ranges[island] = range;
  }
};

namespace {

using Island = IslandEngine::Island;
using Shared = IslandEngine::Shared;

}  // namespace

IslandEngine::IslandEngine(const stats::HaplotypeEvaluator& evaluator,
                           IslandConfig config,
                           const FeasibilityFilter& filter)
    : evaluator_(&evaluator), config_(std::move(config)), filter_(&filter) {
  GaEngine::check_compatible(evaluator, config_.ga);
  config_.validate();
}

IslandEngine::IslandEngine(const stats::HaplotypeEvaluator& evaluator,
                           IslandConfig config)
    : evaluator_(&evaluator), config_(std::move(config)),
      filter_(&own_filter_) {
  GaEngine::check_compatible(evaluator, config_.ga);
  config_.validate();
}

namespace {

/// Free helpers operating on one island — kept out of the class so the
/// header stays minimal. All take the island by reference from its own
/// thread; `shared` members they touch are the thread-safe surfaces.

void record_error(Shared& shared, std::exception_ptr error) {
  {
    const std::lock_guard<std::mutex> lock(shared.error_mutex);
    if (!shared.error) shared.error = std::move(error);
  }
  shared.stop.store(true, std::memory_order_relaxed);
  shared.coord_cv.notify_one();
}

bool submit(Island& island, Shared& shared, PendingRecord record,
            const std::vector<genomics::SnpIndex>& parent_snps) {
  const std::uint64_t ticket = island.next_ticket++;
  if (!shared.stream->submit(shared.queue_base + island.index, ticket,
                             record.individual.snps(), parent_snps)) {
    return false;  // stream closed: shutting down
  }
  island.pending.emplace(ticket, std::move(record));
  return true;
}

void step_completed(Island& island, Shared& shared) {
  ++island.steps;
  ++island.steps_since_sync;
  ++island.steps_since_migration;
  shared.total_steps.fetch_add(1, std::memory_order_relaxed);
  shared.coord_cv.notify_one();
}

void publish_rates(Island& island, Shared& shared) {
  if (!island.mutation_delta.empty()) {
    shared.mutation_rates->merge(island.index, island.mutation_delta);
    island.mutation_delta.clear();
  }
  if (!island.crossover_delta.empty()) {
    shared.crossover_rates->merge(island.index, island.crossover_delta);
    island.crossover_delta.clear();
  }
  if (island.mutation_snapshot.version !=
      shared.mutation_rates->version()) {
    island.mutation_snapshot = shared.mutation_rates->snapshot();
  }
  if (island.crossover_snapshot.version !=
      shared.crossover_rates->version()) {
    island.crossover_snapshot = shared.crossover_rates->snapshot();
  }
  if (island.subpop.size() > 0) {
    shared.publish_range(island.index, island.subpop.fitness_range());
  }
  island.steps_since_sync = 0;
}

}  // namespace

// The remaining helpers need the engine's config/filter/callback, so
// they are members in spirit; implemented as file-local functions that
// take the engine explicitly to keep the header free of detail types.
namespace {

struct LoopContext {
  IslandEngine* engine;
  const IslandConfig* config;
  const FeasibilityFilter* filter;
  const std::function<void(const IslandEvent&)>* callback;
};

void emit(const LoopContext& ctx, Island& island, Shared& shared,
          IslandEvent::Kind kind) {
  if (!*ctx.callback) return;
  IslandEvent event;
  event.kind = kind;
  event.island = island.index;
  event.haplotype_size = island.subpop.haplotype_size();
  event.step = island.steps;
  event.wall_seconds = shared.wall_seconds();
  if (island.subpop.size() > 0) {
    event.best_fitness = island.subpop.best().fitness();
    event.worst_fitness = island.subpop.worst().fitness();
  }
  event.in_flight = static_cast<std::uint32_t>(island.pending.size());
  event.rate_version = island.mutation_snapshot.version;
  event.evaluations = shared.evaluations_used();
  const std::lock_guard<std::mutex> lock(shared.event_mutex);
  (*ctx.callback)(event);
}

/// Records a strict improvement of the island's best (the global
/// stagnation clock resets) and emits the telemetry event.
void check_improvement(const LoopContext& ctx, Island& island,
                       Shared& shared) {
  if (island.subpop.size() == 0) return;
  const double best = island.subpop.best().fitness();
  if (island.has_best && best <= island.local_best + kImprovementEpsilon) {
    return;
  }
  const bool real = island.has_best;
  island.local_best = best;
  island.has_best = true;
  if (real) {
    shared.last_improvement.store(
        shared.total_steps.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    emit(ctx, island, shared, IslandEvent::Kind::kImprovement);
  }
}

/// Routes an evaluated, feasible offspring to its owner: own size →
/// §4.6 replacement here; other size → forwarded over the migration
/// channel (the breeding island keeps the adaptive-rate credit, the
/// owner gets the individual).
void place_offspring(const LoopContext& ctx, Island& island, Shared& shared,
                     HaplotypeIndividual individual) {
  if (individual.size() == island.subpop.haplotype_size()) {
    if (island.subpop.try_insert(std::move(individual))) {
      check_improvement(ctx, island, shared);
    }
  } else {
    const std::uint32_t owner = individual.size() - shared.min_size;
    (void)shared.router->send(island.index, owner, IslandTag::kOffspring,
                              individual);
  }
}

/// A resolved mutation offspring (the trial-group winner or a size
/// mutation's single child): record progress, then place it.
void finish_mutation(const LoopContext& ctx, Island& island, Shared& shared,
                     HaplotypeIndividual individual, std::uint32_t op,
                     double baseline) {
  const std::uint32_t size = individual.size();
  if (size < ctx.config->ga.min_size || size > ctx.config->ga.max_size) {
    return;
  }
  // §2.3: infeasible offspring are evaluated — the cost is already
  // paid — but never inserted and never credited (same as the sync
  // engine's skip).
  if (ctx.filter->enabled() && !ctx.filter->feasible(individual.snps())) {
    return;
  }
  const double child_norm = shared.norm(size, individual.fitness());
  island.mutation_delta.record(op, child_norm - baseline);
  place_offspring(ctx, island, shared, std::move(individual));
}

void finish_cross_child(const LoopContext& ctx, Island& island,
                        Shared& shared, CrossoverApplication& app,
                        HaplotypeIndividual individual, double baseline) {
  const std::uint32_t size = individual.size();
  if (size < ctx.config->ga.min_size || size > ctx.config->ga.max_size) {
    return;
  }
  if (ctx.filter->enabled() && !ctx.filter->feasible(individual.snps())) {
    return;
  }
  const double child_norm = shared.norm(size, individual.fitness());
  app.sum += child_norm - baseline;
  ++app.counted;
  place_offspring(ctx, island, shared, std::move(individual));
}

void integrate(const LoopContext& ctx, Island& island, Shared& shared,
               const stats::StreamResult& result) {
  auto it = island.pending.find(result.ticket);
  if (it == island.pending.end()) return;
  PendingRecord record = std::move(it->second);
  island.pending.erase(it);
  if (result.failed) {
    shared.failed_offspring.fetch_add(1, std::memory_order_relaxed);
  } else {
    record.individual.set_fitness(result.fitness);
  }

  switch (record.kind) {
    case PendingRecord::Kind::kInitial: {
      if (!result.failed) {
        // try_insert, not add_initial: a cross-size offspring forwarded
        // by an island that finished initializing earlier may already
        // have filled this subpopulation, and then the initial member
        // competes on fitness like any other arrival.
        island.subpop.try_insert(std::move(record.individual));
      }
      if (--island.initials_outstanding == 0) {
        island.initialized = true;
        if (island.subpop.size() > 0) {
          shared.publish_range(island.index, island.subpop.fitness_range());
          island.local_best = island.subpop.best().fitness();
          island.has_best = true;
        }
        const std::uint32_t done =
            shared.initialized_islands.fetch_add(1,
                                                 std::memory_order_relaxed) +
            1;
        if (done == shared.island_count) {
          // Stagnation is measured from full initialization, not from
          // whatever early improvements the first islands made while
          // the last one was still scoring its initial members.
          shared.last_improvement.store(
              shared.total_steps.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        }
        shared.coord_cv.notify_one();
        emit(ctx, island, shared, IslandEvent::Kind::kInitialized);
      }
      break;
    }

    case PendingRecord::Kind::kMutation: {
      if (record.group >= 0) {
        auto git = island.groups.find(record.group);
        if (git == island.groups.end()) break;
        TrialGroup& group = git->second;
        if (!result.failed &&
            (!group.any ||
             record.individual.fitness() > group.best.fitness())) {
          group.any = true;
          group.best = std::move(record.individual);
        }
        if (--group.remaining == 0) {
          if (group.any) {
            finish_mutation(ctx, island, shared, std::move(group.best),
                            MutationKind::kSnp, group.baseline);
          }
          island.groups.erase(git);
          --island.inflight_applications;
          step_completed(island, shared);
        }
      } else {
        if (!result.failed) {
          finish_mutation(ctx, island, shared, std::move(record.individual),
                          record.op, record.baseline);
        }
        --island.inflight_applications;
        step_completed(island, shared);
      }
      break;
    }

    case PendingRecord::Kind::kCrossChild: {
      auto ait = island.applications.find(record.application);
      if (ait == island.applications.end()) break;
      CrossoverApplication& app = ait->second;
      if (!result.failed) {
        finish_cross_child(ctx, island, shared, app,
                           std::move(record.individual), record.baseline);
      }
      if (--app.remaining == 0) {
        if (app.counted > 0) {
          island.crossover_delta.record(
              app.op, app.sum / static_cast<double>(app.counted));
        }
        island.applications.erase(ait);
        --island.inflight_applications;
        step_completed(island, shared);
      }
      break;
    }

    case PendingRecord::Kind::kImmigrant: {
      if (result.failed) break;
      Subpopulation& sub = island.subpop;
      // Replace only if the occupant is still below the current mean —
      // between the wave's scan and this arrival, replacement may have
      // upgraded the slot.
      if (record.target_slot < sub.size() &&
          sub.member(record.target_slot).fitness() < sub.mean_fitness()) {
        sub.replace(record.target_slot, std::move(record.individual));
        check_improvement(ctx, island, shared);
      }
      break;
    }
  }
}

void drain_migration(const LoopContext& ctx, Island& island,
                     Shared& shared) {
  const std::vector<MigrationRouter::Incoming> mail =
      shared.router->drain(island.index);
  if (mail.empty()) return;
  for (const auto& entry : mail) {
    if (entry.tag == IslandTag::kOffspring) {
      if (entry.individual.size() != island.subpop.haplotype_size()) {
        continue;  // routing bug upstream; never insert a wrong size
      }
      if (island.subpop.try_insert(entry.individual)) {
        check_improvement(ctx, island, shared);
      }
    } else if (entry.tag == IslandTag::kElite) {
      // A neighbor's elite: a mate for the inter-population crossover.
      if (island.migrant_pool.size() >= kMigrantPoolCap) {
        island.migrant_pool.erase(island.migrant_pool.begin());
      }
      island.migrant_pool.push_back(entry.individual);
    }
  }
  emit(ctx, island, shared, IslandEvent::Kind::kMigrationIn);
}

void emigrate(const LoopContext& ctx, Island& island, Shared& shared) {
  island.steps_since_migration = 0;
  if (island.subpop.size() == 0) return;
  const std::uint32_t n = shared.island_count;
  bool sent = false;
  // Ring-of-neighbors topology over the size ladder: size k talks to
  // k−1 and k+1, the classes its reduction/augmentation offspring land
  // in anyway.
  for (const std::int64_t delta : {-1, +1}) {
    const std::int64_t to = static_cast<std::int64_t>(island.index) + delta;
    if (to < 0 || to >= static_cast<std::int64_t>(n)) continue;
    for (std::uint32_t e = 0;
         e < ctx.config->migration_elites && e < island.subpop.size(); ++e) {
      // Tournament-pick the travelers; the best always goes first.
      const std::uint32_t pick =
          e == 0 ? island.subpop.best_index()
                 : shared.selector->tournament(island.subpop, island.rng);
      if (shared.router->send(island.index, static_cast<std::uint32_t>(to),
                              IslandTag::kElite,
                              island.subpop.member(pick))) {
        sent = true;
      }
    }
  }
  if (sent) emit(ctx, island, shared, IslandEvent::Kind::kMigrationOut);
}

/// §4.4 random immigrants, per island: when the whole engine has gone
/// a stagnation window without improvement, this island replaces its
/// below-mean members with fresh random individuals. `immigrant_mark`
/// spaces waves out so one long stagnation does not flood the island
/// every loop iteration.
void maybe_immigrants(const LoopContext& ctx, Island& island,
                      Shared& shared) {
  const GaConfig& cfg = ctx.config->ga;
  if (!cfg.schemes.random_immigrants) return;
  const std::uint64_t window =
      static_cast<std::uint64_t>(cfg.random_immigrant_stagnation) *
      ctx.config->applications_per_generation();
  const std::uint64_t total =
      shared.total_steps.load(std::memory_order_relaxed);
  const std::uint64_t reference =
      std::max(shared.last_improvement.load(std::memory_order_relaxed),
               island.immigrant_mark);
  if (total < reference + window) return;
  island.immigrant_mark = total;

  Subpopulation& sub = island.subpop;
  if (sub.size() == 0) return;
  const double mean = sub.mean_fitness();
  bool submitted = false;
  for (std::uint32_t slot = 0; slot < sub.size(); ++slot) {
    if (sub.member(slot).fitness() >= mean) continue;
    PendingRecord record;
    record.individual = ctx.filter->random_feasible(
        shared.snp_count, sub.haplotype_size(), island.rng);
    record.kind = PendingRecord::Kind::kImmigrant;
    record.target_slot = slot;
    if (submit(island, shared, std::move(record), {})) submitted = true;
  }
  if (submitted) {
    shared.immigrant_events.fetch_add(1, std::memory_order_relaxed);
    emit(ctx, island, shared, IslandEvent::Kind::kImmigrants);
  }
}

/// One operator application event — the steady-state analogue of one of
/// the sync engine's crossovers/mutations_per_generation slots. A
/// global-rate miss completes the step immediately (the event elapsed
/// without applying, exactly as in the generational loop).
void breed(const LoopContext& ctx, Island& island, Shared& shared) {
  const GaConfig& cfg = ctx.config->ga;
  const double total_events = static_cast<double>(
      cfg.crossovers_per_generation + cfg.mutations_per_generation);
  const bool crossover =
      island.rng.uniform() * total_events <
      static_cast<double>(cfg.crossovers_per_generation);

  if (crossover) {
    if (!island.rng.bernoulli(cfg.crossover_global_rate)) {
      step_completed(island, shared);
      return;
    }
    std::uint32_t op =
        island.crossover_snapshot.sample(island.rng.uniform());
    const HaplotypeIndividual* mate = nullptr;
    if (op == CrossoverKind::kInter) {
      if (island.migrant_pool.empty()) {
        op = CrossoverKind::kIntra;  // no foreign mate available yet
      } else {
        mate = &island.migrant_pool[island.rng.below(
            island.migrant_pool.size())];
      }
    }
    const Subpopulation& sub = island.subpop;
    if (op == CrossoverKind::kIntra && sub.size() < 2) {
      step_completed(island, shared);
      return;
    }
    const std::uint32_t i1 = shared.selector->tournament(sub, island.rng);
    const HaplotypeIndividual& p1 = sub.member(i1);
    const HaplotypeIndividual* p2 = mate;
    if (op == CrossoverKind::kIntra) {
      std::uint32_t i2 = shared.selector->tournament(sub, island.rng);
      for (int retry = 0; retry < 3 && i2 == i1; ++retry) {
        i2 = shared.selector->tournament(sub, island.rng);
      }
      if (i2 == i1) {
        step_completed(island, shared);
        return;
      }
      p2 = &sub.member(i2);
    }

    auto [c1, c2] = shared.operators->uniform_crossover(p1, *p2, island.rng);
    const double n1 = shared.norm(p1.size(), p1.fitness());
    const double n2 = shared.norm(p2->size(), p2->fitness());

    const std::int64_t app_id = island.next_application++;
    CrossoverApplication app;
    app.remaining = 2;
    app.op = op;
    island.applications.emplace(app_id, app);

    const std::vector<genomics::SnpIndex> first_parent =
        VariationOperators::closer_parent(c1, p1, *p2).snps();
    const std::vector<genomics::SnpIndex> second_parent =
        VariationOperators::closer_parent(c2, p1, *p2).snps();

    PendingRecord first;
    first.individual = std::move(c1);
    first.kind = PendingRecord::Kind::kCrossChild;
    first.op = op;
    first.application = app_id;
    // Intra: children compared with the mean of both parents; inter:
    // each child with its same-size parent (§4.3.2).
    first.baseline = op == CrossoverKind::kIntra ? 0.5 * (n1 + n2) : n1;

    PendingRecord second;
    second.individual = std::move(c2);
    second.kind = PendingRecord::Kind::kCrossChild;
    second.op = op;
    second.application = app_id;
    second.baseline = op == CrossoverKind::kIntra ? 0.5 * (n1 + n2) : n2;

    ++island.inflight_applications;
    if (!submit(island, shared, std::move(first), first_parent) ||
        !submit(island, shared, std::move(second), second_parent)) {
      // Stream closed mid-application: the run is shutting down; the
      // partial application will simply never resolve.
      return;
    }
  } else {
    if (!island.rng.bernoulli(cfg.mutation_global_rate)) {
      step_completed(island, shared);
      return;
    }
    const Subpopulation& sub = island.subpop;
    if (sub.size() < 1) {
      step_completed(island, shared);
      return;
    }
    std::uint32_t op = island.mutation_snapshot.sample(island.rng.uniform());
    const HaplotypeIndividual& parent =
        sub.member(shared.selector->tournament(sub, island.rng));
    const double parent_norm = shared.norm(parent.size(), parent.fitness());

    std::optional<HaplotypeIndividual> child;
    if (op == MutationKind::kReduction) {
      child = shared.operators->reduction(parent, island.rng);
      if (!child) op = MutationKind::kSnp;  // inapplicable at min size
    } else if (op == MutationKind::kAugmentation) {
      child = shared.operators->augmentation(parent, island.rng);
      if (!child) op = MutationKind::kSnp;  // inapplicable at max size
    }

    if (op == MutationKind::kSnp) {
      auto trials = shared.operators->snp_mutation_trials(parent, island.rng);
      const std::int64_t group_id = island.next_group++;
      TrialGroup group;
      group.remaining = static_cast<std::uint32_t>(trials.size());
      group.baseline = parent_norm;
      island.groups.emplace(group_id, group);
      ++island.inflight_applications;
      const std::vector<genomics::SnpIndex> parent_snps = parent.snps();
      for (auto& trial : trials) {
        PendingRecord record;
        record.individual = std::move(trial);
        record.kind = PendingRecord::Kind::kMutation;
        record.op = MutationKind::kSnp;
        record.baseline = parent_norm;
        record.group = group_id;
        if (!submit(island, shared, std::move(record), parent_snps)) return;
      }
    } else {
      PendingRecord record;
      record.individual = std::move(*child);
      record.kind = PendingRecord::Kind::kMutation;
      record.op = op;
      record.baseline = parent_norm;
      ++island.inflight_applications;
      if (!submit(island, shared, std::move(record), parent.snps())) return;
    }
  }
}

/// Checkpoint rendezvous: publish merged state, ack, sleep until the
/// coordinator releases the pause.
void maybe_pause(const LoopContext& ctx, Island& island, Shared& shared) {
  if (!shared.pause_flag.load(std::memory_order_relaxed)) return;
  publish_rates(island, shared);
  drain_migration(ctx, island, shared);
  std::unique_lock<std::mutex> lock(shared.pause_mutex);
  if (!shared.pause_requested) return;
  ++shared.paused;
  shared.pause_cv.notify_all();
  shared.pause_cv.wait(lock, [&] {
    return !shared.pause_requested ||
           shared.stop.load(std::memory_order_relaxed);
  });
  --shared.paused;
  shared.pause_cv.notify_all();
}

}  // namespace

void IslandEngine::island_loop(Island& island, Shared& shared) {
  const LoopContext ctx{this, &config_, filter_, &callback_};
  try {
    while (!shared.stop.load(std::memory_order_relaxed)) {
      maybe_pause(ctx, island, shared);
      drain_migration(ctx, island, shared);

      // Integrate whatever has finished. Block only when there is
      // nothing else to do: results outstanding and the breeding window
      // full (or the island still initializing).
      std::vector<stats::StreamResult> results =
          shared.stream->poll(shared.queue_base + island.index);
      const bool window_full =
          island.inflight_applications >= config_.max_pending;
      if (results.empty() && !island.pending.empty() &&
          (window_full || !island.initialized)) {
        results = shared.stream->wait(shared.queue_base + island.index,
                                      config_.poll_timeout);
      }
      for (const auto& result : results) {
        integrate(ctx, island, shared, result);
      }

      if (!island.initialized || island.subpop.size() == 0) continue;

      if (island.steps_since_sync >= config_.rate_sync_interval) {
        publish_rates(island, shared);
      }
      if (island.steps_since_migration >= config_.migration_interval) {
        emigrate(ctx, island, shared);
      }
      maybe_immigrants(ctx, island, shared);

      while (island.inflight_applications < config_.max_pending &&
             !shared.stop.load(std::memory_order_relaxed) &&
             !shared.pause_flag.load(std::memory_order_relaxed)) {
        breed(ctx, island, shared);
      }
    }
    // Final flush so the run's last rate deltas are not lost to the
    // result collection (total_applications telemetry).
    publish_rates(island, shared);
  } catch (...) {
    record_error(shared, std::current_exception());
  }
}

IslandRunResult IslandEngine::run() {
  const GaConfig& cfg = config_.ga;
  const std::uint32_t snp_count = evaluator_->dataset().snp_count();
  const std::uint32_t island_count = cfg.max_size - cfg.min_size + 1;
  const std::uint32_t apps_per_generation =
      config_.applications_per_generation();

  OperatorConfig op_config;
  op_config.snp_count = snp_count;
  op_config.min_size = cfg.min_size;
  op_config.max_size = cfg.max_size;
  op_config.snp_mutation_trials = cfg.snp_mutation_trials;
  const VariationOperators operators(op_config, *filter_);
  const Selector selector(cfg.selection);

  std::vector<std::string> mutation_names{"snp"};
  if (cfg.schemes.size_mutations) {
    mutation_names.push_back("reduction");
    mutation_names.push_back("augmentation");
  }
  SharedRateController mutation_rates(
      mutation_names, cfg.mutation_global_rate,
      cfg.schemes.size_mutations ? cfg.min_operator_rate : 0.0,
      island_count);
  if (!cfg.schemes.adaptive_mutation) mutation_rates.freeze();

  std::vector<std::string> crossover_names{"intra"};
  if (cfg.schemes.inter_population_crossover) {
    crossover_names.push_back("inter");
  }
  SharedRateController crossover_rates(
      crossover_names, cfg.crossover_global_rate,
      cfg.schemes.inter_population_crossover ? cfg.min_operator_rate : 0.0,
      island_count);
  if (!cfg.schemes.adaptive_crossover) crossover_rates.freeze();

  stats::EvaluationStreamConfig stream_config;
  stream_config.lanes = config_.lanes;
  stream_config.max_coalesce = config_.max_coalesce;
  stream_config.backend.farm_policy = config_.farm_policy;
  stream_config.backend.fault_injector = config_.fault_injector;
  // Private lane pool unless a shared multi-tenant stream was attached
  // (pipelined scan): then this run borrows its block of completion
  // queues and retires them at the end.
  std::optional<stats::EvaluationStream> own_stream;
  stats::EvaluationStream* stream = external_stream_;
  const std::uint32_t queue_base =
      stream != nullptr ? external_queue_base_ : 0;
  if (stream == nullptr) {
    own_stream.emplace(*evaluator_, island_count, stream_config);
    stream = &*own_stream;
  }
  MigrationRouter router(island_count);

  Shared shared;
  shared.operators = &operators;
  shared.selector = &selector;
  shared.stream = stream;
  shared.queue_base = queue_base;
  shared.router = &router;
  shared.mutation_rates = &mutation_rates;
  shared.crossover_rates = &crossover_rates;
  shared.island_count = island_count;
  shared.min_size = cfg.min_size;
  shared.snp_count = snp_count;
  shared.evaluator = evaluator_;
  shared.ranges.resize(island_count);
  shared.start = std::chrono::steady_clock::now();
  shared.evaluations_at_start = evaluator_->evaluation_count();

  const std::vector<std::uint32_t> capacities =
      Multipopulation::allocate_capacities(
          snp_count, cfg.min_size, cfg.max_size, cfg.population_size,
          cfg.min_subpopulation, cfg.allocation);

  std::vector<std::unique_ptr<Island>> islands;
  islands.reserve(island_count);
  for (std::uint32_t i = 0; i < island_count; ++i) {
    islands.push_back(std::make_unique<Island>(i, cfg.min_size + i,
                                               capacities[i], cfg.seed));
    islands.back()->mutation_delta =
        RateDelta(mutation_rates.operator_count());
    islands.back()->crossover_delta =
        RateDelta(crossover_rates.operator_count());
    islands.back()->mutation_snapshot = mutation_rates.snapshot();
    islands.back()->crossover_snapshot = crossover_rates.snapshot();
  }

  IslandRunResult result;
  const std::uint64_t fingerprint =
      cfg.checkpoint.enabled() ? checkpoint_fingerprint(cfg, snp_count) : 0;

  // --- resume or fresh initialization --------------------------------
  if (cfg.checkpoint.resume && checkpoint_exists(cfg.checkpoint.path)) {
    const IslandCheckpoint cp =
        load_island_checkpoint(cfg.checkpoint.path);
    if (cp.fingerprint != fingerprint) {
      throw CheckpointError("checkpoint: " + cfg.checkpoint.path +
                            " was written under an incompatible "
                            "configuration or dataset");
    }
    if (cp.islands.size() != island_count) {
      throw CheckpointError("checkpoint: island count mismatch in " +
                            cfg.checkpoint.path);
    }
    mutation_rates.restore(cp.mutation_lane_progress,
                           cp.mutation_lane_counts);
    crossover_rates.restore(cp.crossover_lane_progress,
                            cp.crossover_lane_counts);
    for (std::uint32_t i = 0; i < island_count; ++i) {
      Island& island = *islands[i];
      const IslandCheckpoint::IslandState& state = cp.islands[i];
      island.subpop.restore_members(state.members);
      island.rng.set_state(state.rng_state);
      island.steps = state.steps;
      island.immigrant_mark = state.immigrant_mark;
      island.initialized = true;
      island.mutation_snapshot = mutation_rates.snapshot();
      island.crossover_snapshot = crossover_rates.snapshot();
      if (island.subpop.size() > 0) {
        shared.ranges[i] = island.subpop.fitness_range();
        island.local_best = island.subpop.best().fitness();
        island.has_best = true;
      }
    }
    shared.total_steps.store(cp.total_steps);
    shared.last_improvement.store(cp.last_improvement_step);
    shared.immigrant_events.store(cp.immigrant_events);
    shared.evaluations_base = cp.evaluations;
    shared.initialized_islands.store(island_count);
    result.resumed_steps = cp.total_steps;
  } else {
    // Each island seeds and submits its own initial members; scoring
    // overlaps across islands from the first moment (no init barrier).
    std::vector<std::vector<HaplotypeIndividual>> seeded(island_count);
    for (const auto& snps : cfg.warm_starts) {
      HaplotypeIndividual candidate{std::vector<genomics::SnpIndex>(snps)};
      auto& bucket = seeded[candidate.size() - cfg.min_size];
      const bool duplicate = std::any_of(
          bucket.begin(), bucket.end(), [&](const HaplotypeIndividual& m) {
            return m.same_snps(candidate);
          });
      if (!duplicate &&
          bucket.size() < capacities[candidate.size() - cfg.min_size]) {
        bucket.push_back(std::move(candidate));
      }
    }
    for (std::uint32_t i = 0; i < island_count; ++i) {
      Island& island = *islands[i];
      std::vector<HaplotypeIndividual> members = std::move(seeded[i]);
      std::uint32_t attempts = 0;
      while (members.size() < island.subpop.capacity() &&
             attempts < 200 * island.subpop.capacity()) {
        ++attempts;
        HaplotypeIndividual candidate = filter_->random_feasible(
            snp_count, island.subpop.haplotype_size(), island.rng);
        const bool duplicate = std::any_of(
            members.begin(), members.end(),
            [&](const HaplotypeIndividual& m) {
              return m.same_snps(candidate);
            });
        if (!duplicate) members.push_back(std::move(candidate));
      }
      island.initials_outstanding =
          static_cast<std::uint32_t>(members.size());
      for (auto& member : members) {
        PendingRecord record;
        record.individual = std::move(member);
        record.kind = PendingRecord::Kind::kInitial;
        if (!submit(island, shared, std::move(record), {})) {
          --island.initials_outstanding;
        }
      }
    }
  }

  // --- island threads + coordinator loop ------------------------------
  std::vector<std::thread> threads;
  threads.reserve(island_count);
  for (auto& island : islands) {
    Island* raw = island.get();
    threads.emplace_back([this, raw, &shared] { island_loop(*raw, shared); });
  }

  const std::uint64_t stagnation_steps =
      static_cast<std::uint64_t>(cfg.stagnation_generations) *
      apps_per_generation;
  const std::uint64_t hard_cap =
      static_cast<std::uint64_t>(cfg.max_generations) * apps_per_generation;
  const std::uint64_t checkpoint_every =
      static_cast<std::uint64_t>(cfg.checkpoint.every) * apps_per_generation;
  std::uint64_t next_checkpoint =
      cfg.checkpoint.enabled()
          ? (result.resumed_steps / checkpoint_every + 1) * checkpoint_every
          : 0;

  // Event-driven coordination: islands signal coord_cv after every
  // integrated step, so termination checks run right when progress
  // happens instead of on a polling cadence that preempts lane threads
  // on small hosts. The coarse fallback timeout keeps the loop live
  // (evaluation-budget and hard-cap checks, and recovery from a lost
  // notify) even when no island advances.
  constexpr std::chrono::milliseconds kCoordinatorFallback{50};
  std::uint64_t observed_steps = ~std::uint64_t{0};
  while (!shared.stop.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(shared.coord_mutex);
      shared.coord_cv.wait_for(lock, kCoordinatorFallback, [&] {
        return shared.stop.load(std::memory_order_relaxed) ||
               shared.total_steps.load(std::memory_order_relaxed) !=
                   observed_steps;
      });
    }
    const std::uint64_t total =
        shared.total_steps.load(std::memory_order_relaxed);
    observed_steps = total;
    if (shared.initialized_islands.load(std::memory_order_relaxed) ==
        island_count) {
      const std::uint64_t reference =
          shared.last_improvement.load(std::memory_order_relaxed);
      if (total >= reference + stagnation_steps) {
        result.terminated_by_stagnation = true;
        shared.stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (total >= hard_cap) {
      shared.stop.store(true, std::memory_order_relaxed);
      break;
    }
    if (cfg.max_evaluations > 0 &&
        shared.evaluations_used() >= cfg.max_evaluations) {
      shared.stop.store(true, std::memory_order_relaxed);
      break;
    }

    if (cfg.checkpoint.enabled() && total >= next_checkpoint) {
      // Rendezvous: pause every island at a loop boundary, snapshot,
      // resume. Islands publish their rate deltas and drain migration
      // before acking, so the cut is consistent (see checkpoint.hpp).
      {
        std::unique_lock<std::mutex> lock(shared.pause_mutex);
        shared.pause_requested = true;
        shared.pause_flag.store(true, std::memory_order_relaxed);
        shared.pause_cv.wait(lock, [&] {
          return shared.paused == island_count ||
                 shared.stop.load(std::memory_order_relaxed);
        });
      }
      if (!shared.stop.load(std::memory_order_relaxed)) {
        IslandCheckpoint cp;
        cp.fingerprint = fingerprint;
        cp.total_steps = shared.total_steps.load(std::memory_order_relaxed);
        cp.evaluations = shared.evaluations_used();
        cp.last_improvement_step =
            shared.last_improvement.load(std::memory_order_relaxed);
        cp.immigrant_events =
            shared.immigrant_events.load(std::memory_order_relaxed);
        cp.mutation_lane_progress = mutation_rates.lane_progress();
        cp.mutation_lane_counts = mutation_rates.lane_counts();
        cp.crossover_lane_progress = crossover_rates.lane_progress();
        cp.crossover_lane_counts = crossover_rates.lane_counts();
        for (const auto& island : islands) {
          IslandCheckpoint::IslandState state;
          state.steps = island->steps;
          state.immigrant_mark = island->immigrant_mark;
          state.rng_state = island->rng.state();
          state.members = island->subpop.members();
          cp.islands.push_back(std::move(state));
        }
        save_island_checkpoint(cfg.checkpoint.path, cp);
        if (callback_) {
          IslandEvent event;
          event.kind = IslandEvent::Kind::kCheckpoint;
          event.step = cp.total_steps;
          event.wall_seconds = shared.wall_seconds();
          event.evaluations = cp.evaluations;
          const std::lock_guard<std::mutex> lock(shared.event_mutex);
          callback_(event);
        }
      }
      {
        const std::lock_guard<std::mutex> lock(shared.pause_mutex);
        shared.pause_requested = false;
        shared.pause_flag.store(false, std::memory_order_relaxed);
      }
      shared.pause_cv.notify_all();
      next_checkpoint += checkpoint_every;
    }
  }

  // Release any island parked in the pause rendezvous, then join.
  {
    const std::lock_guard<std::mutex> lock(shared.pause_mutex);
    shared.pause_requested = false;
    shared.pause_flag.store(false, std::memory_order_relaxed);
  }
  shared.pause_cv.notify_all();
  for (auto& thread : threads) thread.join();
  // Private stream: close() drains the lanes and joins them. Shared
  // stream: retire this run's queue block — blocks until everything
  // this engine submitted is delivered, so the evaluator can be
  // destroyed right after run() returns even on the error path.
  if (own_stream) {
    own_stream->close();
  } else {
    stream->retire_queues(queue_base, island_count);
  }
  router.close();

  {
    const std::lock_guard<std::mutex> lock(shared.error_mutex);
    if (shared.error) std::rethrow_exception(shared.error);
  }

  // close()/retire_queues() flushed this run's work, so results that
  // raced the shutdown are sitting in the completion queues: integrate
  // them single-threaded so no paid-for evaluation is wasted (and a
  // stop during initialization still yields populated islands).
  {
    const LoopContext ctx{this, &config_, filter_, &callback_};
    for (auto& island : islands) {
      for (const auto& result_entry :
           stream->poll(queue_base + island->index)) {
        integrate(ctx, *island, shared, result_entry);
      }
    }
  }

  for (const auto& island : islands) {
    LDGA_EXPECTS(island->subpop.size() > 0);
    result.best_by_size.push_back(island->subpop.best());
    result.steps_by_island.push_back(island->steps);
  }
  result.total_steps = shared.total_steps.load(std::memory_order_relaxed);
  result.evaluations = shared.evaluations_used();
  result.migrations_sent = router.sent();
  result.migrations_received = router.received();
  result.immigrant_events =
      shared.immigrant_events.load(std::memory_order_relaxed);
  result.failed_offspring =
      shared.failed_offspring.load(std::memory_order_relaxed);
  result.wall_seconds = shared.wall_seconds();
  result.stream_stats = stream->stats();
  result.cache_stats = evaluator_->cache_stats();
  result.stage_timings = evaluator_->stage_timings();
  return result;
}

}  // namespace ldga::ga
