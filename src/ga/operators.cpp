#include "ga/operators.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ldga::ga {

void OperatorConfig::validate() const {
  if (snp_count < 2) {
    throw ConfigError("OperatorConfig: need at least 2 SNPs");
  }
  if (min_size < 1 || min_size > max_size) {
    throw ConfigError("OperatorConfig: need 1 <= min_size <= max_size");
  }
  if (max_size > snp_count) {
    throw ConfigError("OperatorConfig: max_size exceeds panel size");
  }
  if (snp_mutation_trials < 1) {
    throw ConfigError("OperatorConfig: snp_mutation_trials must be >= 1");
  }
}

VariationOperators::VariationOperators(OperatorConfig config,
                                       const FeasibilityFilter& filter)
    : config_(config), filter_(&filter) {
  config_.validate();
}

std::vector<HaplotypeIndividual> VariationOperators::snp_mutation_trials(
    const HaplotypeIndividual& parent, Rng& rng) const {
  LDGA_EXPECTS(parent.size() >= 1);
  LDGA_EXPECTS(parent.size() < config_.snp_count);  // need a spare SNP

  std::vector<HaplotypeIndividual> trials;
  trials.reserve(config_.snp_mutation_trials);
  for (std::uint32_t t = 0; t < config_.snp_mutation_trials; ++t) {
    std::vector<SnpIndex> snps = parent.snps();
    const std::size_t position = rng.below(snps.size());
    // Draw a replacement not already in the set; feasibility is
    // best-effort (a handful of retries, then accept).
    for (std::uint32_t attempt = 0; attempt < 20; ++attempt) {
      const auto replacement =
          static_cast<SnpIndex>(rng.below(config_.snp_count));
      if (std::find(snps.begin(), snps.end(), replacement) != snps.end()) {
        continue;
      }
      std::vector<SnpIndex> rest;
      rest.reserve(snps.size() - 1);
      for (std::size_t i = 0; i < snps.size(); ++i) {
        if (i != position) rest.push_back(snps[i]);
      }
      if (!filter_->addition_feasible(rest, replacement) && attempt < 19) {
        continue;
      }
      snps[position] = replacement;
      break;
    }
    trials.emplace_back(std::move(snps));
  }
  return trials;
}

std::optional<HaplotypeIndividual> VariationOperators::reduction(
    const HaplotypeIndividual& parent, Rng& rng) const {
  if (parent.size() <= config_.min_size) return std::nullopt;
  std::vector<SnpIndex> snps = parent.snps();
  snps.erase(snps.begin() +
             static_cast<std::ptrdiff_t>(rng.below(snps.size())));
  return HaplotypeIndividual(std::move(snps));
}

std::optional<HaplotypeIndividual> VariationOperators::augmentation(
    const HaplotypeIndividual& parent, Rng& rng) const {
  if (parent.size() >= config_.max_size) return std::nullopt;
  if (parent.size() >= config_.snp_count) return std::nullopt;
  std::vector<SnpIndex> snps = parent.snps();
  for (std::uint32_t attempt = 0; attempt < 50; ++attempt) {
    const auto addition = static_cast<SnpIndex>(rng.below(config_.snp_count));
    if (parent.contains(addition)) continue;
    if (!filter_->addition_feasible(snps, addition) && attempt < 49) {
      continue;
    }
    snps.push_back(addition);
    return HaplotypeIndividual(std::move(snps));
  }
  return std::nullopt;
}

HaplotypeIndividual VariationOperators::finish_child(
    std::vector<SnpIndex> snps, std::uint32_t target_size,
    const std::vector<SnpIndex>& pool, Rng& rng) const {
  HaplotypeIndividual child(std::move(snps));  // canonicalizes

  // Top up from the parents' pool first (preserves inherited material),
  // then from the panel at large.
  if (child.size() < target_size) {
    std::vector<SnpIndex> shuffled_pool = pool;
    rng.shuffle(std::span<SnpIndex>(shuffled_pool));
    std::vector<SnpIndex> grown = child.snps();
    for (const SnpIndex candidate : shuffled_pool) {
      if (grown.size() >= target_size) break;
      if (std::find(grown.begin(), grown.end(), candidate) != grown.end()) {
        continue;
      }
      grown.push_back(candidate);
    }
    for (std::uint32_t attempt = 0;
         grown.size() < target_size && attempt < 200; ++attempt) {
      const auto candidate =
          static_cast<SnpIndex>(rng.below(config_.snp_count));
      if (std::find(grown.begin(), grown.end(), candidate) == grown.end()) {
        grown.push_back(candidate);
      }
    }
    child = HaplotypeIndividual(std::move(grown));
  }
  // Trim if mixing overshot (cannot happen with the construction below,
  // but keeps the invariant locally obvious).
  while (child.size() > target_size) {
    std::vector<SnpIndex> shrunk = child.snps();
    shrunk.erase(shrunk.begin() +
                 static_cast<std::ptrdiff_t>(rng.below(shrunk.size())));
    child = HaplotypeIndividual(std::move(shrunk));
  }
  return child;
}

std::pair<HaplotypeIndividual, HaplotypeIndividual>
VariationOperators::uniform_crossover(const HaplotypeIndividual& a,
                                      const HaplotypeIndividual& b,
                                      Rng& rng) const {
  LDGA_EXPECTS(a.size() >= 1 && b.size() >= 1);
  const HaplotypeIndividual& small = a.size() <= b.size() ? a : b;
  const HaplotypeIndividual& large = a.size() <= b.size() ? b : a;

  // Uniform mixing over aligned positions of the sorted SNP tables; the
  // large parent's overhang positions stay with the large child.
  std::vector<SnpIndex> child_small, child_large;
  child_small.reserve(small.size());
  child_large.reserve(large.size());
  for (std::uint32_t i = 0; i < small.size(); ++i) {
    if (rng.bernoulli(0.5)) {
      child_small.push_back(small.snps()[i]);
      child_large.push_back(large.snps()[i]);
    } else {
      child_small.push_back(large.snps()[i]);
      child_large.push_back(small.snps()[i]);
    }
  }
  for (std::uint32_t i = small.size(); i < large.size(); ++i) {
    child_large.push_back(large.snps()[i]);
  }

  // Parents' union: preferred material for repairing dedupe shrink.
  std::vector<SnpIndex> pool = small.snps();
  pool.insert(pool.end(), large.snps().begin(), large.snps().end());
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  HaplotypeIndividual first =
      finish_child(std::move(child_small), small.size(), pool, rng);
  HaplotypeIndividual second =
      finish_child(std::move(child_large), large.size(), pool, rng);

  // Return children in (size of a, size of b) order.
  if (a.size() <= b.size()) {
    return {std::move(first), std::move(second)};
  }
  return {std::move(second), std::move(first)};
}

const HaplotypeIndividual& VariationOperators::closer_parent(
    const HaplotypeIndividual& child, const HaplotypeIndividual& a,
    const HaplotypeIndividual& b) {
  const auto overlap = [&child](const HaplotypeIndividual& parent) {
    // Both SNP lists are sorted (canonical form), so a two-pointer
    // sweep counts the intersection.
    std::size_t i = 0, j = 0, shared = 0;
    const auto& c = child.snps();
    const auto& p = parent.snps();
    while (i < c.size() && j < p.size()) {
      if (c[i] < p[j]) {
        ++i;
      } else if (p[j] < c[i]) {
        ++j;
      } else {
        ++shared;
        ++i;
        ++j;
      }
    }
    return shared;
  };
  return overlap(b) > overlap(a) ? b : a;
}

}  // namespace ldga::ga
