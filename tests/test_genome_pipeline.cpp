// The prefilter → selection → windowed-GA pipeline driver: the
// pipelined composition must select exactly the windows the sequential
// reference selects, and on dependency-free window sets reproduce its
// champions bit-for-bit.
#include "analysis/genome_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/packed_genotype.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::analysis {
namespace {

using genomics::PackedGenotypeMatrix;

struct PipelineFixture {
  genomics::Dataset dataset;
  PackedGenotypeMatrix store;
  std::vector<ga::WindowSpec> windows;
  GenomePipelineConfig config;

  PipelineFixture()
      : dataset(ldga::testing::small_synthetic(24, 2, 1234).dataset),
        store(dataset.genotypes()),
        // Stride == window: disjoint windows, so no elite migrates and
        // every window's GA is a pure function of the scan seed —
        // execution order cannot change a result bit.
        windows(ga::plan_windows(24, 6, 6)) {
    config.keep_windows = 2;
    config.scan.ga.min_size = 2;
    config.scan.ga.max_size = 4;
    config.scan.ga.population_size = 30;
    config.scan.ga.min_subpopulation = 5;
    config.scan.ga.crossovers_per_generation = 6;
    config.scan.ga.mutations_per_generation = 10;
    config.scan.ga.stagnation_generations = 15;
    config.scan.ga.max_generations = 40;
    config.scan.ga.seed = 99;
  }

  GenomePipelineResult run() const {
    return run_genome_pipeline(store, dataset.panel(), dataset.statuses(),
                               windows, config);
  }
};

TEST(GenomePipeline, SequentialModeReportsAllStages) {
  const PipelineFixture fixture;
  const GenomePipelineResult result = fixture.run();
  EXPECT_EQ(result.scores.size(), fixture.windows.size());
  EXPECT_EQ(result.selected.size(), fixture.config.keep_windows);
  EXPECT_EQ(result.scan.windows.size(), fixture.config.keep_windows);
  EXPECT_GT(result.scan.evaluations, 0u);
  EXPECT_FALSE(result.scan.best_snps.empty());
  EXPECT_GE(result.total_seconds,
            result.prefilter_seconds * 0.5);  // sanity, not a benchmark
  // Selection equals the standalone ranking.
  const auto expected = top_windows(result.scores, fixture.config.keep_windows);
  ASSERT_EQ(result.selected.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.selected[i].begin, expected[i].begin);
  }
}

TEST(GenomePipeline, PipelinedModeSelectsAndScoresIdentically) {
  const PipelineFixture fixture;
  const GenomePipelineResult sequential = fixture.run();

  for (const std::uint32_t concurrency : {1u, 2u, 4u}) {
    PipelineFixture pipelined;
    pipelined.config.mode = PipelineMode::kPipelined;
    pipelined.config.scan.concurrent_windows = concurrency;
    const GenomePipelineResult result = pipelined.run();

    // Same LD scores, same selected windows (streaming admission is
    // provably the full ranking), same champion — bit-for-bit, since
    // the disjoint windows leave nothing order-dependent.
    ASSERT_EQ(result.scores.size(), sequential.scores.size());
    for (std::size_t w = 0; w < result.scores.size(); ++w) {
      EXPECT_EQ(result.scores[w].score, sequential.scores[w].score);
    }
    ASSERT_EQ(result.selected.size(), sequential.selected.size());
    for (std::size_t i = 0; i < result.selected.size(); ++i) {
      EXPECT_EQ(result.selected[i].begin, sequential.selected[i].begin);
      EXPECT_EQ(result.selected[i].count, sequential.selected[i].count);
    }
    EXPECT_EQ(result.scan.best_fitness, sequential.scan.best_fitness);
    EXPECT_EQ(result.scan.best_snps, sequential.scan.best_snps);
    EXPECT_EQ(result.scan.evaluations, sequential.scan.evaluations);

    // Execution order may differ; per-window outcomes may not.
    for (const auto& window : result.scan.windows) {
      const auto match = std::find_if(
          sequential.scan.windows.begin(), sequential.scan.windows.end(),
          [&](const ga::WindowResult& w) {
            return w.window.begin == window.window.begin;
          });
      ASSERT_NE(match, sequential.scan.windows.end());
      EXPECT_EQ(window.best_snps, match->best_snps);
      EXPECT_EQ(window.best_fitness, match->best_fitness);
    }
  }
}

TEST(GenomePipeline, ConfigRejectsZeroBudget) {
  PipelineFixture fixture;
  fixture.config.keep_windows = 0;
  EXPECT_THROW(fixture.run(), ConfigError);
}

}  // namespace
}  // namespace ldga::analysis
