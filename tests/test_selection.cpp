#include "ga/selection.hpp"

#include <gtest/gtest.h>

namespace ldga::ga {
namespace {

HaplotypeIndividual scored(std::vector<SnpIndex> snps, double fitness) {
  HaplotypeIndividual individual(std::move(snps));
  individual.set_fitness(fitness);
  return individual;
}

TEST(Selector, TournamentPrefersFitter) {
  Subpopulation sub(2, 3);
  sub.add_initial(scored({0, 1}, 1.0));
  sub.add_initial(scored({0, 2}, 10.0));
  sub.add_initial(scored({1, 2}, 5.0));

  Selector selector;
  Rng rng(1);
  int best_picked = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (selector.tournament(sub, rng) == 1) ++best_picked;
  }
  // Binary tournament picks the best with prob 1 - (2/3)^2 = 5/9.
  EXPECT_NEAR(best_picked / static_cast<double>(n), 5.0 / 9.0, 0.02);
}

TEST(Selector, LargerTournamentIsGreedier) {
  Subpopulation sub(2, 4);
  sub.add_initial(scored({0, 1}, 1.0));
  sub.add_initial(scored({0, 2}, 2.0));
  sub.add_initial(scored({0, 3}, 3.0));
  sub.add_initial(scored({1, 2}, 4.0));

  SelectionConfig greedy;
  greedy.tournament_size = 4;
  const Selector selector(greedy);
  Rng rng(2);
  int best_picked = 0;
  const int n = 5'000;
  for (int i = 0; i < n; ++i) {
    if (selector.tournament(sub, rng) == 3) ++best_picked;
  }
  // 1 - (3/4)^4 ≈ 0.684
  EXPECT_NEAR(best_picked / static_cast<double>(n), 0.684, 0.03);
}

TEST(Selector, TournamentSingleMember) {
  Subpopulation sub(2, 2);
  sub.add_initial(scored({0, 1}, 1.0));
  Selector selector;
  Rng rng(3);
  EXPECT_EQ(selector.tournament(sub, rng), 0u);
}

TEST(Selector, PickSubpopulationWeightsByMemberCount) {
  Multipopulation population(20, 2, 3, 30, 5);
  // Fill size-2 with 5 members, size-3 with 15.
  for (std::uint32_t i = 0; i < 5; ++i) {
    population.by_size(2).add_initial(scored({i, i + 6}, 1.0));
  }
  for (std::uint32_t i = 0; i < 15; ++i) {
    population.by_size(3).add_initial(scored({i, i + 1, i + 2}, 1.0));
  }
  Selector selector;
  Rng rng(4);
  int size3 = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (selector.pick_subpopulation(population, rng) == 1) ++size3;
  }
  EXPECT_NEAR(size3 / static_cast<double>(n), 0.75, 0.02);
}

TEST(Selector, PickSubpopulationSkipsSingletonsWhenPossible) {
  Multipopulation population(20, 2, 3, 30, 5);
  population.by_size(2).add_initial(scored({0, 1}, 1.0));  // 1 member
  population.by_size(3).add_initial(scored({0, 1, 2}, 1.0));
  population.by_size(3).add_initial(scored({0, 1, 3}, 1.0));
  Selector selector;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(selector.pick_subpopulation(population, rng), 1u);
  }
}

TEST(Selector, PickOtherExcludesGivenSubpopulation) {
  Multipopulation population(20, 2, 4, 30, 5);
  auto fill = [&](std::uint32_t size, std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) {
      std::vector<SnpIndex> snps;
      for (std::uint32_t j = 0; j < size; ++j) snps.push_back(i + j * 7);
      population.by_size(size).add_initial(scored(std::move(snps), 1.0));
    }
  };
  fill(2, 3);
  fill(3, 3);
  fill(4, 3);
  Selector selector;
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(selector.pick_other_subpopulation(population, 1, rng), 1u);
  }
}

TEST(Selector, PickOtherReturnsExcludeWhenAlone) {
  Multipopulation population(20, 2, 3, 30, 5);
  population.by_size(2).add_initial(scored({0, 1}, 1.0));
  Selector selector;
  Rng rng(7);
  EXPECT_EQ(selector.pick_other_subpopulation(population, 0, rng), 0u);
}

}  // namespace
}  // namespace ldga::ga
