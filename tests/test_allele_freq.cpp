#include "genomics/allele_freq.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ldga::genomics {
namespace {

Dataset dataset_with_column(const std::vector<Genotype>& column) {
  GenotypeMatrix matrix(static_cast<std::uint32_t>(column.size()), 1);
  for (std::uint32_t i = 0; i < column.size(); ++i) {
    matrix.set(i, 0, column[i]);
  }
  return Dataset(SnpPanel::uniform(1), std::move(matrix),
                 std::vector<Status>(column.size(), Status::Unknown));
}

TEST(AlleleFrequency, CountsAllelesByHand) {
  // 4 individuals: 11, 12, 22, 12 -> allele Two count = 0+1+2+1 = 4 of 8.
  const auto dataset = dataset_with_column(
      {Genotype::HomOne, Genotype::Het, Genotype::HomTwo, Genotype::Het});
  const auto table = AlleleFrequencyTable::estimate(dataset);
  EXPECT_DOUBLE_EQ(table.at(0).freq_two, 0.5);
  EXPECT_DOUBLE_EQ(table.at(0).freq_one, 0.5);
  EXPECT_EQ(table.at(0).typed_individuals, 4u);
}

TEST(AlleleFrequency, SkipsMissing) {
  const auto dataset = dataset_with_column(
      {Genotype::HomTwo, Genotype::Missing, Genotype::HomTwo});
  const auto table = AlleleFrequencyTable::estimate(dataset);
  EXPECT_DOUBLE_EQ(table.at(0).freq_two, 1.0);
  EXPECT_EQ(table.at(0).typed_individuals, 2u);
}

TEST(AlleleFrequency, AllMissingGivesZeroTyped) {
  const auto dataset =
      dataset_with_column({Genotype::Missing, Genotype::Missing});
  const auto table = AlleleFrequencyTable::estimate(dataset);
  EXPECT_EQ(table.at(0).typed_individuals, 0u);
  EXPECT_DOUBLE_EQ(table.at(0).freq_two, 0.0);
}

TEST(AlleleFrequency, MafIsTheSmallerFrequency) {
  AlleleFrequency f;
  f.freq_one = 0.7;
  f.freq_two = 0.3;
  EXPECT_DOUBLE_EQ(f.maf(), 0.3);
  f.freq_one = 0.2;
  f.freq_two = 0.8;
  EXPECT_DOUBLE_EQ(f.maf(), 0.2);
}

TEST(AlleleFrequency, MinorFrequencyGap) {
  std::vector<AlleleFrequency> freqs(2);
  freqs[0].freq_one = 0.9;
  freqs[0].freq_two = 0.1;  // maf 0.1
  freqs[1].freq_one = 0.6;
  freqs[1].freq_two = 0.4;  // maf 0.4
  const AlleleFrequencyTable table(std::move(freqs));
  EXPECT_NEAR(table.minor_frequency_gap(0, 1), 0.3, 1e-12);
  EXPECT_NEAR(table.minor_frequency_gap(1, 0), 0.3, 1e-12);
}

TEST(AlleleFrequency, FrequenciesSumToOneOnSynthetic) {
  const auto synthetic = ldga::testing::small_synthetic();
  const auto table = AlleleFrequencyTable::estimate(synthetic.dataset);
  for (SnpIndex s = 0; s < synthetic.dataset.snp_count(); ++s) {
    EXPECT_NEAR(table.at(s).freq_one + table.at(s).freq_two, 1.0, 1e-12);
    EXPECT_GE(table.at(s).maf(), 0.0);
    EXPECT_LE(table.at(s).maf(), 0.5);
  }
}

}  // namespace
}  // namespace ldga::genomics
