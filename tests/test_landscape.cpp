#include "analysis/landscape.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/combinatorics.hpp"

namespace ldga::analysis {
namespace {

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const auto synthetic = ldga::testing::small_synthetic(8, 2, 41);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  return evaluator;
}

LandscapeStudy shared_study() {
  LandscapeConfig config;
  config.top_n = 5;
  config.workers = 2;
  return run_landscape_study(shared_evaluator(), 2, 4, config);
}

TEST(Landscape, SummariesCoverRequestedSizes) {
  const auto study = shared_study();
  ASSERT_EQ(study.summaries.size(), 3u);
  EXPECT_EQ(study.summaries[0].haplotype_size, 2u);
  EXPECT_EQ(study.summaries[2].haplotype_size, 4u);
}

TEST(Landscape, CandidateCountsMatchCombinatorics) {
  const auto study = shared_study();
  EXPECT_EQ(study.summaries[0].candidates, choose(8, 2));
  EXPECT_EQ(study.summaries[1].candidates, choose(8, 3));
  EXPECT_EQ(study.summaries[2].candidates, choose(8, 4));
}

TEST(Landscape, SummaryStatisticsAreCoherent) {
  const auto study = shared_study();
  for (const auto& summary : study.summaries) {
    EXPECT_LE(summary.min, summary.mean);
    EXPECT_LE(summary.mean, summary.max);
    EXPECT_GE(summary.stddev, 0.0);
    ASSERT_FALSE(summary.top.empty());
    EXPECT_NEAR(summary.top.front().fitness, summary.max, 1e-9);
  }
}

TEST(Landscape, ScoresGrowWithSize) {
  // The paper's observation that sizes are not comparable: mean score
  // increases with haplotype size.
  const auto study = shared_study();
  EXPECT_GT(study.summaries[1].mean, study.summaries[0].mean);
  EXPECT_GT(study.summaries[2].mean, study.summaries[1].mean);
}

TEST(Landscape, BuildingBlockReportsHaveValidPercentiles) {
  const auto study = shared_study();
  ASSERT_EQ(study.building_blocks.size(), 2u);  // sizes 3 and 4
  for (const auto& report : study.building_blocks) {
    EXPECT_EQ(report.best_subset_percentile.size(), 5u);  // top_n
    for (const double p : report.best_subset_percentile) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    EXPECT_GE(report.fraction_without_good_blocks, 0.0);
    EXPECT_LE(report.fraction_without_good_blocks, 1.0);
  }
}

TEST(Landscape, FractionConsistentWithPercentiles) {
  LandscapeConfig config;
  config.top_n = 5;
  config.block_quantile = 0.10;
  const auto study = run_landscape_study(shared_evaluator(), 2, 3, config);
  ASSERT_EQ(study.building_blocks.size(), 1u);
  const auto& report = study.building_blocks[0];
  int without = 0;
  for (const double p : report.best_subset_percentile) {
    if (p > config.block_quantile) ++without;
  }
  EXPECT_NEAR(report.fraction_without_good_blocks, without / 5.0, 1e-9);
}

}  // namespace
}  // namespace ldga::analysis
