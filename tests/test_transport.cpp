// The transport layer in isolation: CRC-32, sealed payloads, the frame
// codec, the in-process transport's worker-loss machinery, the process
// supervisor, and the socket transport (Unix and TCP) end to end.
#include "parallel/transport.hpp"

#include <gtest/gtest.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "parallel/frame.hpp"
#include "parallel/process_supervisor.hpp"
#include "parallel/socket_transport.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace ldga::parallel {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return {text.begin(), text.end()};
}

// ---- CRC-32 ----------------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard check value for CRC-32/ISO-HDLC: crc("123456789").
  EXPECT_EQ(util::crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(util::crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(Crc32, IncrementalFeedingMatchesOneShot) {
  const auto data = bytes_of("linkage disequilibrium");
  const auto whole = util::crc32(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const auto first = util::crc32(
        std::span<const std::uint8_t>(data.data(), split));
    const auto second = util::crc32(
        std::span<const std::uint8_t>(data.data() + split,
                                      data.size() - split),
        first);
    EXPECT_EQ(second, whole) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  auto data = bytes_of("payload");
  const auto clean = util::crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1u;
    EXPECT_NE(util::crc32(data), clean) << "flip at " << i;
    data[i] ^= 1u;
  }
}

// ---- sealed payloads (the in-process wire) ---------------------------

TEST(SealedPayload, RoundTrips) {
  const auto payload = bytes_of("hello farm");
  const auto sealed = seal_payload(payload);
  EXPECT_EQ(sealed.size(), payload.size() + 5);
  EXPECT_EQ(sealed[0], kWireProtocolVersion);
  EXPECT_EQ(unseal_payload(sealed), payload);
}

TEST(SealedPayload, EmptyPayloadRoundTrips) {
  EXPECT_TRUE(unseal_payload(seal_payload({})).empty());
}

TEST(SealedPayload, FlippedBitFailsTheChecksum) {
  auto sealed = seal_payload(bytes_of("hello farm"));
  sealed.back() ^= 0x01u;
  EXPECT_THROW(unseal_payload(std::move(sealed)), FrameError);
}

TEST(SealedPayload, WrongVersionIsRejected) {
  auto sealed = seal_payload(bytes_of("hello"));
  sealed[0] = kWireProtocolVersion + 1;
  try {
    unseal_payload(std::move(sealed));
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(SealedPayload, ShortBufferIsRejected) {
  EXPECT_THROW(unseal_payload({kWireProtocolVersion, 0, 0}), FrameError);
}

// ---- frame codec (the socket wire) -----------------------------------

Message sample_message(TaskId source, std::int32_t tag,
                       const std::string& text) {
  Message message;
  message.source = source;
  message.tag = tag;
  message.payload = bytes_of(text);
  return message;
}

TEST(FrameCodec, RoundTripsOneFrame) {
  const auto frame = encode_frame(sample_message(7, 42, "result bytes"));
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  const auto message = decoder.next();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->source, 7);
  EXPECT_EQ(message->tag, 42);
  EXPECT_EQ(message->payload, bytes_of("result bytes"));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, DecodesByteByByte) {
  // A stream transport may deliver any split; the decoder must not care.
  const auto frame = encode_frame(sample_message(1, 2, "dribbled"));
  FrameDecoder decoder;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (i + 1 < frame.size()) {
      decoder.feed(&frame[i], 1);
      EXPECT_FALSE(decoder.next().has_value());
    } else {
      decoder.feed(&frame[i], 1);
    }
  }
  const auto message = decoder.next();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->payload, bytes_of("dribbled"));
}

TEST(FrameCodec, DecodesBackToBackFrames) {
  auto stream = encode_frame(sample_message(3, 1, "first"));
  const auto second = encode_frame(sample_message(4, 2, "second"));
  stream.insert(stream.end(), second.begin(), second.end());
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  EXPECT_EQ(decoder.next()->payload, bytes_of("first"));
  EXPECT_EQ(decoder.next()->payload, bytes_of("second"));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameCodec, CorruptPayloadThrows) {
  auto frame = encode_frame(sample_message(1, 1, "soon to be damaged"));
  frame.back() ^= 0x10u;
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameCodec, BadMagicThrows) {
  auto frame = encode_frame(sample_message(1, 1, "x"));
  frame[0] ^= 0xffu;
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameCodec, WrongVersionThrows) {
  auto frame = encode_frame(sample_message(1, 1, "x"));
  frame[4] = kWireProtocolVersion + 9;
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameCodec, InsaneLengthIsCorruptionNotAllocation) {
  // A flipped bit in the length field must not drive a giant resize.
  const auto frame = encode_frame(sample_message(1, 1, "many bytes here"));
  FrameDecoder decoder(8);  // payload limit below the actual size
  decoder.feed(frame.data(), frame.size());
  try {
    decoder.next();
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_NE(std::string(error.what()).find("limit"), std::string::npos);
  }
}

// ---- in-process transport --------------------------------------------

constexpr std::int32_t kPing = 1;
constexpr std::int32_t kPong = 2;
constexpr std::int32_t kQuit = 3;

/// Doubles every i32 it receives until told to quit. `fault` sabotages
/// the *next* reply only.
Transport::WorkerBody echo_body(FrameFault fault = FrameFault::kNone) {
  return [fault](WorkerChannel& channel) mutable {
    for (;;) {
      Message message;
      try {
        message = channel.receive_from_master();
      } catch (const TransportClosed&) {
        return;
      }
      if (message.tag == kQuit) return;
      Unpacker unpacker = message.unpacker();
      Packer reply;
      reply.pack(unpacker.unpack<std::int32_t>() * 2);
      channel.send_to_master(kPong, std::move(reply), fault);
      fault = FrameFault::kNone;
    }
  };
}

void send_ping(Transport& transport, TaskId worker, std::int32_t value) {
  Packer packer;
  packer.pack(value);
  transport.send_to_worker(worker, kPing, std::move(packer));
}

TEST(InProcessTransport, EchoAcrossSeveralWorkers) {
  auto transport = make_in_process_transport(echo_body());
  EXPECT_EQ(transport->name(), "in-process");
  std::vector<TaskId> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(transport->spawn_worker());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    send_ping(*transport, workers[i], static_cast<std::int32_t>(i) + 10);
  }
  int sum = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const Message reply = transport->receive();
    EXPECT_EQ(reply.tag, kPong);
    EXPECT_TRUE(transport->worker_alive(reply.source));
    sum += reply.unpacker().unpack<std::int32_t>();
  }
  EXPECT_EQ(sum, 2 * (10 + 11 + 12));
  for (const TaskId worker : workers) {
    transport->send_to_worker(worker, kQuit, Packer{});
  }
}

TEST(InProcessTransport, SendToUnknownWorkerIsATransportError) {
  auto transport = make_in_process_transport(echo_body());
  EXPECT_THROW(transport->send_to_worker(1234, kPing, Packer{}),
               TransportError);
}

TEST(InProcessTransport, ReceiveForTimesOutEmpty) {
  auto transport = make_in_process_transport(echo_body());
  (void)transport->spawn_worker();
  EXPECT_FALSE(transport->receive_for(30ms).has_value());
}

TEST(InProcessTransport, WorkerBodyEscapeBecomesWorkerLost) {
  auto transport = make_in_process_transport([](WorkerChannel& channel) {
    (void)channel.receive_from_master();
    throw std::runtime_error("evaluator blew up");
  });
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 1);
  const Message lost = transport->receive();
  EXPECT_EQ(lost.tag, transport_tag::kWorkerLost);
  EXPECT_EQ(lost.source, worker);
  const std::string reason = lost.unpacker().unpack_string();
  EXPECT_NE(reason.find("evaluator blew up"), std::string::npos);
  EXPECT_FALSE(transport->worker_alive(worker));
  EXPECT_THROW(transport->send_to_worker(worker, kPing, Packer{}),
               TransportClosed);
}

TEST(InProcessTransport, DieIsAnnouncedWithItsReason) {
  auto transport = make_in_process_transport([](WorkerChannel& channel) {
    (void)channel.receive_from_master();
    channel.die("injected kill");
  });
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 1);
  const Message lost = transport->receive();
  EXPECT_EQ(lost.tag, transport_tag::kWorkerLost);
  EXPECT_NE(lost.unpacker().unpack_string().find("injected kill"),
            std::string::npos);
}

TEST(InProcessTransport, RetiredWorkerIsSilencedNotAnnounced) {
  auto transport = make_in_process_transport(echo_body());
  const TaskId worker = transport->spawn_worker();
  transport->retire_worker(worker);
  EXPECT_FALSE(transport->worker_alive(worker));
  EXPECT_THROW(transport->send_to_worker(worker, kPing, Packer{}),
               TransportClosed);
  // The worker saw its mailbox close and exited *gracefully*: no
  // kWorkerLost may show up.
  EXPECT_FALSE(transport->receive_for(50ms).has_value());
}

TEST(InProcessTransport, CorruptReplySurfacesAsCorruptFrame) {
  auto transport = make_in_process_transport(echo_body(FrameFault::kCorrupt));
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 21);
  const Message corrupt = transport->receive();
  EXPECT_EQ(corrupt.tag, transport_tag::kCorruptFrame);
  EXPECT_EQ(corrupt.source, worker);
  // In-process, only the one message was damaged — the worker survives
  // and the next exchange is clean.
  EXPECT_TRUE(transport->worker_alive(worker));
  send_ping(*transport, worker, 5);
  const Message reply = transport->receive();
  EXPECT_EQ(reply.tag, kPong);
  EXPECT_EQ(reply.unpacker().unpack<std::int32_t>(), 10);
  transport->send_to_worker(worker, kQuit, Packer{});
}

TEST(InProcessTransport, DroppedReplyNeverArrives) {
  auto transport = make_in_process_transport(echo_body(FrameFault::kDrop));
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 3);
  EXPECT_FALSE(transport->receive_for(50ms).has_value());
  // The worker itself is fine; only the reply was lost.
  send_ping(*transport, worker, 4);
  EXPECT_EQ(transport->receive().unpacker().unpack<std::int32_t>(), 8);
  transport->send_to_worker(worker, kQuit, Packer{});
}

// ---- process supervisor ----------------------------------------------

TEST(ProcessSupervisor, ReapsACleanExit) {
  ProcessSupervisor supervisor;
  const pid_t pid = supervisor.spawn([] {});
  const std::string description = supervisor.reap(pid, 2000ms);
  EXPECT_EQ(description, "exited with status 0");
  EXPECT_FALSE(supervisor.alive(pid));
}

TEST(ProcessSupervisor, ReportsTheExitStatus) {
  ProcessSupervisor supervisor;
  const pid_t pid = supervisor.spawn([] { ::_exit(7); });
  EXPECT_EQ(supervisor.reap(pid, 2000ms), "exited with status 7");
}

TEST(ProcessSupervisor, KillNowReportsTheSignal) {
  ProcessSupervisor supervisor;
  const pid_t pid = supervisor.spawn([] {
    for (;;) std::this_thread::sleep_for(100ms);
  });
  EXPECT_TRUE(supervisor.alive(pid));
  supervisor.kill_now(pid);
  const std::string description = supervisor.reap(pid, 2000ms);
  EXPECT_NE(description.find("killed by signal 9"), std::string::npos);
}

TEST(ProcessSupervisor, GraceExpiryEscalatesToSigkill) {
  ProcessSupervisor supervisor;
  const pid_t pid = supervisor.spawn([] {
    for (;;) std::this_thread::sleep_for(100ms);
  });
  const std::string description = supervisor.reap(pid, 20ms);
  EXPECT_NE(description.find("SIGKILL"), std::string::npos);
  EXPECT_EQ(supervisor.live_children(), 0u);
}

TEST(ProcessSupervisor, TryReapIsNonBlocking) {
  ProcessSupervisor supervisor;
  const pid_t pid = supervisor.spawn([] {
    std::this_thread::sleep_for(30ms);
  });
  // Immediately after spawn the child is (almost certainly) running.
  supervisor.kill_now(pid);
  for (int i = 0; i < 200; ++i) {
    if (auto description = supervisor.try_reap(pid)) {
      EXPECT_FALSE(description->empty());
      return;
    }
    std::this_thread::sleep_for(5ms);
  }
  FAIL() << "child never became reapable";
}

// ---- socket transport ------------------------------------------------

class SocketFamily
    : public ::testing::TestWithParam<SocketTransportConfig::Family> {
 protected:
  SocketTransportConfig config() const {
    SocketTransportConfig config;
    config.family = GetParam();
    return config;
  }
};

TEST_P(SocketFamily, EchoAcrossForkedWorkers) {
  auto transport = make_socket_transport(echo_body(), config());
  std::vector<TaskId> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(transport->spawn_worker());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    send_ping(*transport, workers[i], static_cast<std::int32_t>(i) + 100);
  }
  int sum = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    Message reply = transport->receive();
    while (reply.tag == transport_tag::kHeartbeat) {
      reply = transport->receive();
    }
    EXPECT_EQ(reply.tag, kPong);
    sum += reply.unpacker().unpack<std::int32_t>();
  }
  EXPECT_EQ(sum, 2 * (100 + 101 + 102));
  for (const TaskId worker : workers) {
    transport->send_to_worker(worker, kQuit, Packer{});
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SocketFamily,
                         ::testing::Values(
                             SocketTransportConfig::Family::kUnix,
                             SocketTransportConfig::Family::kTcp));

/// Receives the next non-heartbeat message within a generous deadline.
Message receive_signal(Transport& transport) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto message = transport.receive_for(200ms);
    if (message && message->tag != transport_tag::kHeartbeat) {
      return *message;
    }
  }
  throw std::runtime_error("no signal within the deadline");
}

TEST(SocketTransport, NameReflectsTheFamily) {
  EXPECT_EQ(make_socket_transport(echo_body())->name(), "socket-unix");
  SocketTransportConfig tcp;
  tcp.family = SocketTransportConfig::Family::kTcp;
  EXPECT_EQ(make_socket_transport(echo_body(), tcp)->name(), "socket-tcp");
}

TEST(SocketTransport, DyingWorkerIsAnnouncedWithItsExitStatus) {
  auto transport = make_socket_transport([](WorkerChannel& channel) {
    (void)channel.receive_from_master();
    channel.die("unused over sockets");
  });
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 1);
  const Message lost = receive_signal(*transport);
  EXPECT_EQ(lost.tag, transport_tag::kWorkerLost);
  EXPECT_EQ(lost.source, worker);
  // die() is _exit(137), observed by the master as EOF + that status.
  EXPECT_NE(lost.unpacker().unpack_string().find("exited with status 137"),
            std::string::npos);
  EXPECT_FALSE(transport->worker_alive(worker));
}

TEST(SocketTransport, SigkilledWorkerIsAnnounced) {
  auto transport = make_socket_transport([](WorkerChannel& channel) {
    // Report our pid, then wait for work that never comes.
    Packer packer;
    packer.pack(static_cast<std::int64_t>(::getpid()));
    channel.send_to_master(kPong, std::move(packer));
    for (;;) (void)channel.receive_from_master();
  });
  const TaskId worker = transport->spawn_worker();
  const Message hello = receive_signal(*transport);
  ASSERT_EQ(hello.tag, kPong);
  const auto pid =
      static_cast<pid_t>(hello.unpacker().unpack<std::int64_t>());
  ::kill(pid, SIGKILL);
  const Message lost = receive_signal(*transport);
  EXPECT_EQ(lost.tag, transport_tag::kWorkerLost);
  EXPECT_EQ(lost.source, worker);
  EXPECT_NE(lost.unpacker().unpack_string().find("killed by signal 9"),
            std::string::npos);
}

TEST(SocketTransport, DisconnectingWorkerIsAnnounced) {
  auto transport = make_socket_transport([](WorkerChannel& channel) {
    (void)channel.receive_from_master();
    channel.disconnect();
  });
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 1);
  const Message lost = receive_signal(*transport);
  EXPECT_EQ(lost.tag, transport_tag::kWorkerLost);
  EXPECT_EQ(lost.source, worker);
}

TEST(SocketTransport, CorruptStreamKillsTheWorker) {
  auto transport = make_socket_transport(echo_body(FrameFault::kCorrupt));
  const TaskId worker = transport->spawn_worker();
  send_ping(*transport, worker, 1);
  // A corrupt socket stream is unrecoverable: first the typed corruption
  // report, then the loss of the (killed) worker.
  const Message corrupt = receive_signal(*transport);
  EXPECT_EQ(corrupt.tag, transport_tag::kCorruptFrame);
  EXPECT_EQ(corrupt.source, worker);
  EXPECT_FALSE(transport->worker_alive(worker));
  const Message lost = receive_signal(*transport);
  EXPECT_EQ(lost.tag, transport_tag::kWorkerLost);
  EXPECT_EQ(lost.source, worker);
}

TEST(SocketTransport, IdleWorkerHeartbeats) {
  SocketTransportConfig config;
  config.heartbeat_interval = 20ms;
  auto transport = make_socket_transport(echo_body(), config);
  const TaskId worker = transport->spawn_worker();
  const auto beat = transport->receive_for(2000ms);
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(beat->tag, transport_tag::kHeartbeat);
  EXPECT_EQ(beat->source, worker);
  EXPECT_TRUE(transport->worker_alive(worker));
  transport->send_to_worker(worker, kQuit, Packer{});
}

TEST(SocketTransport, RetireClosesWithoutAnnouncement) {
  auto transport = make_socket_transport(echo_body());
  const TaskId worker = transport->spawn_worker();
  transport->retire_worker(worker);
  EXPECT_FALSE(transport->worker_alive(worker));
  EXPECT_THROW(transport->send_to_worker(worker, kPing, Packer{}),
               TransportClosed);
  const auto message = transport->receive_for(200ms);
  if (message.has_value()) {
    // Only a heartbeat sent before the shutdown may be in flight.
    EXPECT_EQ(message->tag, transport_tag::kHeartbeat);
  }
}

TEST(SocketTransport, RejectsBadConfig) {
  SocketTransportConfig config;
  config.heartbeat_interval = std::chrono::milliseconds(0);
  EXPECT_THROW(make_socket_transport(echo_body(), config), ConfigError);
}

TEST(SocketTransport, LargePayloadsSurviveTheStream) {
  // Bigger than one read() buffer, so reassembly is exercised.
  auto transport = make_socket_transport([](WorkerChannel& channel) {
    for (;;) {
      Message message;
      try {
        message = channel.receive_from_master();
      } catch (const TransportClosed&) {
        return;
      }
      if (message.tag == kQuit) return;
      auto values =
          message.unpacker().unpack_vector<std::uint32_t>();
      for (auto& value : values) value += 1;
      Packer reply;
      reply.pack_vector(values);
      channel.send_to_master(kPong, std::move(reply));
    }
  });
  const TaskId worker = transport->spawn_worker();
  std::vector<std::uint32_t> values(200000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(i);
  }
  Packer packer;
  packer.pack_vector(values);
  transport->send_to_worker(worker, kPing, std::move(packer));
  const Message reply = receive_signal(*transport);
  ASSERT_EQ(reply.tag, kPong);
  const auto result = reply.unpacker().unpack_vector<std::uint32_t>();
  ASSERT_EQ(result.size(), values.size());
  EXPECT_EQ(result.front(), 1u);
  EXPECT_EQ(result.back(), values.back() + 1);
  transport->send_to_worker(worker, kQuit, Packer{});
}

}  // namespace
}  // namespace ldga::parallel
