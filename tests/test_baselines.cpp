#include <gtest/gtest.h>

#include "analysis/hill_climb.hpp"
#include "analysis/random_search.hpp"
#include "test_support.hpp"

namespace ldga::analysis {
namespace {

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const auto synthetic = ldga::testing::small_synthetic(10, 2, 61);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  return evaluator;
}

TEST(RandomSearch, RespectsEvaluationBudget) {
  RandomSearchConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.max_evaluations = 100;
  const ga::FeasibilityFilter filter;
  const auto result = random_search(shared_evaluator(), config, filter);
  // The budget is a stop condition checked per draw: allow a tiny
  // overshoot of one evaluation at most.
  EXPECT_GE(result.evaluations, 100u);
  EXPECT_LE(result.evaluations, 101u);
}

TEST(RandomSearch, FillsEverySizeClassEventually) {
  RandomSearchConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.max_evaluations = 150;
  config.seed = 2;
  const ga::FeasibilityFilter filter;
  const auto result = random_search(shared_evaluator(), config, filter);
  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(result.best_by_size[i].evaluated());
    EXPECT_EQ(result.best_by_size[i].size(), 2u + i);
  }
}

TEST(RandomSearch, DeterministicForSeed) {
  RandomSearchConfig config;
  config.max_size = 3;
  config.max_evaluations = 60;
  config.seed = 9;
  const ga::FeasibilityFilter filter;
  // Use two fresh evaluators so the shared cache can't couple the runs.
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 61);
  const stats::HaplotypeEvaluator ev1(synthetic.dataset);
  const stats::HaplotypeEvaluator ev2(synthetic.dataset);
  const auto a = random_search(ev1, config, filter);
  const auto b = random_search(ev2, config, filter);
  for (std::size_t i = 0; i < a.best_by_size.size(); ++i) {
    EXPECT_TRUE(a.best_by_size[i].same_snps(b.best_by_size[i]));
  }
}

TEST(HillClimb, FindsTheExactOptimumOfItsNeighborhoodOnTinyProblems) {
  // With a generous budget on a small panel, restarted steepest-ascent
  // must reach the global optimum of size 2 (found by enumeration).
  HillClimbConfig config;
  config.haplotype_size = 2;
  config.max_evaluations = 2'000;
  const ga::FeasibilityFilter filter;
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 61);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  const auto result = hill_climb(evaluator, config, filter);

  double best = -1.0;
  for (genomics::SnpIndex a = 0; a < 10; ++a) {
    for (genomics::SnpIndex b = a + 1; b < 10; ++b) {
      best = std::max(
          best, evaluator.evaluate_full(std::vector<genomics::SnpIndex>{a, b})
                    .fitness);
    }
  }
  EXPECT_NEAR(result.best.fitness(), best, 1e-9);
}

TEST(HillClimb, TracksRestartsAndOptima) {
  HillClimbConfig config;
  config.haplotype_size = 3;
  config.max_evaluations = 500;
  const ga::FeasibilityFilter filter;
  const auto result = hill_climb(shared_evaluator(), config, filter);
  EXPECT_GE(result.restarts, 1u);
  EXPECT_TRUE(result.best.evaluated());
  EXPECT_EQ(result.best.size(), 3u);
}

TEST(HillClimb, FirstImprovementAlsoClimbs) {
  HillClimbConfig config;
  config.haplotype_size = 2;
  config.best_improvement = false;
  config.max_evaluations = 300;
  config.seed = 5;
  const ga::FeasibilityFilter filter;
  const auto result = hill_climb(shared_evaluator(), config, filter);
  EXPECT_TRUE(result.best.evaluated());
}

TEST(HillClimb, BudgetIsRespected) {
  HillClimbConfig config;
  config.haplotype_size = 2;
  config.max_evaluations = 50;
  const ga::FeasibilityFilter filter;
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 61);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  const auto result = hill_climb(evaluator, config, filter);
  EXPECT_LE(result.evaluations, 51u);
}

}  // namespace
}  // namespace ldga::analysis
