#include "parallel/master_slave.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

namespace ldga::parallel {
namespace {

TEST(MasterSlaveFarm, ComputesResultsInTaskOrder) {
  MasterSlaveFarm<double, double> farm(3, [](const double& x) {
    return x * x;
  });
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto results = farm.run(tasks);
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] * tasks[i]);
  }
}

TEST(MasterSlaveFarm, VectorPayloads) {
  MasterSlaveFarm<std::vector<std::uint32_t>, double> farm(
      2, [](const std::vector<std::uint32_t>& v) {
        double sum = 0.0;
        for (const auto x : v) sum += x;
        return sum;
      });
  const std::vector<std::vector<std::uint32_t>> tasks{
      {1, 2, 3}, {}, {10}, {4, 4}};
  const auto results = farm.run(tasks);
  EXPECT_DOUBLE_EQ(results[0], 6.0);
  EXPECT_DOUBLE_EQ(results[1], 0.0);
  EXPECT_DOUBLE_EQ(results[2], 10.0);
  EXPECT_DOUBLE_EQ(results[3], 8.0);
}

TEST(MasterSlaveFarm, EmptyBatch) {
  MasterSlaveFarm<double, double> farm(2, [](const double& x) { return x; });
  EXPECT_TRUE(farm.run(std::vector<double>{}).empty());
  EXPECT_EQ(farm.stats().phases, 1u);
}

TEST(MasterSlaveFarm, FewerTasksThanSlaves) {
  MasterSlaveFarm<double, double> farm(8, [](const double& x) {
    return -x;
  });
  const std::vector<double> tasks{1.0, 2.0};
  const auto results = farm.run(tasks);
  EXPECT_DOUBLE_EQ(results[0], -1.0);
  EXPECT_DOUBLE_EQ(results[1], -2.0);
}

TEST(MasterSlaveFarm, MultiplePhasesReuseSlaves) {
  std::atomic<int> calls{0};
  MasterSlaveFarm<double, double> farm(2, [&calls](const double& x) {
    ++calls;
    return x + 1.0;
  });
  for (int phase = 0; phase < 5; ++phase) {
    const std::vector<double> tasks{0.0, 1.0, 2.0};
    const auto results = farm.run(tasks);
    EXPECT_DOUBLE_EQ(results[2], 3.0);
  }
  EXPECT_EQ(calls.load(), 15);
  EXPECT_EQ(farm.stats().phases, 5u);
}

TEST(MasterSlaveFarm, StatsAccountForEveryTask) {
  MasterSlaveFarm<double, double> farm(4, [](const double& x) { return x; });
  std::vector<double> tasks(100);
  std::iota(tasks.begin(), tasks.end(), 0.0);
  farm.run(tasks);
  const auto& stats = farm.stats();
  const std::uint64_t total = std::accumulate(
      stats.per_slave_tasks.begin(), stats.per_slave_tasks.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, 100u);
}

TEST(MasterSlaveFarm, LoadIsSharedUnderSlowTasks) {
  // With a deliberately uneven workload, dynamic scheduling should give
  // every slave at least one task.
  MasterSlaveFarm<double, double> farm(4, [](const double& x) {
    if (x < 2.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    return x;
  });
  std::vector<double> tasks(40);
  std::iota(tasks.begin(), tasks.end(), 0.0);
  farm.run(tasks);
  for (const auto n : farm.stats().per_slave_tasks) {
    EXPECT_GE(n, 1u);
  }
}

TEST(MasterSlaveFarm, WorkerExceptionSurfacesAsParallelError) {
  MasterSlaveFarm<double, double> farm(2, [](const double& x) {
    if (x == 3.0) throw std::runtime_error("bad input 3");
    return x;
  });
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(farm.run(tasks), ParallelError);
}

TEST(MasterSlaveFarm, SurvivesAFailedPhase) {
  // After a phase aborts on a worker error, the next phase must not be
  // corrupted by stale replies from the aborted one.
  MasterSlaveFarm<double, double> farm(3, [](const double& x) {
    if (x < 0.0) throw std::runtime_error("negative");
    return x * 10.0;
  });
  EXPECT_THROW(farm.run(std::vector<double>{1.0, -1.0, 2.0, 3.0, 4.0}),
               ParallelError);
  const std::vector<double> good{5.0, 6.0, 7.0};
  const auto results = farm.run(good);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0], 50.0);
  EXPECT_DOUBLE_EQ(results[1], 60.0);
  EXPECT_DOUBLE_EQ(results[2], 70.0);
}

class FarmSlaveCount : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FarmSlaveCount, ResultsIndependentOfSlaveCount) {
  // The GA relies on this: identical results for any worker count.
  MasterSlaveFarm<std::vector<std::uint32_t>, double> farm(
      GetParam(), [](const std::vector<std::uint32_t>& v) {
        double product = 1.0;
        for (const auto x : v) product *= (x + 0.5);
        return product;
      });
  std::vector<std::vector<std::uint32_t>> tasks;
  for (std::uint32_t i = 0; i < 30; ++i) {
    tasks.push_back({i, i + 1, (i * 7) % 13});
  }
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double expected = 1.0;
    for (const auto x : tasks[i]) expected *= (x + 0.5);
    EXPECT_DOUBLE_EQ(results[i], expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FarmSlaveCount,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace ldga::parallel
