#include "parallel/master_slave.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <thread>

#include "parallel/fault_injection.hpp"

namespace ldga::parallel {
namespace {

TEST(MasterSlaveFarm, ComputesResultsInTaskOrder) {
  MasterSlaveFarm<double, double> farm(3, [](const double& x) {
    return x * x;
  });
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto results = farm.run(tasks);
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] * tasks[i]);
  }
}

TEST(MasterSlaveFarm, VectorPayloads) {
  MasterSlaveFarm<std::vector<std::uint32_t>, double> farm(
      2, [](const std::vector<std::uint32_t>& v) {
        double sum = 0.0;
        for (const auto x : v) sum += x;
        return sum;
      });
  const std::vector<std::vector<std::uint32_t>> tasks{
      {1, 2, 3}, {}, {10}, {4, 4}};
  const auto results = farm.run(tasks);
  EXPECT_DOUBLE_EQ(results[0], 6.0);
  EXPECT_DOUBLE_EQ(results[1], 0.0);
  EXPECT_DOUBLE_EQ(results[2], 10.0);
  EXPECT_DOUBLE_EQ(results[3], 8.0);
}

TEST(MasterSlaveFarm, EmptyBatch) {
  MasterSlaveFarm<double, double> farm(2, [](const double& x) { return x; });
  EXPECT_TRUE(farm.run(std::vector<double>{}).empty());
  EXPECT_EQ(farm.stats().phases, 1u);
}

TEST(MasterSlaveFarm, FewerTasksThanSlaves) {
  MasterSlaveFarm<double, double> farm(8, [](const double& x) {
    return -x;
  });
  const std::vector<double> tasks{1.0, 2.0};
  const auto results = farm.run(tasks);
  EXPECT_DOUBLE_EQ(results[0], -1.0);
  EXPECT_DOUBLE_EQ(results[1], -2.0);
}

TEST(MasterSlaveFarm, MultiplePhasesReuseSlaves) {
  std::atomic<int> calls{0};
  MasterSlaveFarm<double, double> farm(2, [&calls](const double& x) {
    ++calls;
    return x + 1.0;
  });
  for (int phase = 0; phase < 5; ++phase) {
    const std::vector<double> tasks{0.0, 1.0, 2.0};
    const auto results = farm.run(tasks);
    EXPECT_DOUBLE_EQ(results[2], 3.0);
  }
  EXPECT_EQ(calls.load(), 15);
  EXPECT_EQ(farm.stats().phases, 5u);
}

TEST(MasterSlaveFarm, StatsAccountForEveryTask) {
  MasterSlaveFarm<double, double> farm(4, [](const double& x) { return x; });
  std::vector<double> tasks(100);
  std::iota(tasks.begin(), tasks.end(), 0.0);
  farm.run(tasks);
  const auto& stats = farm.stats();
  const std::uint64_t total = std::accumulate(
      stats.per_slave_tasks.begin(), stats.per_slave_tasks.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, 100u);
}

TEST(MasterSlaveFarm, LoadIsSharedUnderSlowTasks) {
  // With a deliberately uneven workload, dynamic scheduling should give
  // every slave at least one task.
  MasterSlaveFarm<double, double> farm(4, [](const double& x) {
    if (x < 2.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    return x;
  });
  std::vector<double> tasks(40);
  std::iota(tasks.begin(), tasks.end(), 0.0);
  farm.run(tasks);
  for (const auto n : farm.stats().per_slave_tasks) {
    EXPECT_GE(n, 1u);
  }
}

TEST(MasterSlaveFarm, WorkerExceptionSurfacesAsParallelError) {
  MasterSlaveFarm<double, double> farm(2, [](const double& x) {
    if (x == 3.0) throw std::runtime_error("bad input 3");
    return x;
  });
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(farm.run(tasks), ParallelError);
}

TEST(MasterSlaveFarm, SurvivesAFailedPhase) {
  // After a phase aborts on a worker error, the next phase must not be
  // corrupted by stale replies from the aborted one.
  MasterSlaveFarm<double, double> farm(3, [](const double& x) {
    if (x < 0.0) throw std::runtime_error("negative");
    return x * 10.0;
  });
  EXPECT_THROW(farm.run(std::vector<double>{1.0, -1.0, 2.0, 3.0, 4.0}),
               ParallelError);
  const std::vector<double> good{5.0, 6.0, 7.0};
  const auto results = farm.run(good);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0], 50.0);
  EXPECT_DOUBLE_EQ(results[1], 60.0);
  EXPECT_DOUBLE_EQ(results[2], 70.0);
}

class FarmSlaveCount : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FarmSlaveCount, ResultsIndependentOfSlaveCount) {
  // The GA relies on this: identical results for any worker count.
  MasterSlaveFarm<std::vector<std::uint32_t>, double> farm(
      GetParam(), [](const std::vector<std::uint32_t>& v) {
        double product = 1.0;
        for (const auto x : v) product *= (x + 0.5);
        return product;
      });
  std::vector<std::vector<std::uint32_t>> tasks;
  for (std::uint32_t i = 0; i < 30; ++i) {
    tasks.push_back({i, i + 1, (i * 7) % 13});
  }
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double expected = 1.0;
    for (const auto x : tasks[i]) expected *= (x + 0.5);
    EXPECT_DOUBLE_EQ(results[i], expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FarmSlaveCount,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---- fault tolerance (FarmPolicy + FaultInjector) --------------------

TEST(FaultInjector, DecisionsAreDeterministicAcrossInstances) {
  FaultInjector::Config config;
  config.seed = 42;
  config.throw_probability = 0.3;
  config.stale_probability = 0.2;
  config.delay_probability = 0.1;
  FaultInjector a(config);
  FaultInjector b(config);
  for (std::uint64_t phase = 1; phase <= 3; ++phase) {
    for (std::uint64_t index = 0; index < 25; ++index) {
      // Two decides per coordinate: the second sees attempt 1, and both
      // injectors must agree on every attempt.
      EXPECT_EQ(a.decide(phase, index).kind, b.decide(phase, index).kind);
      EXPECT_EQ(a.decide(phase, index).kind, b.decide(phase, index).kind);
    }
  }
}

TEST(FaultInjector, ScheduledFaultsHitFirstAttemptOnly) {
  FaultInjector::Config config;
  config.throw_on_tasks = {4};
  FaultInjector injector(config);
  EXPECT_EQ(injector.decide(1, 4).kind, FaultDecision::Kind::kThrow);
  // The retry (attempt 1) of the same coordinates must recover.
  EXPECT_EQ(injector.decide(1, 4).kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(injector.decide(1, 5).kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(injector.injected_throws(), 1u);
}

TEST(FaultInjector, WrapInjectsIntoPlainWorkers) {
  FaultInjector::Config config;
  config.throw_on_tasks = {0};
  FaultInjector injector(config);
  auto worker = injector.wrap([](const double& x) { return x * 3.0; });
  EXPECT_THROW(worker(1.0), FaultInjected);
  EXPECT_DOUBLE_EQ(worker(2.0), 6.0);
  EXPECT_EQ(injector.injected_throws(), 1u);
}

TEST(FaultInjector, RejectsBadConfig) {
  FaultInjector::Config config;
  config.throw_probability = 1.5;
  EXPECT_THROW(FaultInjector{config}, ConfigError);
}

TEST(FarmFaultTolerance, RetryOnAnotherSlaveRecoversScheduledFaults) {
  FaultInjector::Config config;
  config.throw_on_tasks = {0, 3};
  auto injector = std::make_shared<FaultInjector>(config);
  MasterSlaveFarm<double, double> farm(
      3, [](const double& x) { return x * 2.0; }, FarmPolicy{}, injector);
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] * 2.0);
  }
  EXPECT_EQ(farm.stats().failures, 2u);
  EXPECT_EQ(farm.stats().retries, 2u);
  EXPECT_EQ(injector->injected_throws(), 2u);
}

TEST(FarmFaultTolerance, ExhaustedRetriesCarryTaskIndexAndHistory) {
  MasterSlaveFarm<double, double> farm(
      2, [](const double&) -> double {
        throw std::runtime_error("always broken");
      });
  try {
    farm.run(std::vector<double>{7.0});
    FAIL() << "expected FarmPhaseError";
  } catch (const FarmPhaseError& error) {
    ASSERT_TRUE(error.task_index().has_value());
    EXPECT_EQ(*error.task_index(), 0u);
    // First attempt + default max_task_retries (2) reassignments.
    EXPECT_EQ(error.attempts().size(), 3u);
    for (const auto& attempt : error.attempts()) {
      EXPECT_NE(attempt.message.find("always broken"), std::string::npos);
    }
    const std::string what = error.what();
    EXPECT_NE(what.find("task 0"), std::string::npos);
    EXPECT_NE(what.find("always broken"), std::string::npos);
  }
}

TEST(FarmFaultTolerance, FewerTasksThanSlavesUnderFaults) {
  FaultInjector::Config config;
  config.throw_on_tasks = {1};
  auto injector = std::make_shared<FaultInjector>(config);
  MasterSlaveFarm<double, double> farm(
      8, [](const double& x) { return -x; }, FarmPolicy{}, injector);
  const auto results = farm.run(std::vector<double>{1.0, 2.0});
  EXPECT_DOUBLE_EQ(results[0], -1.0);
  EXPECT_DOUBLE_EQ(results[1], -2.0);
  EXPECT_EQ(farm.stats().retries, 1u);
}

TEST(FarmFaultTolerance, EmptyBatchAfterFailedPhase) {
  FarmPolicy fail_fast;
  fail_fast.max_task_retries = 0;
  MasterSlaveFarm<double, double> farm(
      2,
      [](const double& x) {
        if (x < 0.0) throw std::runtime_error("negative");
        return x * 10.0;
      },
      fail_fast);
  EXPECT_THROW(farm.run(std::vector<double>{1.0, -1.0}), FarmPhaseError);
  // An empty phase right after the abort must not touch the (possibly
  // still queued) replies of the failed one...
  EXPECT_TRUE(farm.run(std::vector<double>{}).empty());
  // ...and a real phase discards them by phase stamp.
  const auto results = farm.run(std::vector<double>{2.0, 3.0});
  EXPECT_DOUBLE_EQ(results[0], 20.0);
  EXPECT_DOUBLE_EQ(results[1], 30.0);
}

TEST(FarmFaultTolerance, StaleRepliesAreCountedAndDiscarded) {
  FaultInjector::Config config;
  config.stale_on_tasks = {0, 2};
  auto injector = std::make_shared<FaultInjector>(config);
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x + 1.0; }, FarmPolicy{}, injector);
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0};
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] + 1.0);
  }
  EXPECT_EQ(injector->injected_stales(), 2u);
  EXPECT_EQ(farm.stats().stale_discarded, 2u);
  EXPECT_EQ(farm.stats().failures, 0u);
}

TEST(FarmFaultTolerance, QuarantineThenRespawnRecovers) {
  // Both slaves fail their very first call; with quarantine_after = 1
  // each is taken out and replaced, and the replacements finish the
  // phase.
  std::atomic<int> remaining_failures{2};
  FarmPolicy policy;
  policy.max_task_retries = 10;
  policy.quarantine_after = 1;
  policy.respawn_quarantined = true;
  MasterSlaveFarm<double, double> farm(
      2,
      [&remaining_failures](const double& x) {
        if (remaining_failures.fetch_sub(1) > 0) {
          throw std::runtime_error("flaky start");
        }
        return x + 0.5;
      },
      policy);
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0};
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] + 0.5);
  }
  EXPECT_EQ(farm.stats().quarantines, 2u);
  EXPECT_EQ(farm.stats().respawns, 2u);
  EXPECT_EQ(farm.healthy_slave_count(), 2u);
  // A later phase runs on the respawned slaves.
  EXPECT_DOUBLE_EQ(farm.run(std::vector<double>{9.0})[0], 9.5);
}

TEST(FarmFaultTolerance, QuarantineWithoutRespawnDegrades) {
  std::atomic<int> remaining_failures{1};
  FarmPolicy policy;
  policy.max_task_retries = 5;
  policy.quarantine_after = 1;
  policy.respawn_quarantined = false;
  MasterSlaveFarm<double, double> farm(
      3,
      [&remaining_failures](const double& x) {
        if (remaining_failures.fetch_sub(1) > 0) {
          throw std::runtime_error("one bad call");
        }
        return x;
      },
      policy);
  std::vector<double> tasks(9);
  std::iota(tasks.begin(), tasks.end(), 0.0);
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i]);
  }
  EXPECT_EQ(farm.stats().quarantines, 1u);
  EXPECT_EQ(farm.stats().respawns, 0u);
  EXPECT_EQ(farm.healthy_slave_count(), 2u);
}

TEST(FarmFaultTolerance, AllSlavesQuarantinedFailsThePhase) {
  FarmPolicy policy;
  policy.max_task_retries = 50;  // retries never exhaust first
  policy.quarantine_after = 1;
  policy.respawn_quarantined = false;
  MasterSlaveFarm<double, double> farm(
      2, [](const double&) -> double { throw std::runtime_error("dead"); },
      policy);
  EXPECT_THROW(farm.run(std::vector<double>{1.0, 2.0}), FarmPhaseError);
  EXPECT_EQ(farm.healthy_slave_count(), 0u);
  // With nobody left, later phases fail immediately.
  EXPECT_THROW(farm.run(std::vector<double>{3.0}), FarmPhaseError);
}

TEST(FarmFaultTolerance, PhaseDeadlineAborts) {
  FarmPolicy policy;
  policy.phase_deadline = std::chrono::milliseconds(30);
  MasterSlaveFarm<double, double> farm(
      2,
      [](const double& x) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return x;
      },
      policy);
  try {
    farm.run(std::vector<double>{1.0, 2.0});
    FAIL() << "expected FarmPhaseError";
  } catch (const FarmPhaseError& error) {
    EXPECT_NE(std::string(error.what()).find("deadline"),
              std::string::npos);
    EXPECT_FALSE(error.task_index().has_value());
  }
}

TEST(FarmFaultTolerance, GenerousDeadlineDoesNotInterfere) {
  FarmPolicy policy;
  policy.phase_deadline = std::chrono::seconds(30);
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x * x; }, policy);
  const auto results = farm.run(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(results[0], 9.0);
  EXPECT_DOUBLE_EQ(results[1], 16.0);
}

// ---- transport faults (worker loss, frame damage, degradation) ------

TEST(FarmFaultTolerance, KilledWorkerIsRespawnedAndThePhaseCompletes) {
  FaultInjector::Config faults;
  faults.kill_on_tasks = {1};
  auto injector = std::make_shared<FaultInjector>(faults);
  FarmPolicy policy;
  policy.max_task_retries = 5;
  policy.respawn_backoff = std::chrono::milliseconds(1);
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x + 3.0; }, policy, injector);
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0};
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] + 3.0);
  }
  EXPECT_EQ(injector->injected_kills(), 1u);
  EXPECT_EQ(farm.stats().worker_losses, 1u);
  EXPECT_GE(farm.stats().respawns, 1u);
  EXPECT_EQ(farm.healthy_slave_count(), 2u);
  // The respawned worker serves later phases normally.
  EXPECT_DOUBLE_EQ(farm.run(std::vector<double>{10.0})[0], 13.0);
}

TEST(FarmFaultTolerance, DisconnectIsALossLikeAnyOther) {
  FaultInjector::Config faults;
  faults.disconnect_on_tasks = {0};
  auto injector = std::make_shared<FaultInjector>(faults);
  FarmPolicy policy;
  policy.respawn_backoff = std::chrono::milliseconds(1);
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x * 5.0; }, policy, injector);
  const auto results = farm.run(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(results[0], 5.0);
  EXPECT_DOUBLE_EQ(results[1], 10.0);
  EXPECT_DOUBLE_EQ(results[2], 15.0);
  EXPECT_EQ(injector->injected_disconnects(), 1u);
  EXPECT_EQ(farm.stats().worker_losses, 1u);
}

TEST(FarmFaultTolerance, CorruptReplyIsRetriedOnTheLivingWorker) {
  // In-process, a corrupt frame damages one message, not the stream:
  // the worker stays healthy, the task is retried like an error reply.
  FaultInjector::Config faults;
  faults.corrupt_on_tasks = {2};
  auto injector = std::make_shared<FaultInjector>(faults);
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x - 2.0; }, FarmPolicy{}, injector);
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0};
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] - 2.0);
  }
  EXPECT_EQ(injector->injected_corrupts(), 1u);
  EXPECT_EQ(farm.stats().corrupt_frames, 1u);
  EXPECT_EQ(farm.stats().failures, 1u);
  EXPECT_EQ(farm.stats().retries, 1u);
  EXPECT_EQ(farm.stats().worker_losses, 0u);
  EXPECT_EQ(farm.healthy_slave_count(), 2u);
}

TEST(FarmFaultTolerance, DroppedReplyRecoversViaTaskDeadline) {
  // Without a deadline a dropped reply would hang the phase forever;
  // with one, the silent worker is declared lost and the task requeued.
  FaultInjector::Config faults;
  faults.drop_on_tasks = {0};
  auto injector = std::make_shared<FaultInjector>(faults);
  FarmPolicy policy;
  policy.task_deadline = std::chrono::milliseconds(100);
  policy.respawn_backoff = std::chrono::milliseconds(1);
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x / 2.0; }, policy, injector);
  const std::vector<double> tasks{2.0, 4.0, 6.0};
  const auto results = farm.run(tasks);
  EXPECT_DOUBLE_EQ(results[0], 1.0);
  EXPECT_DOUBLE_EQ(results[1], 2.0);
  EXPECT_DOUBLE_EQ(results[2], 3.0);
  EXPECT_EQ(injector->injected_drops(), 1u);
  EXPECT_EQ(farm.stats().worker_losses, 1u);
}

TEST(FarmFaultTolerance, DegradesToTheMasterWhenEveryWorkerIsGone) {
  // Both workers are killed on their first task and the policy forbids
  // respawning; the master must finish the phase itself, serially.
  FaultInjector::Config faults;
  faults.kill_on_tasks = {0, 1};
  auto injector = std::make_shared<FaultInjector>(faults);
  FarmPolicy policy;
  policy.max_task_retries = 5;
  policy.quarantine_after = 1;
  policy.respawn_quarantined = false;
  policy.degrade_to_master = true;
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x * x; }, policy, injector);
  const std::vector<double> tasks{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto results = farm.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], tasks[i] * tasks[i]);
  }
  EXPECT_EQ(farm.stats().worker_losses, 2u);
  EXPECT_EQ(farm.healthy_slave_count(), 0u);
  EXPECT_EQ(farm.stats().master_degraded_tasks, 5u);
  // Fully degraded, the farm keeps serving phases on the master.
  const auto more = farm.run(std::vector<double>{6.0});
  EXPECT_DOUBLE_EQ(more[0], 36.0);
  EXPECT_EQ(farm.stats().master_degraded_tasks, 6u);
}

TEST(FarmFaultTolerance, NoDegradationMeansWorkerWipeoutFailsThePhase) {
  FaultInjector::Config faults;
  faults.kill_on_tasks = {0, 1};
  auto injector = std::make_shared<FaultInjector>(faults);
  FarmPolicy policy;
  policy.max_task_retries = 5;
  policy.quarantine_after = 1;
  policy.respawn_quarantined = false;
  policy.degrade_to_master = false;
  MasterSlaveFarm<double, double> farm(
      2, [](const double& x) { return x; }, policy, injector);
  try {
    farm.run(std::vector<double>{1.0, 2.0, 3.0});
    FAIL() << "expected FarmPhaseError";
  } catch (const FarmPhaseError& error) {
    EXPECT_NE(std::string(error.what()).find("no healthy slaves"),
              std::string::npos);
  }
}

TEST(FarmFaultTolerance, ProbabilisticFaultsStillCompletePhases) {
  // A noisy farm (deterministic 20% injected failure rate) must finish
  // every phase with correct results as long as retries are allowed.
  FaultInjector::Config config;
  config.seed = 2004;
  config.throw_probability = 0.2;
  auto injector = std::make_shared<FaultInjector>(config);
  FarmPolicy policy;
  policy.max_task_retries = 8;
  MasterSlaveFarm<double, double> farm(
      3, [](const double& x) { return x - 1.0; }, policy, injector);
  for (int phase = 0; phase < 5; ++phase) {
    std::vector<double> tasks(20);
    std::iota(tasks.begin(), tasks.end(), static_cast<double>(phase));
    const auto results = farm.run(tasks);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_DOUBLE_EQ(results[i], tasks[i] - 1.0);
    }
  }
  EXPECT_GT(injector->injected_throws(), 0u);
  EXPECT_EQ(farm.stats().retries, farm.stats().failures);
  EXPECT_GE(farm.stats().retries, injector->injected_throws());
}

}  // namespace
}  // namespace ldga::parallel
