#include "genomics/packed_genotype.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "genomics/genotype_matrix.hpp"
#include "stats/eh_diall.hpp"
#include "stats/em_haplotype.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ldga::genomics {
namespace {

// Random matrix with all four codes, Missing at ~15%. The byte-path
// reference everywhere below is a plain per-genotype loop over this
// matrix, so any divergence in the packed kernels shows up directly.
GenotypeMatrix random_matrix(std::uint32_t individuals, std::uint32_t snps,
                             std::uint64_t seed) {
  GenotypeMatrix matrix(individuals, snps);
  Rng rng(seed);
  for (std::uint32_t i = 0; i < individuals; ++i) {
    for (std::uint32_t s = 0; s < snps; ++s) {
      const std::uint64_t draw = rng() % 20;
      Genotype g = Genotype::Missing;
      if (draw < 6) g = Genotype::HomOne;
      else if (draw < 12) g = Genotype::Het;
      else if (draw < 17) g = Genotype::HomTwo;
      matrix.set(i, s, g);
    }
  }
  return matrix;
}

LocusCounts byte_counts(const GenotypeMatrix& matrix, SnpIndex snp,
                        std::span<const std::uint32_t> individuals) {
  LocusCounts counts;
  for (const auto individual : individuals) {
    switch (matrix.at(individual, snp)) {
      case Genotype::HomOne: ++counts.hom_one; break;
      case Genotype::Het: ++counts.het; break;
      case Genotype::HomTwo: ++counts.hom_two; break;
      case Genotype::Missing: ++counts.missing; break;
    }
  }
  return counts;
}

std::vector<std::uint32_t> all_individuals(std::uint32_t count) {
  std::vector<std::uint32_t> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = i;
  return out;
}

TEST(PackedGenotype, RoundTripsEveryGenotype) {
  const auto matrix = random_matrix(130, 7, 42);
  const PackedGenotypeMatrix packed(matrix);
  ASSERT_EQ(packed.individual_count(), matrix.individual_count());
  ASSERT_EQ(packed.snp_count(), matrix.snp_count());
  for (std::uint32_t i = 0; i < matrix.individual_count(); ++i) {
    for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {
      EXPECT_EQ(packed.at(i, s), matrix.at(i, s)) << "i=" << i << " s=" << s;
    }
  }
}

TEST(PackedGenotype, SliceRoundTripsInSliceOrder) {
  const auto matrix = random_matrix(90, 5, 7);
  // Deliberately unordered and non-contiguous.
  const std::vector<std::uint32_t> subset = {88, 3, 41, 5, 5, 0, 64, 63};
  const PackedGenotypeMatrix packed(matrix, subset);
  ASSERT_EQ(packed.individual_count(), subset.size());
  for (std::uint32_t row = 0; row < subset.size(); ++row) {
    for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {
      EXPECT_EQ(packed.at(row, s), matrix.at(subset[row], s));
    }
  }
}

// Sizes straddling the 64-bit word boundary exercise the tail-word
// masking: a padding leak would surface as phantom hom_one counts
// (hom_one is the complement kernel: valid & ~lo & ~hi).
TEST(PackedGenotype, LocusCountsMatchByteScanAcrossWordBoundaries) {
  for (const std::uint32_t n : {1u, 63u, 64u, 65u, 127u, 128u, 130u}) {
    const auto matrix = random_matrix(n, 4, 1000 + n);
    const PackedGenotypeMatrix packed(matrix);
    const auto everyone = all_individuals(n);
    for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {
      const LocusCounts expected = byte_counts(matrix, s, everyone);
      const LocusCounts actual = packed.locus_counts(s);
      EXPECT_EQ(actual.hom_one, expected.hom_one) << "n=" << n << " s=" << s;
      EXPECT_EQ(actual.het, expected.het) << "n=" << n << " s=" << s;
      EXPECT_EQ(actual.hom_two, expected.hom_two) << "n=" << n << " s=" << s;
      EXPECT_EQ(actual.missing, expected.missing) << "n=" << n << " s=" << s;
      EXPECT_EQ(actual.typed() + actual.missing, n);
    }
  }
}

TEST(PackedGenotype, AllHomOneHasNoPaddingLeak) {
  // Every genotype is the all-zero code, so both planes are zero and
  // the count comes entirely from the valid mask — the case where an
  // unmasked tail word would overcount.
  for (const std::uint32_t n : {63u, 64u, 65u}) {
    GenotypeMatrix matrix(n, 2);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t s = 0; s < 2; ++s) matrix.set(i, s, Genotype::HomOne);
    }
    const PackedGenotypeMatrix packed(matrix);
    const LocusCounts counts = packed.locus_counts(0);
    EXPECT_EQ(counts.hom_one, n);
    EXPECT_EQ(counts.het + counts.hom_two + counts.missing, 0u);
  }
}

TEST(PackedGenotype, PatternEnumerationMatchesByteScan) {
  const auto matrix = random_matrix(129, 8, 99);
  const std::vector<std::uint32_t> group = {0,  1,  5,  17, 33, 63, 64,
                                            65, 90, 99, 128, 2,  77};
  const PackedGenotypeMatrix packed(matrix, group);
  const std::vector<SnpIndex> snps = {6, 0, 3};

  // Reference tally: joint pattern -> carrier count, by byte loads.
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, std::uint32_t> expected;
  for (const auto individual : group) {
    std::uint32_t hom_two = 0, het = 0, missing = 0;
    for (std::uint32_t j = 0; j < snps.size(); ++j) {
      switch (matrix.at(individual, snps[j])) {
        case Genotype::HomTwo: hom_two |= 1u << j; break;
        case Genotype::Het: het |= 1u << j; break;
        case Genotype::Missing: missing |= 1u << j; break;
        case Genotype::HomOne: break;
      }
    }
    ++expected[{hom_two, het, missing}];
  }

  std::map<Key, std::uint32_t> actual;
  std::uint32_t total = 0;
  packed.for_each_pattern(
      snps, [&](std::uint32_t hom_two, std::uint32_t het,
                std::uint32_t missing, std::uint32_t count) {
        EXPECT_GT(count, 0u);  // pruning must drop empty branches
        EXPECT_TRUE(actual.emplace(Key{hom_two, het, missing}, count).second)
            << "pattern visited twice";
        total += count;
      });
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(total, group.size());
}

TEST(PackedGenotype, PatternTableMatchesBytePathOnRandomDatasets) {
  Rng seeds(20040426);
  for (std::uint32_t trial = 0; trial < 12; ++trial) {
    const std::uint32_t individuals = 30 + trial * 11;  // crosses 64 twice
    const auto matrix = random_matrix(individuals, 10, seeds());
    std::vector<std::uint32_t> group;
    for (std::uint32_t i = 0; i < individuals; ++i) {
      if (seeds() % 3 != 0) group.push_back(i);
    }
    if (group.empty()) group.push_back(0);
    const PackedGenotypeMatrix slice(matrix, group);
    const std::vector<SnpIndex> snps = {
        static_cast<SnpIndex>(seeds() % 10),
        static_cast<SnpIndex>(seeds() % 10), 9, 1};
    std::vector<SnpIndex> distinct;
    for (const auto s : snps) {
      bool seen = false;
      for (const auto d : distinct) seen = seen || d == s;
      if (!seen) distinct.push_back(s);
    }

    for (const auto policy : {stats::MissingPolicy::CompleteCase,
                              stats::MissingPolicy::Marginalize}) {
      const auto byte_table =
          stats::GenotypePatternTable::build(matrix, distinct, group, policy);
      const auto packed_table =
          stats::GenotypePatternTable::build_packed(slice, distinct, policy);
      EXPECT_EQ(packed_table.locus_count(), byte_table.locus_count());
      EXPECT_EQ(packed_table.total_individuals(),
                byte_table.total_individuals());
      EXPECT_EQ(packed_table.excluded_missing(),
                byte_table.excluded_missing());
      ASSERT_EQ(packed_table.patterns().size(), byte_table.patterns().size())
          << "trial " << trial;
      for (std::size_t p = 0; p < byte_table.patterns().size(); ++p) {
        const auto& expected = byte_table.patterns()[p];
        const auto& actual = packed_table.patterns()[p];
        EXPECT_EQ(actual.hom_two_mask, expected.hom_two_mask);
        EXPECT_EQ(actual.het_mask, expected.het_mask);
        EXPECT_EQ(actual.missing_mask, expected.missing_mask);
        EXPECT_EQ(actual.count, expected.count);  // exact: both are tallies
      }
    }
  }
}

// End-to-end: the compiled pipeline over the packed tables must leave
// every statistic bit-for-bit identical to the visitor-based reference,
// which is what lets the evaluator default to it. (The byte-scanning
// pipeline and its EvaluatorConfig::packed_kernel toggle are retired;
// the visitor path is the remaining independent oracle.)
TEST(PackedGenotype, EhDiallStatisticsAreBitForBitIdentical) {
  const auto synthetic = ldga::testing::small_synthetic(14, 3, 555);
  const stats::EhDiall compiled(synthetic.dataset, {}, /*compiled_em=*/true);
  const stats::EhDiall reference(synthetic.dataset, {},
                                 /*compiled_em=*/false);

  const std::array<std::vector<SnpIndex>, 4> candidates = {
      std::vector<SnpIndex>{0, 1},
      std::vector<SnpIndex>{2, 5, 9},
      std::vector<SnpIndex>{1, 6, 7, 13},
      std::vector<SnpIndex>{3, 4, 8, 10, 12}};
  for (const auto& snps : candidates) {
    const auto a = compiled.analyze(snps);
    const auto b = reference.analyze(snps);
    EXPECT_EQ(a.lrt, b.lrt);
    EXPECT_EQ(a.affected.log_likelihood, b.affected.log_likelihood);
    EXPECT_EQ(a.unaffected.log_likelihood, b.unaffected.log_likelihood);
    EXPECT_EQ(a.pooled.log_likelihood, b.pooled.log_likelihood);
    EXPECT_EQ(a.affected.frequencies, b.affected.frequencies);
    EXPECT_EQ(a.unaffected.frequencies, b.unaffected.frequencies);
    EXPECT_EQ(a.pooled.frequencies, b.pooled.frequencies);
  }
}

}  // namespace
}  // namespace ldga::genomics
