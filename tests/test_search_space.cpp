#include "analysis/search_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ldga::analysis {
namespace {

TEST(SearchSpace, ReproducesPaperTable1) {
  // 51 SNPs column.
  const auto rows51 = search_space_table(51, 2, 6);
  ASSERT_EQ(rows51.size(), 5u);
  EXPECT_EQ(rows51[0].exact_count, 1'275u);
  EXPECT_EQ(rows51[1].exact_count, 20'825u);
  EXPECT_EQ(rows51[2].exact_count, 249'900u);
  EXPECT_EQ(rows51[3].exact_count, 2'349'060u);
  EXPECT_EQ(rows51[4].exact_count, 18'009'460u);

  // 150 SNPs column.
  const auto rows150 = search_space_table(150, 2, 6);
  EXPECT_EQ(rows150[0].exact_count, 11'175u);
  EXPECT_EQ(rows150[1].exact_count, 551'300u);
  EXPECT_EQ(rows150[2].exact_count, 20'260'275u);
  EXPECT_EQ(rows150[3].exact_count, 591'600'030u);
  // Paper prints 14.3e9 for size 6.
  EXPECT_NEAR(static_cast<double>(rows150[4].exact_count), 14.3e9, 0.1e9);

  // 249 SNPs column.
  const auto rows249 = search_space_table(249, 2, 6);
  EXPECT_EQ(rows249[0].exact_count, 30'876u);
  EXPECT_EQ(rows249[1].exact_count, 2'542'124u);
  EXPECT_EQ(rows249[2].exact_count, 156'340'626u);
  // Paper prints 7.6e9 for size 5 and 3.11e11 for size 6 (actually
  // 7.66e9 and 3.11e11).
  EXPECT_NEAR(static_cast<double>(rows249[3].exact_count), 7.66e9, 0.1e9);
  EXPECT_NEAR(static_cast<double>(rows249[4].exact_count), 3.11e11,
              0.05e11);
}

TEST(SearchSpace, EveryRowHasConsistentLog) {
  for (const auto& row : search_space_table(51, 2, 6)) {
    ASSERT_TRUE(row.exact_valid);
    EXPECT_NEAR(row.log10_count,
                std::log10(static_cast<double>(row.exact_count)), 1e-9);
  }
}

TEST(SearchSpace, HugeCountsFallBackToLog) {
  const auto rows = search_space_table(500, 30, 30);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].exact_valid);
  EXPECT_GT(rows[0].log10_count, 19.0);
  EXPECT_NE(rows[0].formatted().find('e'), std::string::npos);
}

TEST(SearchSpace, FormattedGroupsDigits) {
  const auto rows = search_space_table(51, 5, 5);
  EXPECT_EQ(rows[0].formatted(), "2 349 060");
}

TEST(SearchSpace, TotalLogSum) {
  // Total over sizes 2..3 for 51 SNPs: 1275 + 20825 = 22100.
  EXPECT_NEAR(log10_total_search_space(51, 2, 3), std::log10(22100.0),
              1e-9);
}

}  // namespace
}  // namespace ldga::analysis
