#include "stats/clump.hpp"

#include <gtest/gtest.h>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

/// A 2x4 table with one strongly associated column (0) and rare
/// columns (2, 3).
ContingencyTable example_table() {
  ContingencyTable t(2, 4);
  t.set(0, 0, 30);
  t.set(0, 1, 15);
  t.set(0, 2, 3);
  t.set(0, 3, 2);
  t.set(1, 0, 10);
  t.set(1, 1, 33);
  t.set(1, 2, 4);
  t.set(1, 3, 3);
  return t;
}

TEST(Clump, T1MatchesPearsonOnFullTable) {
  const Clump clump;
  const auto t = example_table();
  Rng rng(1);
  const auto result = clump.analyze(t, rng);
  const auto direct = t.pearson_chi_square();
  EXPECT_NEAR(result.t1.statistic, direct.statistic, 1e-9);
  EXPECT_EQ(result.t1.df, direct.df);
  EXPECT_FALSE(result.t1.p_monte_carlo.has_value());
}

TEST(Clump, T2ClumpsRareColumns) {
  ClumpConfig config;
  config.rare_expected_threshold = 5.0;
  const Clump clump(config);
  Rng rng(2);
  const auto result = clump.analyze(example_table(), rng);
  // Columns 2 and 3 have expected counts < 5 and get clumped: the T2
  // table is 2x3 -> df 2.
  EXPECT_EQ(result.t2.df, 2u);
  EXPECT_GT(result.t2.statistic, 0.0);
}

TEST(Clump, T3IsTheBestSingleColumnSplit) {
  const Clump clump;
  const auto t = example_table();
  Rng rng(3);
  const auto result = clump.analyze(t, rng);
  // T3 must equal the max over explicit 2x2 collapses.
  double best = 0.0;
  for (std::uint32_t c = 0; c < t.cols(); ++c) {
    best = std::max(best,
                    t.collapse_to_two({c}).pearson_chi_square().statistic);
  }
  EXPECT_NEAR(result.t3.statistic, best, 1e-9);
  EXPECT_EQ(result.t3.df, 1u);
}

TEST(Clump, T4AtLeastT3) {
  const Clump clump;
  Rng rng(4);
  const auto result = clump.analyze(example_table(), rng);
  EXPECT_GE(result.t4.statistic, result.t3.statistic - 1e-12);
  EXPECT_FALSE(result.t4_group.empty());
}

TEST(Clump, T4GroupReproducesStatistic) {
  const Clump clump;
  const auto t = example_table();
  Rng rng(5);
  const auto result = clump.analyze(t, rng);
  // Recompute the 2x2 statistic from the reported group (indices refer
  // to the empty-column-pruned table, which here equals the original).
  const auto chi =
      t.collapse_to_two(result.t4_group).pearson_chi_square();
  EXPECT_NEAR(chi.statistic, result.t4.statistic, 1e-9);
}

TEST(Clump, MonteCarloPValuesPresentAndValid) {
  ClumpConfig config;
  config.monte_carlo_trials = 200;
  const Clump clump(config);
  Rng rng(6);
  const auto result = clump.analyze(example_table(), rng);
  for (const auto* stat : {&result.t1, &result.t2, &result.t3, &result.t4}) {
    ASSERT_TRUE(stat->p_monte_carlo.has_value());
    EXPECT_GT(*stat->p_monte_carlo, 0.0);
    EXPECT_LE(*stat->p_monte_carlo, 1.0);
  }
}

TEST(Clump, MonteCarloIsDeterministicGivenSeed) {
  ClumpConfig config;
  config.monte_carlo_trials = 100;
  const Clump clump(config);
  Rng rng1(77), rng2(77);
  const auto a = clump.analyze(example_table(), rng1);
  const auto b = clump.analyze(example_table(), rng2);
  EXPECT_EQ(*a.t1.p_monte_carlo, *b.t1.p_monte_carlo);
  EXPECT_EQ(*a.t4.p_monte_carlo, *b.t4.p_monte_carlo);
}

TEST(Clump, MonteCarloPValuesInvariantUnderWorkerCount) {
  // Every replicate runs from its own child stream whose seed is drawn
  // sequentially before any work fans out, so the p-values are a pure
  // function of (seed, trial count) — never of the worker count.
  ClumpConfig config;
  config.monte_carlo_trials = 150;
  std::vector<ClumpResult> results;
  for (const std::uint32_t workers : {1u, 2u, 5u, 0u}) {
    config.monte_carlo_workers = workers;
    const Clump clump(config);
    Rng rng(2026);
    results.push_back(clump.analyze(example_table(), rng));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(*results[0].t1.p_monte_carlo, *results[i].t1.p_monte_carlo);
    EXPECT_EQ(*results[0].t2.p_monte_carlo, *results[i].t2.p_monte_carlo);
    EXPECT_EQ(*results[0].t3.p_monte_carlo, *results[i].t3.p_monte_carlo);
    EXPECT_EQ(*results[0].t4.p_monte_carlo, *results[i].t4.p_monte_carlo);
  }
}

TEST(Clump, MonteCarloLeavesCallerRngIndependentOfTrialWork) {
  // The caller's RNG advances exactly `trials` draws — one seed per
  // replicate — so downstream consumers see the same stream whatever
  // the trial outcomes or worker count.
  ClumpConfig config;
  config.monte_carlo_trials = 32;
  config.monte_carlo_workers = 3;
  const Clump clump(config);
  Rng rng(5);
  clump.analyze(example_table(), rng);
  Rng expected(5);
  for (int i = 0; i < 32; ++i) expected();
  EXPECT_EQ(rng(), expected());
}

TEST(Clump, MonteCarloAgreesWithAnalyticOnLargeCounts) {
  // For a well-populated table the empirical T1 p-value should be in
  // the same ballpark as the analytic chi-square p-value.
  ContingencyTable t(2, 3);
  t.set(0, 0, 50);
  t.set(0, 1, 30);
  t.set(0, 2, 20);
  t.set(1, 0, 35);
  t.set(1, 1, 38);
  t.set(1, 2, 27);
  ClumpConfig config;
  config.monte_carlo_trials = 2000;
  const Clump clump(config);
  Rng rng(8);
  const auto result = clump.analyze(t, rng);
  EXPECT_NEAR(*result.t1.p_monte_carlo, result.t1.p_analytic, 0.05);
}

TEST(Clump, StrongAssociationGetsSmallMonteCarloP) {
  ContingencyTable t(2, 2);
  t.set(0, 0, 45);
  t.set(0, 1, 5);
  t.set(1, 0, 5);
  t.set(1, 1, 45);
  ClumpConfig config;
  config.monte_carlo_trials = 500;
  const Clump clump(config);
  Rng rng(9);
  const auto result = clump.analyze(t, rng);
  EXPECT_LE(*result.t1.p_monte_carlo, 2.0 / 501.0 + 1e-12);
}

TEST(Clump, NullTableScoresLow) {
  ContingencyTable t(2, 2);
  t.set(0, 0, 25);
  t.set(0, 1, 25);
  t.set(1, 0, 25);
  t.set(1, 1, 25);
  const Clump clump;
  Rng rng(10);
  const auto result = clump.analyze(t, rng);
  EXPECT_NEAR(result.t1.statistic, 0.0, 1e-9);
  EXPECT_NEAR(result.t1.p_analytic, 1.0, 1e-9);
}

TEST(Clump, ConfigValidation) {
  ClumpConfig config;
  config.rare_expected_threshold = -1.0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Clump, RequiresTwoRows) {
  const Clump clump;
  ContingencyTable t(3, 2);
  Rng rng(11);
  EXPECT_DEATH(clump.analyze(t, rng), "precondition");
}

TEST(Clump, FixedModeReportsFullReplicateCount) {
  ClumpConfig config;
  config.monte_carlo_trials = 120;
  const Clump clump(config);
  Rng rng(12);
  const auto result = clump.analyze(example_table(), rng);
  EXPECT_EQ(result.mc_replicates_run, 120u);
  EXPECT_FALSE(result.mc_early_stopped);

  const Clump no_mc;
  Rng rng2(12);
  EXPECT_EQ(no_mc.analyze(example_table(), rng2).mc_replicates_run, 0u);
}

TEST(Clump, EarlyStopSavesReplicatesOnClearCalls) {
  // Every example-table statistic has an MC p-value around 2e-4, so
  // each q̂ sits essentially at zero, far below α = 0.05. Deciding
  // q̂ + ε < α needs ε < 0.05, i.e. roughly n > ln(2/δ)/(2·0.05²)
  // ≈ 2.2k replicates at the configured error rate; with 16k trials
  // the doubling schedule has look points at 4096 and 8192, so the
  // stopper must fire well short of the full budget.
  ClumpConfig config;
  config.monte_carlo_trials = 16000;
  config.mc_early_stop = true;
  config.mc_min_batch = 64;
  const Clump clump(config);
  Rng rng(13);
  const auto result = clump.analyze(example_table(), rng);
  EXPECT_TRUE(result.mc_early_stopped);
  EXPECT_LE(result.mc_replicates_run, 8192u);
  EXPECT_GE(result.mc_replicates_run, 64u);
  for (const auto* stat : {&result.t1, &result.t2, &result.t3, &result.t4}) {
    ASSERT_TRUE(stat->p_monte_carlo.has_value());
  }
}

TEST(Clump, EarlyStopSignificanceCallsAgreeWithFixedRun) {
  // The statistical acceptance property: on every decided statistic the
  // early-stopped significance call (p <= α vs p > α) matches the full
  // fixed-replicate run. Checked across several seeds and two tables —
  // the configured error rate (1e-3 per analysis) makes a disagreement
  // in 20 analyses essentially impossible (p < 1 - (1 - 1e-3)^20 ≈ 2%
  // even if every bound were exactly tight, and the Hoeffding bound is
  // conservative).
  ContingencyTable weak(2, 3);
  weak.set(0, 0, 30);
  weak.set(0, 1, 28);
  weak.set(0, 2, 22);
  weak.set(1, 0, 25);
  weak.set(1, 1, 27);
  weak.set(1, 2, 28);

  ClumpConfig fixed_config;
  fixed_config.monte_carlo_trials = 3000;
  const Clump fixed(fixed_config);

  ClumpConfig early_config = fixed_config;
  early_config.mc_early_stop = true;
  early_config.mc_min_batch = 128;
  const Clump early(early_config);

  const double alpha = early_config.mc_significance;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    for (const ContingencyTable& table : {example_table(), weak}) {
      Rng rng_fixed(seed), rng_early(seed);
      const auto full = fixed.analyze(table, rng_fixed);
      const auto stopped = early.analyze(table, rng_early);
      const auto call = [alpha](const ClumpStatistic& s) {
        return *s.p_monte_carlo <= alpha;
      };
      EXPECT_EQ(call(stopped.t1), call(full.t1)) << "seed " << seed;
      EXPECT_EQ(call(stopped.t2), call(full.t2)) << "seed " << seed;
      EXPECT_EQ(call(stopped.t3), call(full.t3)) << "seed " << seed;
      EXPECT_EQ(call(stopped.t4), call(full.t4)) << "seed " << seed;
    }
  }
}

TEST(Clump, EarlyStopConsumesSameRngAsFixedRun) {
  // Both modes pre-draw every configured trial seed, so the caller's
  // stream advances identically whether or not the stopper fires — a
  // GA run's downstream randomness cannot depend on the MC mode.
  ClumpConfig config;
  config.monte_carlo_trials = 256;
  config.mc_early_stop = true;
  const Clump early(config);
  Rng rng(14);
  early.analyze(example_table(), rng);
  Rng expected(14);
  for (int i = 0; i < 256; ++i) expected();
  EXPECT_EQ(rng(), expected());
}

TEST(Clump, EarlyStopInvariantUnderWorkerCount) {
  ClumpConfig config;
  config.monte_carlo_trials = 2000;
  config.mc_early_stop = true;
  std::vector<ClumpResult> results;
  for (const std::uint32_t workers : {1u, 3u, 0u}) {
    config.monte_carlo_workers = workers;
    const Clump clump(config);
    Rng rng(15);
    results.push_back(clump.analyze(example_table(), rng));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].mc_replicates_run, results[i].mc_replicates_run);
    EXPECT_EQ(*results[0].t1.p_monte_carlo, *results[i].t1.p_monte_carlo);
    EXPECT_EQ(*results[0].t4.p_monte_carlo, *results[i].t4.p_monte_carlo);
  }
}

TEST(Clump, EarlyStopConfigValidation) {
  ClumpConfig config;
  config.mc_early_stop = true;
  config.monte_carlo_trials = 0;  // stopping needs a replicate ceiling
  EXPECT_THROW(config.validate(), ConfigError);

  config.monte_carlo_trials = 100;
  config.mc_min_batch = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config.mc_min_batch = 16;
  for (const double bad : {0.0, 1.0, -0.1, 1.5}) {
    config.mc_significance = bad;
    EXPECT_THROW(config.validate(), ConfigError) << bad;
  }
  config.mc_significance = 0.05;
  for (const double bad : {0.0, 1.0, -1e-6, 2.0}) {
    config.mc_error_rate = bad;
    EXPECT_THROW(config.validate(), ConfigError) << bad;
  }
  config.mc_error_rate = 1e-3;
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace ldga::stats
