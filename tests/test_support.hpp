// Shared fixtures for the test suite: small, fully deterministic
// datasets with known structure.
#pragma once

#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/synthetic.hpp"
#include "util/rng.hpp"

namespace ldga::testing {

/// A hand-built dataset with 8 individuals and 4 SNPs where SNP 0
/// perfectly separates affected from unaffected, SNP 1 is anti-
/// correlated with status, and SNPs 2-3 are noise.
inline genomics::Dataset tiny_dataset() {
  using genomics::Genotype;
  using genomics::Status;
  const std::vector<Status> statuses{
      Status::Affected,   Status::Affected,   Status::Affected,
      Status::Affected,   Status::Unaffected, Status::Unaffected,
      Status::Unaffected, Status::Unaffected};
  // Rows: individuals, columns: SNPs.
  const Genotype H1 = Genotype::HomOne, HT = Genotype::Het,
                 H2 = Genotype::HomTwo;
  const std::vector<std::vector<Genotype>> rows{
      {H2, H1, HT, H1}, {H2, H1, H1, HT}, {H2, HT, H2, H1},
      {HT, H1, HT, H2}, {H1, H2, H1, H1}, {H1, H2, HT, HT},
      {H1, HT, H2, H1}, {H1, H2, H1, H2},
  };
  genomics::GenotypeMatrix matrix(8, 4);
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint32_t s = 0; s < 4; ++s) matrix.set(i, s, rows[i][s]);
  }
  return genomics::Dataset(genomics::SnpPanel::uniform(4), std::move(matrix),
                           statuses);
}

/// A small synthetic cohort with a planted 2-SNP signal; deterministic.
inline genomics::SyntheticDataset small_synthetic(
    std::uint32_t snp_count = 12, std::uint32_t active = 2,
    std::uint64_t seed = 1234) {
  genomics::SyntheticConfig config;
  config.snp_count = snp_count;
  config.affected_count = 40;
  config.unaffected_count = 40;
  config.unknown_count = 0;
  config.active_snp_count = active;
  Rng rng(seed);
  return genomics::generate_synthetic(config, rng);
}

}  // namespace ldga::testing
