#include "util/table_format.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ldga {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("| 22 "), std::string::npos);
  // header + rule + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAlignToWidestCell) {
  TextTable table({"x"});
  table.add_row({"longercell"});
  table.add_row({"y"});
  const std::string out = table.str();
  // Every line has the same length.
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, NumFormatsDecimals) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 3), "-1.500");
}

TEST(TextTable, WrongCellCountDies) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "precondition");
}

TEST(TextTable, EmptyHeaderDies) {
  EXPECT_DEATH(TextTable(std::vector<std::string>{}), "precondition");
}

}  // namespace
}  // namespace ldga
