// Conformance suite: every EvaluationBackend implementation must honor
// the same contract — task-ordered results identical to direct
// evaluation, retry-with-attempt-history fault semantics, and health
// counters reported through parallel::FarmStats.
#include "stats/evaluation_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "parallel/fault_injection.hpp"
#include "parallel/farm_policy.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using Factory = std::shared_ptr<EvaluationBackend> (*)(
    const HaplotypeEvaluator&, BackendOptions);

struct BackendCase {
  const char* label;
  Factory make;
};

class BackendConformance : public ::testing::TestWithParam<BackendCase> {
 protected:
  BackendConformance()
      : synthetic_(ldga::testing::small_synthetic(12, 2, 777)),
        evaluator_(synthetic_.dataset) {}

  std::shared_ptr<EvaluationBackend> make(BackendOptions options = {}) const {
    return GetParam().make(evaluator_, options);
  }

  static std::vector<Candidate> sample_batch() {
    return {{0, 1},       {2, 7},    {0, 1, 5}, {3, 4, 9},
            {1, 6, 8, 11}, {5, 10},  {0, 2, 3}, {4, 7, 10}};
  }

  genomics::SyntheticDataset synthetic_;
  HaplotypeEvaluator evaluator_;
};

TEST_P(BackendConformance, ReportsIdentity) {
  auto backend = make();
  EXPECT_FALSE(backend->name().empty());
  EXPECT_GE(backend->worker_count(), 1u);
}

TEST_P(BackendConformance, BatchMatchesDirectEvaluation) {
  auto backend = make();
  const auto batch = sample_batch();
  const auto results = backend->evaluate_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  // Reference values from a separate evaluator over the same dataset:
  // the pipeline is deterministic, so equality is exact.
  const HaplotypeEvaluator reference(synthetic_.dataset);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i], reference.fitness(batch[i])) << "task " << i;
  }
}

TEST_P(BackendConformance, ResultsIndependentOfWorkerCount) {
  const auto batch = sample_batch();
  BackendOptions one_worker;
  one_worker.workers = 1;
  BackendOptions four_workers;
  four_workers.workers = 4;
  const auto narrow = make(one_worker)->evaluate_batch(batch);
  const auto wide = make(four_workers)->evaluate_batch(batch);
  EXPECT_EQ(narrow, wide);
}

TEST_P(BackendConformance, TracksPhasesInFarmStats) {
  auto backend = make();
  const auto batch = sample_batch();
  backend->evaluate_batch(batch);
  backend->evaluate_batch(batch);
  const auto stats = backend->farm_stats();
  EXPECT_GE(stats.phases, 2u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST_P(BackendConformance, InjectedFaultsAreRetriedWithoutChangingResults) {
  const auto batch = sample_batch();
  const auto clean = make()->evaluate_batch(batch);

  parallel::FaultInjector::Config fault_config;
  // First attempt of these task indices throws in every phase; the
  // retry ladder must absorb the fault and reproduce the clean result.
  fault_config.throw_on_tasks = {0, 3, 5};
  BackendOptions options;
  options.workers = 3;
  options.fault_injector =
      std::make_shared<parallel::FaultInjector>(fault_config);
  options.farm_policy.max_task_retries = 4;
  auto backend = make(options);

  const auto faulted = backend->evaluate_batch(batch);
  EXPECT_EQ(faulted, clean);
  const auto stats = backend->farm_stats();
  // One failed attempt and one recovering retry per scheduled fault.
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.failures, 3u);
  EXPECT_EQ(options.fault_injector->injected_throws(), 3u);
}

TEST_P(BackendConformance, RetryExhaustionRaisesFarmPhaseError) {
  parallel::FaultInjector::Config fault_config;
  fault_config.throw_probability = 1.0;  // every attempt fails
  BackendOptions options;
  options.workers = 2;
  options.fault_injector =
      std::make_shared<parallel::FaultInjector>(fault_config);
  options.farm_policy.max_task_retries = 2;
  auto backend = make(options);

  const auto batch = sample_batch();
  try {
    backend->evaluate_batch(batch);
    FAIL() << "expected FarmPhaseError";
  } catch (const parallel::FarmPhaseError& error) {
    ASSERT_TRUE(error.task_index().has_value());
    EXPECT_LT(*error.task_index(), batch.size());
    // One original attempt plus max_task_retries retries, all recorded.
    EXPECT_EQ(error.attempts().size(), 3u);
  }
}

TEST_P(BackendConformance, InvalidPolicyIsRejectedAtConstruction) {
  BackendOptions options;
  options.farm_policy.quarantine_after = 0;
  EXPECT_THROW(make(options), ConfigError);
}

/// The same farm, but with its slaves in forked worker processes over
/// checksummed Unix-socket frames — the conformance contract must hold
/// verbatim across the transport swap.
std::shared_ptr<EvaluationBackend> make_socket_farm_backend(
    const HaplotypeEvaluator& evaluator, BackendOptions options) {
  options.transport = FarmTransport::kSocket;
  return make_farm_backend(evaluator, options);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance,
    ::testing::Values(BackendCase{"serial", &make_serial_backend},
                      BackendCase{"thread_pool", &make_thread_pool_backend},
                      BackendCase{"farm", &make_farm_backend},
                      BackendCase{"farm_socket", &make_socket_farm_backend}),
    [](const ::testing::TestParamInfo<BackendCase>& param_info) {
      return std::string(param_info.param.label);
    });

}  // namespace
}  // namespace ldga::stats
