#include "stats/eh_diall.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using genomics::SnpIndex;
using genomics::Status;

TEST(EhDiall, RequiresBothGroups) {
  genomics::GenotypeMatrix matrix(2, 2);
  matrix.set(0, 0, genomics::Genotype::HomOne);
  matrix.set(0, 1, genomics::Genotype::HomOne);
  matrix.set(1, 0, genomics::Genotype::HomOne);
  matrix.set(1, 1, genomics::Genotype::HomOne);
  const genomics::Dataset dataset(
      genomics::SnpPanel::uniform(2), std::move(matrix),
      {Status::Affected, Status::Affected});
  EXPECT_THROW(EhDiall{dataset}, DataError);
}

TEST(EhDiall, GroupSizesMatchDataset) {
  const auto dataset = ldga::testing::tiny_dataset();
  const EhDiall eh(dataset);
  EXPECT_EQ(eh.affected_count(), 4u);
  EXPECT_EQ(eh.unaffected_count(), 4u);
}

TEST(EhDiall, PerfectSeparatorYieldsLargeLrt) {
  // In tiny_dataset SNP 0 separates the groups perfectly, SNP 3 is
  // noise: the LRT of {0} must dwarf that of {3}.
  const auto dataset = ldga::testing::tiny_dataset();
  const EhDiall eh(dataset);
  const auto strong = eh.analyze(std::vector<SnpIndex>{0});
  const auto weak = eh.analyze(std::vector<SnpIndex>{3});
  EXPECT_GT(strong.lrt, 5.0 * (weak.lrt + 0.1));
}

TEST(EhDiall, LrtIsNonNegative) {
  const auto synthetic = ldga::testing::small_synthetic();
  const EhDiall eh(synthetic.dataset);
  for (SnpIndex a = 0; a + 1 < synthetic.dataset.snp_count(); a += 3) {
    const auto result = eh.analyze(std::vector<SnpIndex>{a, a + 1});
    EXPECT_GE(result.lrt, 0.0);
  }
}

TEST(EhDiall, ContingencyTableHasEstimatedChromosomeCounts) {
  const auto dataset = ldga::testing::tiny_dataset();
  const EhDiall eh(dataset);
  const auto result = eh.analyze(std::vector<SnpIndex>{0, 1});
  const auto table = result.to_contingency_table();
  ASSERT_EQ(table.rows(), 2u);
  ASSERT_EQ(table.cols(), 4u);  // 2^2 haplotypes
  // Row totals = 2 * group size (chromosomes).
  EXPECT_NEAR(table.row_total(0), 2.0 * result.affected_individuals, 1e-6);
  EXPECT_NEAR(table.row_total(1), 2.0 * result.unaffected_individuals, 1e-6);
}

TEST(EhDiall, PooledLikelihoodIsAtMostGroupSum) {
  // ll_pooled <= ll_A + ll_U always (splitting can only fit better),
  // which is exactly why the LRT is non-negative.
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 31);
  const EhDiall eh(synthetic.dataset);
  const auto result = eh.analyze(std::vector<SnpIndex>{1, 4, 7});
  EXPECT_LE(result.pooled.log_likelihood,
            result.affected.log_likelihood +
                result.unaffected.log_likelihood + 1e-6);
}

TEST(EhDiall, PlantedSignalHasHigherLrtThanNoise) {
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 2024);
  const EhDiall eh(synthetic.dataset);
  const auto planted = eh.analyze(synthetic.truth.snps);
  // Compare against a handful of non-overlapping pairs.
  double max_noise = 0.0;
  for (SnpIndex a = 0; a + 1 < 12; ++a) {
    const std::vector<SnpIndex> pair{a, static_cast<SnpIndex>(a + 1)};
    if (pair == synthetic.truth.snps) continue;
    bool overlaps = false;
    for (const auto t : synthetic.truth.snps) {
      if (t == pair[0] || t == pair[1]) overlaps = true;
    }
    if (overlaps) continue;
    max_noise = std::max(max_noise, eh.analyze(pair).lrt);
  }
  EXPECT_GT(planted.lrt, max_noise);
}

TEST(EhDiall, MarginalizePolicyUsesMissingIndividuals) {
  genomics::SyntheticConfig config;
  config.snp_count = 8;
  config.affected_count = 30;
  config.unaffected_count = 30;
  config.unknown_count = 0;
  config.active_snp_count = 2;
  config.missing_rate = 0.15;
  Rng rng(9090);
  const auto synthetic = genomics::generate_synthetic(config, rng);

  EmConfig complete_case;  // default policy
  EmConfig marginalize;
  marginalize.missing = MissingPolicy::Marginalize;
  const EhDiall eh_cc(synthetic.dataset, complete_case);
  const EhDiall eh_mg(synthetic.dataset, marginalize);

  const std::vector<SnpIndex> snps{1, 4, 6};
  const auto cc = eh_cc.analyze(snps);
  const auto mg = eh_mg.analyze(snps);
  // Marginalization keeps every individual; complete-case drops some
  // at a 15% per-cell missing rate.
  EXPECT_GT(mg.affected_individuals + mg.unaffected_individuals,
            cc.affected_individuals + cc.unaffected_individuals);
  EXPECT_DOUBLE_EQ(mg.affected_individuals + mg.unaffected_individuals,
                   60.0);
  EXPECT_GE(mg.lrt, 0.0);
}

TEST(EhDiall, EmptySnpSetDies) {
  const auto dataset = ldga::testing::tiny_dataset();
  const EhDiall eh(dataset);
  EXPECT_DEATH(eh.analyze(std::vector<SnpIndex>{}), "precondition");
}

}  // namespace
}  // namespace ldga::stats
