#include "ga/window_scan.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/genotype_store.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/packed_store.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::ga {
namespace {

using genomics::PackedGenotypeMatrix;
using genomics::SnpIndex;

TEST(PlanWindows, PanelSmallerThanWindowYieldsOneCoveringWindow) {
  const std::vector<WindowSpec> windows = plan_windows(3, 8, 4);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].begin, 0u);
  EXPECT_EQ(windows[0].count, 3u);
}

TEST(PlanWindows, OverlappingTilingCoversPanelWithPartialTail) {
  const std::vector<WindowSpec> windows = plan_windows(23, 10, 5);
  ASSERT_EQ(windows.size(), 4u);
  const std::vector<std::uint32_t> begins{0, 5, 10, 15};
  const std::vector<std::uint32_t> counts{10, 10, 10, 8};
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(windows[w].begin, begins[w]);
    EXPECT_EQ(windows[w].count, counts[w]);
  }
  // Overlap invariant: each window starts before its predecessor ends
  // (overlap = window - stride >= 0, here 5).
  for (std::size_t w = 1; w < windows.size(); ++w) {
    EXPECT_LT(windows[w].begin,
              windows[w - 1].begin + windows[w - 1].count);
  }
  // The last (partial) window ends exactly at the panel edge.
  EXPECT_EQ(windows.back().begin + windows.back().count, 23u);
}

TEST(PlanWindows, ExactMultipleEndsFlushWithNoEmptyTail) {
  const std::vector<WindowSpec> windows = plan_windows(20, 10, 10);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].begin, 0u);
  EXPECT_EQ(windows[1].begin, 10u);
  EXPECT_EQ(windows[1].count, 10u);
}

TEST(PlanWindows, RejectsDegenerateShapes) {
  EXPECT_THROW(plan_windows(0, 4, 2), ConfigError);   // empty panel
  EXPECT_THROW(plan_windows(10, 1, 1), ConfigError);  // window < 2
  EXPECT_THROW(plan_windows(10, 4, 0), ConfigError);  // zero stride
  EXPECT_THROW(plan_windows(10, 4, 5), ConfigError);  // stride > window
}

/// test_engine.cpp's fast settings: small enough to run in milliseconds,
/// big enough to exercise every operator.
GaConfig fast_ga(std::uint64_t seed) {
  GaConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.population_size = 30;
  config.min_subpopulation = 5;
  config.crossovers_per_generation = 6;
  config.mutations_per_generation = 10;
  config.stagnation_generations = 15;
  config.max_generations = 40;
  config.seed = seed;
  return config;
}

TEST(WindowScan, WindowSliceFitnessIsBitIdenticalToFullMatrix) {
  const genomics::Dataset dataset =
      ldga::testing::small_synthetic(20, 2, 5).dataset;
  const PackedGenotypeMatrix store(dataset.genotypes());

  const genomics::Dataset window = genomics::materialize_window(
      store, dataset.panel(), dataset.statuses(), 6, 8);
  ASSERT_EQ(window.snp_count(), 8u);
  EXPECT_EQ(window.panel().name(0), dataset.panel().name(6));

  const stats::EvaluatorConfig config;
  const stats::HaplotypeEvaluator full(dataset, config);
  const stats::HaplotypeEvaluator sliced(window, config);

  const std::vector<std::vector<SnpIndex>> global_candidates{
      {6, 9}, {7, 10, 12}, {6, 11, 12, 13}, {8, 13}};
  for (const auto& global : global_candidates) {
    std::vector<SnpIndex> local(global.size());
    std::transform(global.begin(), global.end(), local.begin(),
                   [](SnpIndex s) { return s - 6; });
    const auto a = full.evaluate_full(global);
    const auto b = sliced.evaluate_full(local);
    // Bit-identical, not merely close: the slice re-packs the same
    // plane bits, so every pipeline stage sees identical inputs.
    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.t1.statistic, b.t1.statistic);
    EXPECT_EQ(a.lrt, b.lrt);
  }
}

struct ScanFixture {
  genomics::Dataset dataset;
  PackedGenotypeMatrix store;
  std::vector<WindowSpec> windows;
  WindowScanConfig config;

  explicit ScanFixture(std::uint64_t seed = 42)
      : dataset(ldga::testing::small_synthetic(18, 2, 1234).dataset),
        store(dataset.genotypes()),
        windows(plan_windows(18, 8, 5)) {
    config.ga = fast_ga(seed);
    config.migrate_elites = 2;
  }

  WindowScanResult run() const {
    return run_window_scan(store, dataset.panel(), dataset.statuses(),
                           windows, config);
  }
};

TEST(WindowScan, ScansEveryWindowAndReportsGlobalChampion) {
  const ScanFixture fixture;
  const WindowScanResult result = fixture.run();
  ASSERT_EQ(result.windows.size(), fixture.windows.size());

  std::uint64_t evaluations = 0;
  double best = 0.0;
  for (std::size_t w = 0; w < result.windows.size(); ++w) {
    const WindowResult& window = result.windows[w];
    EXPECT_EQ(window.window.begin, fixture.windows[w].begin);
    evaluations += window.evaluations;
    EXPECT_GT(window.generations, 0u);

    // Reported SNPs are global indices confined to the window.
    ASSERT_FALSE(window.best_snps.empty());
    EXPECT_GE(window.best_snps.size(), fixture.config.ga.min_size);
    EXPECT_LE(window.best_snps.size(), fixture.config.ga.max_size);
    for (const SnpIndex s : window.best_snps) {
      EXPECT_GE(s, window.window.begin);
      EXPECT_LT(s, window.window.begin + window.window.count);
    }
    best = std::max(best, window.best_fitness);
    EXPECT_LE(window.migrants_in, fixture.config.migrate_elites);
  }
  EXPECT_EQ(result.windows.front().migrants_in, 0u);  // no predecessor
  EXPECT_EQ(result.evaluations, evaluations);
  EXPECT_EQ(result.best_fitness, best);
  EXPECT_FALSE(result.best_snps.empty());
}

TEST(WindowScan, ScanIsDeterministicForAFixedSeed) {
  const ScanFixture fixture;
  const WindowScanResult first = fixture.run();
  const WindowScanResult second = fixture.run();
  EXPECT_EQ(first.best_fitness, second.best_fitness);
  EXPECT_EQ(first.best_snps, second.best_snps);
  EXPECT_EQ(first.evaluations, second.evaluations);
  for (std::size_t w = 0; w < first.windows.size(); ++w) {
    EXPECT_EQ(first.windows[w].best_fitness, second.windows[w].best_fitness);
    EXPECT_EQ(first.windows[w].best_snps, second.windows[w].best_snps);
  }
}

TEST(WindowScan, DifferentSeedsDecorrelateWindows) {
  const ScanFixture a(42);
  const ScanFixture b(43);
  const WindowScanResult ra = a.run();
  const WindowScanResult rb = b.run();
  // Different scan seeds must at least change the work performed (the
  // search paths diverge even if both find the planted signal).
  EXPECT_TRUE(ra.evaluations != rb.evaluations ||
              ra.best_snps != rb.best_snps ||
              ra.best_fitness != rb.best_fitness);
}

TEST(WindowScan, MmapStoreScanMatchesInMemoryScanExactly) {
  const ScanFixture fixture;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ldga_scan_" + std::to_string(::getpid()) + ".pgs"))
          .string();
  genomics::write_packed_store(path, fixture.dataset);

  const WindowScanResult memory = fixture.run();
  {
    const genomics::PackedGenotypeStore mapped =
        genomics::PackedGenotypeStore::open(path);
    const WindowScanResult disk =
        run_window_scan(mapped, mapped.panel(), mapped.statuses(),
                        fixture.windows, fixture.config);
    EXPECT_EQ(disk.best_fitness, memory.best_fitness);
    EXPECT_EQ(disk.best_snps, memory.best_snps);
    EXPECT_EQ(disk.evaluations, memory.evaluations);
  }
  std::remove(path.c_str());
}

TEST(WindowScan, ConfigRejectsDegenerateConcurrency) {
  WindowScanConfig config;
  config.ga = fast_ga(1);
  config.concurrent_windows = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.concurrent_windows = 1;
  config.engine = ScanEngine::kAsync;
  config.stream_lanes = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(WindowScan, SequentialScanUnchangedBySharedEvalPool) {
  // eval_workers only changes which backend scores a generation, and
  // backends are result-invariant by contract — the sequential
  // reference must stay bit-exact with the pool hoisted in.
  const ScanFixture serial;
  ScanFixture pooled;
  pooled.config.eval_workers = 3;
  const WindowScanResult a = serial.run();
  const WindowScanResult b = pooled.run();
  EXPECT_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.best_snps, b.best_snps);
  EXPECT_EQ(a.evaluations, b.evaluations);
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].best_snps, b.windows[w].best_snps);
    EXPECT_EQ(a.windows[w].migrants_in, b.windows[w].migrants_in);
  }
}

TEST(WindowScan, SequentialTelemetryRecordsScanOrderAndDonor) {
  const ScanFixture fixture;
  const WindowScanResult result = fixture.run();
  for (std::size_t w = 0; w < result.windows.size(); ++w) {
    EXPECT_EQ(result.windows[w].completion_rank, w);
    if (result.windows[w].migrants_in > 0) {
      // The reference donates strictly from the previous window.
      ASSERT_EQ(result.windows[w].donor_windows.size(), 1u);
      EXPECT_EQ(result.windows[w].donor_windows[0], w - 1);
    } else {
      EXPECT_TRUE(result.windows[w].donor_windows.empty());
    }
  }
}

/// Disjoint windows have no donors in any mode, so every window's GA
/// is a pure function of the scan seed — concurrency cannot move a
/// bit, which pins the scheduler against the sequential reference.
std::vector<WindowSpec> disjoint_windows() { return {{0, 6}, {6, 6}, {12, 6}}; }

TEST(WindowScan, PipelinedScanMatchesSequentialOnDisjointWindows) {
  const ScanFixture fixture;
  const std::vector<WindowSpec> windows = disjoint_windows();
  WindowScanConfig reference = fixture.config;
  const WindowScanResult sequential =
      run_window_scan(fixture.store, fixture.dataset.panel(),
                      fixture.dataset.statuses(), windows, reference);

  for (const std::uint32_t concurrency : {2u, 4u}) {
    WindowScanConfig pipelined = fixture.config;
    pipelined.concurrent_windows = concurrency;
    const WindowScanResult result =
        run_window_scan(fixture.store, fixture.dataset.panel(),
                        fixture.dataset.statuses(), windows, pipelined);
    ASSERT_EQ(result.windows.size(), sequential.windows.size());
    EXPECT_EQ(result.best_fitness, sequential.best_fitness);
    EXPECT_EQ(result.best_snps, sequential.best_snps);
    EXPECT_EQ(result.evaluations, sequential.evaluations);
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
      EXPECT_EQ(result.windows[w].best_snps, sequential.windows[w].best_snps);
      EXPECT_EQ(result.windows[w].best_fitness,
                sequential.windows[w].best_fitness);
      EXPECT_EQ(result.windows[w].evaluations,
                sequential.windows[w].evaluations);
      EXPECT_EQ(result.windows[w].migrants_in, 0u);
    }
  }
}

TEST(WindowScan, PipelinedScanTracksOverlapDependencies) {
  const ScanFixture fixture;
  WindowScanConfig config = fixture.config;
  config.concurrent_windows = 2;
  const WindowScanResult result =
      run_window_scan(fixture.store, fixture.dataset.panel(),
                      fixture.dataset.statuses(), fixture.windows, config);
  ASSERT_EQ(result.windows.size(), fixture.windows.size());

  // Completion ranks are a permutation of the scan positions.
  std::vector<bool> seen(result.windows.size(), false);
  for (const WindowResult& window : result.windows) {
    ASSERT_LT(window.completion_rank, result.windows.size());
    EXPECT_FALSE(seen[window.completion_rank]);
    seen[window.completion_rank] = true;

    // A donor must be an overlapping window that finished earlier.
    for (const std::uint32_t donor : window.donor_windows) {
      ASSERT_LT(donor, result.windows.size());
      const WindowResult& source = result.windows[donor];
      EXPECT_LT(source.completion_rank, window.completion_rank);
      EXPECT_LT(source.window.begin,
                window.window.begin + window.window.count);
      EXPECT_LT(window.window.begin,
                source.window.begin + source.window.count);
    }
    EXPECT_LE(window.migrants_in, config.migrate_elites);
    ASSERT_FALSE(window.best_snps.empty());
    for (const SnpIndex s : window.best_snps) {
      EXPECT_GE(s, window.window.begin);
      EXPECT_LT(s, window.window.begin + window.window.count);
    }
  }
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_FALSE(result.best_snps.empty());
}

TEST(WindowScan, AsyncEngineScansOverSharedStream) {
  const ScanFixture fixture;
  WindowScanConfig config = fixture.config;
  config.engine = ScanEngine::kAsync;
  config.concurrent_windows = 2;
  config.stream_lanes = 2;
  const WindowScanResult result =
      run_window_scan(fixture.store, fixture.dataset.panel(),
                      fixture.dataset.statuses(), fixture.windows, config);
  ASSERT_EQ(result.windows.size(), fixture.windows.size());
  for (const WindowResult& window : result.windows) {
    ASSERT_FALSE(window.best_snps.empty());
    EXPECT_GE(window.best_snps.size(), config.ga.min_size);
    EXPECT_LE(window.best_snps.size(), config.ga.max_size);
    for (const SnpIndex s : window.best_snps) {
      EXPECT_GE(s, window.window.begin);
      EXPECT_LT(s, window.window.begin + window.window.count);
    }
    EXPECT_GT(window.evaluations, 0u);
  }
  EXPECT_FALSE(result.best_snps.empty());
  EXPECT_GT(result.best_fitness, 0.0);
}

TEST(WindowScan, SchedulerIncrementalEnqueueMatchesBatch) {
  // The pipeline driver feeds windows one at a time as admissions
  // arrive; the result must match handing the same list over at once.
  const ScanFixture fixture;
  const std::vector<WindowSpec> windows = disjoint_windows();
  WindowScanConfig config = fixture.config;
  config.concurrent_windows = 2;
  const WindowScanResult batch =
      run_window_scan(fixture.store, fixture.dataset.panel(),
                      fixture.dataset.statuses(), windows, config);

  WindowScanScheduler scheduler(fixture.store, fixture.dataset.panel(),
                                fixture.dataset.statuses(), config,
                                static_cast<std::uint32_t>(windows.size()));
  for (const WindowSpec& window : windows) scheduler.enqueue(window);
  const WindowScanResult incremental = scheduler.finish();

  EXPECT_EQ(incremental.best_fitness, batch.best_fitness);
  EXPECT_EQ(incremental.best_snps, batch.best_snps);
  EXPECT_EQ(incremental.evaluations, batch.evaluations);
  ASSERT_EQ(incremental.windows.size(), batch.windows.size());
  for (std::size_t w = 0; w < batch.windows.size(); ++w) {
    EXPECT_EQ(incremental.windows[w].best_snps, batch.windows[w].best_snps);
  }
}

TEST(WindowScan, MigrationOffStillScans) {
  ScanFixture fixture;
  fixture.config.migrate_elites = 0;
  const WindowScanResult result = fixture.run();
  for (const WindowResult& window : result.windows) {
    EXPECT_EQ(window.migrants_in, 0u);
  }
  EXPECT_FALSE(result.best_snps.empty());
}

}  // namespace
}  // namespace ldga::ga
