#include "util/numeric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ldga {
namespace {

TEST(KahanSum, ExactForSmallIntegers) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.add(i);
  EXPECT_DOUBLE_EQ(sum.value(), 5050.0);
}

TEST(KahanSum, RecoversCancellationNaiveSumLoses) {
  // 1 + 1e-16 added 10^6 times: naive double accumulation drops the
  // small terms entirely; compensated summation keeps them.
  KahanSum sum;
  double naive = 0.0;
  sum.add(1.0);
  naive += 1.0;
  const double tiny = 1e-16;
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) {
    sum.add(tiny);
    naive += tiny;
  }
  const double expected = 1.0 + n * tiny;
  EXPECT_NEAR(sum.value(), expected, 1e-12);
  EXPECT_LT(std::abs(naive - expected),
            std::abs(sum.value() - expected) + 1e-9);
}

TEST(KahanSum, HandlesAlternatingSigns) {
  KahanSum sum;
  for (int i = 0; i < 10'000; ++i) {
    sum.add(1e10);
    sum.add(-1e10);
    sum.add(1.0);
  }
  EXPECT_NEAR(sum.value(), 10'000.0, 1e-6);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 4.5);
  EXPECT_EQ(stats.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (const double v : values) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, StableForLargeOffset) {
  // Welford should not lose precision with a large common offset.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.variance(), 0.25025, 1e-3);
}

TEST(NormalizeInPlace, ScalesToUnitSum) {
  std::vector<double> values{1.0, 3.0, 4.0};
  const double total = normalize_in_place(values);
  EXPECT_DOUBLE_EQ(total, 8.0);
  EXPECT_DOUBLE_EQ(values[0], 0.125);
  EXPECT_DOUBLE_EQ(values[1], 0.375);
  EXPECT_DOUBLE_EQ(values[2], 0.5);
}

TEST(NormalizeInPlace, ZeroTotalDies) {
  std::vector<double> values{0.0, 0.0};
  EXPECT_DEATH(normalize_in_place(values), "precondition");
}

TEST(NormalizeInPlace, NegativeValueDies) {
  std::vector<double> values{1.0, -0.5};
  EXPECT_DEATH(normalize_in_place(values), "precondition");
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 0.5), 6.0);
}

}  // namespace
}  // namespace ldga
