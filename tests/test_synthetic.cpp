#include "genomics/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/evaluator.hpp"
#include "util/error.hpp"

namespace ldga::genomics {
namespace {

TEST(SyntheticConfig, Validation) {
  SyntheticConfig config;
  config.snp_count = 1;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.affected_count = 0;
  config.unaffected_count = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.active_snps = {5, 3};  // not ascending
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.active_snps = {3, 3};  // duplicate
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.active_snps = {60};  // out of range for 51 SNPs
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.active_snp_count = 99;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.missing_rate = 0.9;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  EXPECT_NO_THROW(config.validate());
}

TEST(Synthetic, ProducesRequestedCohortShape) {
  SyntheticConfig config;
  config.snp_count = 20;
  config.affected_count = 13;
  config.unaffected_count = 17;
  config.unknown_count = 5;
  Rng rng(1);
  const auto result = generate_synthetic(config, rng);
  EXPECT_EQ(result.dataset.snp_count(), 20u);
  EXPECT_EQ(result.dataset.individual_count(), 35u);
  EXPECT_EQ(result.dataset.count(Status::Affected), 13u);
  EXPECT_EQ(result.dataset.count(Status::Unaffected), 17u);
  EXPECT_EQ(result.dataset.count(Status::Unknown), 5u);
}

TEST(Synthetic, PlantedTruthIsWellFormed) {
  SyntheticConfig config;
  config.snp_count = 30;
  config.active_snp_count = 4;
  Rng rng(2);
  const auto result = generate_synthetic(config, rng);
  ASSERT_EQ(result.truth.snps.size(), 4u);
  ASSERT_EQ(result.truth.alleles.size(), 4u);
  EXPECT_TRUE(std::is_sorted(result.truth.snps.begin(),
                             result.truth.snps.end()));
  for (const auto snp : result.truth.snps) EXPECT_LT(snp, 30u);
}

TEST(Synthetic, ExplicitActiveSnpsAreUsed) {
  SyntheticConfig config;
  config.snp_count = 15;
  config.active_snps = {2, 7, 11};
  Rng rng(3);
  const auto result = generate_synthetic(config, rng);
  EXPECT_EQ(result.truth.snps, (std::vector<SnpIndex>{2, 7, 11}));
}

TEST(Synthetic, NullCohortHasNoTruth) {
  SyntheticConfig config;
  config.snp_count = 10;
  config.active_snp_count = 0;
  Rng rng(4);
  const auto result = generate_synthetic(config, rng);
  EXPECT_TRUE(result.truth.snps.empty());
  EXPECT_EQ(result.dataset.count(Status::Affected),
            config.affected_count);
}

TEST(Synthetic, DeterministicForFixedSeed) {
  SyntheticConfig config;
  config.snp_count = 12;
  Rng rng1(5), rng2(5);
  const auto a = generate_synthetic(config, rng1);
  const auto b = generate_synthetic(config, rng2);
  EXPECT_EQ(a.truth.snps, b.truth.snps);
  for (std::uint32_t i = 0; i < a.dataset.individual_count(); ++i) {
    for (SnpIndex s = 0; s < a.dataset.snp_count(); ++s) {
      EXPECT_EQ(a.dataset.genotypes().at(i, s),
                b.dataset.genotypes().at(i, s));
    }
  }
}

TEST(Synthetic, MissingRateProducesMissingCells) {
  SyntheticConfig config;
  config.snp_count = 20;
  config.missing_rate = 0.2;
  Rng rng(6);
  const auto result = generate_synthetic(config, rng);
  std::uint32_t missing = 0, total = 0;
  for (std::uint32_t i = 0; i < result.dataset.individual_count(); ++i) {
    for (SnpIndex s = 0; s < result.dataset.snp_count(); ++s) {
      ++total;
      if (is_missing(result.dataset.genotypes().at(i, s))) ++missing;
    }
  }
  EXPECT_NEAR(missing / static_cast<double>(total), 0.2, 0.03);
}

TEST(Synthetic, PlantedSignalIsDetectableByThePipeline) {
  // The association score of the planted SNP set must dominate the
  // average random set of the same size — otherwise the generator does
  // not produce the structure the paper's data had.
  SyntheticConfig config;
  config.snp_count = 20;
  config.affected_count = 60;
  config.unaffected_count = 60;
  config.unknown_count = 0;
  config.active_snps = {3, 9};
  Rng rng(7);
  const auto result = generate_synthetic(config, rng);
  const stats::HaplotypeEvaluator evaluator(result.dataset);

  const double planted =
      evaluator.evaluate_full(std::vector<SnpIndex>{3, 9}).fitness;
  double random_mean = 0.0;
  int n = 0;
  for (SnpIndex a = 0; a < 20; ++a) {
    for (SnpIndex b = a + 1; b < 20; ++b) {
      if (a == 3 && b == 9) continue;
      random_mean +=
          evaluator.evaluate_full(std::vector<SnpIndex>{a, b}).fitness;
      ++n;
    }
  }
  random_mean /= n;
  EXPECT_GT(planted, 2.0 * random_mean);
}

TEST(Synthetic, ImpossibleQuotasFailLoudly) {
  SyntheticConfig config;
  config.snp_count = 10;
  config.active_snp_count = 0;
  config.affected_count = 3;
  config.unaffected_count = 3;
  // Null cohort fills quotas by coin flip — that always works; instead
  // make affected nearly impossible via a signal model with tiny
  // baseline and no planted effect reachable.
  config.active_snp_count = 1;
  config.disease.baseline_risk = 1e-9;
  config.disease.relative_risk = 1.0;
  Rng rng(8);
  EXPECT_THROW(generate_synthetic(config, rng), ConfigError);
}

}  // namespace
}  // namespace ldga::genomics
