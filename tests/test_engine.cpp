#include "ga/engine.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::ga {
namespace {

/// A small, fast configuration used across the engine tests.
GaConfig fast_config() {
  GaConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.population_size = 30;
  config.min_subpopulation = 5;
  config.crossovers_per_generation = 6;
  config.mutations_per_generation = 10;
  config.stagnation_generations = 15;
  config.random_immigrant_stagnation = 6;
  config.max_generations = 60;
  config.seed = 5;
  return config;
}

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const auto synthetic = ldga::testing::small_synthetic(12, 2, 321);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  return evaluator;
}

TEST(GaConfigValidation, CatchesBadSettings) {
  GaConfig config = fast_config();
  config.min_size = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.population_size = 5;  // < 3 sizes * 5 minimum
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.mutation_global_rate = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.min_operator_rate = 0.5;  // 3 * 0.5 > 0.9
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.crossovers_per_generation = 0;
  config.mutations_per_generation = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  EXPECT_NO_THROW(config.validate());
}

TEST(GaEngine, RejectsMaxSizeBeyondEvaluator) {
  stats::EvaluatorConfig eval_config;
  eval_config.max_loci = 3;
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 1);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset, eval_config);
  GaConfig config = fast_config();  // max_size = 4 > 3
  EXPECT_THROW(GaEngine(evaluator, config), ConfigError);
}

TEST(GaEngine, RejectsPanelWithNoSpareSnps) {
  const auto synthetic = ldga::testing::small_synthetic(4, 0, 2);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  GaConfig config = fast_config();  // max_size = 4 == panel size
  EXPECT_THROW(GaEngine(evaluator, config), ConfigError);
}

TEST(GaEngine, RunProducesBestPerSize) {
  GaEngine engine(shared_evaluator(), fast_config());
  const GaResult result = engine.run();
  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& best = result.best_by_size[i];
    EXPECT_EQ(best.size(), 2u + i);
    EXPECT_TRUE(best.evaluated());
    EXPECT_GE(best.fitness(), 0.0);
  }
  EXPECT_GT(result.generations, 0u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(GaEngine, DeterministicForFixedSeed) {
  GaEngine engine1(shared_evaluator(), fast_config());
  GaEngine engine2(shared_evaluator(), fast_config());
  const GaResult r1 = engine1.run();
  const GaResult r2 = engine2.run();
  ASSERT_EQ(r1.best_by_size.size(), r2.best_by_size.size());
  for (std::size_t i = 0; i < r1.best_by_size.size(); ++i) {
    EXPECT_TRUE(r1.best_by_size[i].same_snps(r2.best_by_size[i]));
    EXPECT_DOUBLE_EQ(r1.best_by_size[i].fitness(),
                     r2.best_by_size[i].fitness());
  }
  EXPECT_EQ(r1.generations, r2.generations);
}

TEST(GaEngine, BackendsProduceIdenticalSearch) {
  // The synchronous evaluation phase returns results in task order, so
  // serial, pool and farm runs must walk the identical trajectory.
  GaConfig serial = fast_config();
  serial.backend = EvalBackend::Serial;
  GaConfig pooled = fast_config();
  pooled.backend = EvalBackend::ThreadPool;
  pooled.workers = 3;
  GaConfig farmed = fast_config();
  farmed.backend = EvalBackend::Farm;
  farmed.workers = 2;

  const GaResult rs = GaEngine(shared_evaluator(), serial).run();
  const GaResult rp = GaEngine(shared_evaluator(), pooled).run();
  const GaResult rf = GaEngine(shared_evaluator(), farmed).run();

  ASSERT_EQ(rs.best_by_size.size(), rp.best_by_size.size());
  for (std::size_t i = 0; i < rs.best_by_size.size(); ++i) {
    EXPECT_TRUE(rs.best_by_size[i].same_snps(rp.best_by_size[i]));
    EXPECT_TRUE(rs.best_by_size[i].same_snps(rf.best_by_size[i]));
  }
  EXPECT_EQ(rs.generations, rp.generations);
  EXPECT_EQ(rs.generations, rf.generations);
}

TEST(GaEngine, StagnationTerminatesTheRun) {
  GaConfig config = fast_config();
  config.stagnation_generations = 5;
  config.max_generations = 1000;
  config.schemes.random_immigrants = false;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_TRUE(result.terminated_by_stagnation);
  EXPECT_LT(result.generations, 1000u);
}

TEST(GaEngine, MaxGenerationsCapsTheRun) {
  GaConfig config = fast_config();
  config.stagnation_generations = 100000;
  config.max_generations = 7;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_EQ(result.generations, 7u);
  EXPECT_FALSE(result.terminated_by_stagnation);
}

TEST(GaEngine, MaxEvaluationsStopsEarly) {
  GaConfig config = fast_config();
  config.stagnation_generations = 100000;
  config.max_generations = 100000;
  config.max_evaluations = 200;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  // Stops at the first generation boundary past the budget.
  EXPECT_LT(result.evaluations, 600u);
}

TEST(GaEngine, RandomImmigrantsFireUnderStagnation) {
  GaConfig config = fast_config();
  config.random_immigrant_stagnation = 3;
  config.stagnation_generations = 20;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_GT(result.immigrant_events, 0u);
}

TEST(GaEngine, SchemesDisableMechanisms) {
  GaConfig config = fast_config();
  config.schemes = GaSchemes::baseline();
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_EQ(result.immigrant_events, 0u);
  // Baseline still produces valid per-size results.
  EXPECT_EQ(result.best_by_size.size(), 3u);
}

TEST(GaEngine, HistoryAndCallback) {
  GaConfig config = fast_config();
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  std::uint32_t callbacks = 0;
  engine.set_generation_callback(
      [&callbacks](const GenerationInfo& info) {
        ++callbacks;
        EXPECT_EQ(info.best_by_size.size(), 3u);
        EXPECT_EQ(info.rates.mutation.size(), 3u);
        EXPECT_EQ(info.rates.crossover.size(), 2u);
        double mutation_sum = 0.0;
        for (const double r : info.rates.mutation) mutation_sum += r;
        EXPECT_NEAR(mutation_sum, 0.9, 1e-9);
      });
  const GaResult result = engine.run();
  EXPECT_EQ(callbacks, result.generations);
  EXPECT_EQ(result.history.size(), result.generations);
  // Evaluations are cumulative in history.
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].evaluations,
              result.history[i - 1].evaluations);
  }
}

TEST(GaEngine, DisabledSizeMutationsKeepSingleOperator) {
  GaConfig config = fast_config();
  config.schemes.size_mutations = false;
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history.front().rates.mutation.size(), 1u);
}

TEST(GaEngine, DisabledInterCrossoverKeepsSingleOperator) {
  GaConfig config = fast_config();
  config.schemes.inter_population_crossover = false;
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history.front().rates.crossover.size(), 1u);
}

TEST(GaEngine, WarmStartsEnterThePopulation) {
  // Seed the known best size-2 set; the GA's size-2 winner can then
  // never be worse than it.
  GaConfig config = fast_config();
  config.warm_starts = {{0, 1}, {2, 5, 9}};
  config.max_generations = 5;
  config.stagnation_generations = 5;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  const double seeded_fitness =
      shared_evaluator().evaluate_full(std::vector<SnpIndex>{0, 1}).fitness;
  EXPECT_GE(result.best_by_size[0].fitness(), seeded_fitness - 1e-9);
}

TEST(GaEngine, WarmStartOutsideSizeRangeIsRejected) {
  GaConfig config = fast_config();  // sizes 2..4
  config.warm_starts = {{0, 1, 2, 3, 4}};
  EXPECT_THROW(GaEngine(shared_evaluator(), config), ConfigError);
}

TEST(GaEngine, DuplicateWarmStartsAreDeduplicated) {
  GaConfig config = fast_config();
  config.warm_starts = {{0, 1}, {1, 0}, {0, 1}};
  config.max_generations = 3;
  config.stagnation_generations = 3;
  GaEngine engine(shared_evaluator(), config);
  EXPECT_NO_THROW(engine.run());
}

TEST(GaEngine, UniformAllocationAlsoRuns) {
  GaConfig config = fast_config();
  config.allocation = AllocationPolicy::Uniform;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_EQ(result.best_by_size.size(), 3u);
  for (const auto& best : result.best_by_size) {
    EXPECT_TRUE(best.evaluated());
  }
}

TEST(GaEngine, RespectsFeasibilityFilterInWinners) {
  // With an enabled filter and a panel with plenty of feasible pairs,
  // the per-size winners must satisfy the §2.3 conditions.
  static const auto synthetic = ldga::testing::small_synthetic(12, 2, 808);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  static const auto ld = genomics::LdMatrix::compute(synthetic.dataset);
  static const auto freqs =
      genomics::AlleleFrequencyTable::estimate(synthetic.dataset);
  ConstraintConfig constraint_config;
  constraint_config.max_pairwise_d_prime = 0.995;
  const FeasibilityFilter filter(ld, freqs, constraint_config);
  ASSERT_TRUE(filter.enabled());

  GaConfig config = fast_config();
  config.max_generations = 40;
  GaEngine engine(evaluator, config, filter);
  const GaResult result = engine.run();
  for (const auto& best : result.best_by_size) {
    EXPECT_TRUE(filter.feasible(best.snps()))
        << "winner " << best.to_string() << " violates constraints";
  }
}

TEST(GaEngine, BestFitnessNeverDecreasesOverGenerations) {
  GaConfig config = fast_config();
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  for (std::size_t s = 0; s < 3; ++s) {
    double previous = 0.0;
    for (const auto& info : result.history) {
      EXPECT_GE(info.best_by_size[s], previous - 1e-9);
      previous = info.best_by_size[s];
    }
  }
}

}  // namespace
}  // namespace ldga::ga
