#include "ga/engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "parallel/fault_injection.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::ga {
namespace {

/// A small, fast configuration used across the engine tests.
GaConfig fast_config() {
  GaConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.population_size = 30;
  config.min_subpopulation = 5;
  config.crossovers_per_generation = 6;
  config.mutations_per_generation = 10;
  config.stagnation_generations = 15;
  config.random_immigrant_stagnation = 6;
  config.max_generations = 60;
  config.seed = 5;
  return config;
}

const genomics::Dataset& shared_dataset() {
  static const auto synthetic = ldga::testing::small_synthetic(12, 2, 321);
  return synthetic.dataset;
}

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const stats::HaplotypeEvaluator evaluator(shared_dataset());
  return evaluator;
}

TEST(GaConfigValidation, CatchesBadSettings) {
  GaConfig config = fast_config();
  config.min_size = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.population_size = 5;  // < 3 sizes * 5 minimum
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.mutation_global_rate = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.min_operator_rate = 0.5;  // 3 * 0.5 > 0.9
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.crossovers_per_generation = 0;
  config.mutations_per_generation = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  EXPECT_NO_THROW(config.validate());
}

TEST(GaEngine, RejectsMaxSizeBeyondEvaluator) {
  stats::EvaluatorConfig eval_config;
  eval_config.max_loci = 3;
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 1);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset, eval_config);
  GaConfig config = fast_config();  // max_size = 4 > 3
  EXPECT_THROW(GaEngine(evaluator, config), ConfigError);
}

TEST(GaEngine, RejectsPanelWithNoSpareSnps) {
  const auto synthetic = ldga::testing::small_synthetic(4, 0, 2);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  GaConfig config = fast_config();  // max_size = 4 == panel size
  EXPECT_THROW(GaEngine(evaluator, config), ConfigError);
}

TEST(GaEngine, RunProducesBestPerSize) {
  GaEngine engine(shared_evaluator(), fast_config());
  const GaResult result = engine.run();
  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& best = result.best_by_size[i];
    EXPECT_EQ(best.size(), 2u + i);
    EXPECT_TRUE(best.evaluated());
    EXPECT_GE(best.fitness(), 0.0);
  }
  EXPECT_GT(result.generations, 0u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(GaEngine, DeterministicForFixedSeed) {
  GaEngine engine1(shared_evaluator(), fast_config());
  GaEngine engine2(shared_evaluator(), fast_config());
  const GaResult r1 = engine1.run();
  const GaResult r2 = engine2.run();
  ASSERT_EQ(r1.best_by_size.size(), r2.best_by_size.size());
  for (std::size_t i = 0; i < r1.best_by_size.size(); ++i) {
    EXPECT_TRUE(r1.best_by_size[i].same_snps(r2.best_by_size[i]));
    EXPECT_DOUBLE_EQ(r1.best_by_size[i].fitness(),
                     r2.best_by_size[i].fitness());
  }
  EXPECT_EQ(r1.generations, r2.generations);
}

TEST(GaEngine, BackendsProduceIdenticalSearch) {
  // The batched evaluation service scatters results in task order, so
  // serial, pool and farm runs must walk the identical trajectory.
  // Each run gets a fresh evaluator (cold cache) so every backend does
  // its own full share of pipeline work.
  const stats::HaplotypeEvaluator serial_eval(shared_dataset());
  const GaResult rs =
      GaEngine(serial_eval, fast_config(),
               stats::make_serial_backend(serial_eval))
          .run();

  stats::BackendOptions pool_options;
  pool_options.workers = 3;
  const stats::HaplotypeEvaluator pool_eval(shared_dataset());
  const GaResult rp =
      GaEngine(pool_eval, fast_config(),
               stats::make_thread_pool_backend(pool_eval, pool_options))
          .run();

  stats::BackendOptions farm_options;
  farm_options.workers = 2;
  const stats::HaplotypeEvaluator farm_eval(shared_dataset());
  const GaResult rf =
      GaEngine(farm_eval, fast_config(),
               stats::make_farm_backend(farm_eval, farm_options))
          .run();

  ASSERT_EQ(rs.best_by_size.size(), rp.best_by_size.size());
  for (std::size_t i = 0; i < rs.best_by_size.size(); ++i) {
    EXPECT_TRUE(rs.best_by_size[i].same_snps(rp.best_by_size[i]));
    EXPECT_TRUE(rs.best_by_size[i].same_snps(rf.best_by_size[i]));
  }
  EXPECT_EQ(rs.generations, rp.generations);
  EXPECT_EQ(rs.generations, rf.generations);
  // Identical trajectories must also cost identical pipeline work.
  EXPECT_EQ(serial_eval.evaluation_count(), pool_eval.evaluation_count());
  EXPECT_EQ(serial_eval.evaluation_count(), farm_eval.evaluation_count());
}

TEST(GaEngine, StagnationTerminatesTheRun) {
  GaConfig config = fast_config();
  config.stagnation_generations = 5;
  config.max_generations = 1000;
  config.schemes.random_immigrants = false;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_TRUE(result.terminated_by_stagnation);
  EXPECT_LT(result.generations, 1000u);
}

TEST(GaEngine, MaxGenerationsCapsTheRun) {
  GaConfig config = fast_config();
  config.stagnation_generations = 100000;
  config.max_generations = 7;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_EQ(result.generations, 7u);
  EXPECT_FALSE(result.terminated_by_stagnation);
}

TEST(GaEngine, MaxEvaluationsStopsEarly) {
  GaConfig config = fast_config();
  config.stagnation_generations = 100000;
  config.max_generations = 100000;
  config.max_evaluations = 200;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  // Stops at the first generation boundary past the budget.
  EXPECT_LT(result.evaluations, 600u);
}

TEST(GaEngine, RandomImmigrantsFireUnderStagnation) {
  GaConfig config = fast_config();
  config.random_immigrant_stagnation = 3;
  config.stagnation_generations = 20;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_GT(result.immigrant_events, 0u);
}

TEST(GaEngine, SchemesDisableMechanisms) {
  GaConfig config = fast_config();
  config.schemes = GaSchemes::baseline();
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_EQ(result.immigrant_events, 0u);
  // Baseline still produces valid per-size results.
  EXPECT_EQ(result.best_by_size.size(), 3u);
}

TEST(GaEngine, HistoryAndCallback) {
  GaConfig config = fast_config();
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  std::uint32_t callbacks = 0;
  engine.set_generation_callback(
      [&callbacks](const GenerationInfo& info) {
        ++callbacks;
        EXPECT_EQ(info.best_by_size.size(), 3u);
        EXPECT_EQ(info.rates.mutation.size(), 3u);
        EXPECT_EQ(info.rates.crossover.size(), 2u);
        double mutation_sum = 0.0;
        for (const double r : info.rates.mutation) mutation_sum += r;
        EXPECT_NEAR(mutation_sum, 0.9, 1e-9);
      });
  const GaResult result = engine.run();
  EXPECT_EQ(callbacks, result.generations);
  EXPECT_EQ(result.history.size(), result.generations);
  // Evaluations are cumulative in history.
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].evaluations,
              result.history[i - 1].evaluations);
  }
}

TEST(GaEngine, DisabledSizeMutationsKeepSingleOperator) {
  GaConfig config = fast_config();
  config.schemes.size_mutations = false;
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history.front().rates.mutation.size(), 1u);
}

TEST(GaEngine, DisabledInterCrossoverKeepsSingleOperator) {
  GaConfig config = fast_config();
  config.schemes.inter_population_crossover = false;
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history.front().rates.crossover.size(), 1u);
}

TEST(GaEngine, WarmStartsEnterThePopulation) {
  // Seed the known best size-2 set; the GA's size-2 winner can then
  // never be worse than it.
  GaConfig config = fast_config();
  config.warm_starts = {{0, 1}, {2, 5, 9}};
  config.max_generations = 5;
  config.stagnation_generations = 5;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  const double seeded_fitness =
      shared_evaluator().evaluate_full(std::vector<SnpIndex>{0, 1}).fitness;
  EXPECT_GE(result.best_by_size[0].fitness(), seeded_fitness - 1e-9);
}

TEST(GaEngine, WarmStartOutsideSizeRangeIsRejected) {
  GaConfig config = fast_config();  // sizes 2..4
  config.warm_starts = {{0, 1, 2, 3, 4}};
  EXPECT_THROW(GaEngine(shared_evaluator(), config), ConfigError);
}

TEST(GaEngine, DuplicateWarmStartsAreDeduplicated) {
  GaConfig config = fast_config();
  config.warm_starts = {{0, 1}, {1, 0}, {0, 1}};
  config.max_generations = 3;
  config.stagnation_generations = 3;
  GaEngine engine(shared_evaluator(), config);
  EXPECT_NO_THROW(engine.run());
}

TEST(GaEngine, UniformAllocationAlsoRuns) {
  GaConfig config = fast_config();
  config.allocation = AllocationPolicy::Uniform;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  EXPECT_EQ(result.best_by_size.size(), 3u);
  for (const auto& best : result.best_by_size) {
    EXPECT_TRUE(best.evaluated());
  }
}

TEST(GaEngine, RespectsFeasibilityFilterInWinners) {
  // With an enabled filter and a panel with plenty of feasible pairs,
  // the per-size winners must satisfy the §2.3 conditions.
  static const auto synthetic = ldga::testing::small_synthetic(12, 2, 808);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  static const auto ld = genomics::LdMatrix::compute(synthetic.dataset);
  static const auto freqs =
      genomics::AlleleFrequencyTable::estimate(synthetic.dataset);
  ConstraintConfig constraint_config;
  constraint_config.max_pairwise_d_prime = 0.995;
  const FeasibilityFilter filter(ld, freqs, constraint_config);
  ASSERT_TRUE(filter.enabled());

  GaConfig config = fast_config();
  config.max_generations = 40;
  GaEngine engine(evaluator, config, filter);
  const GaResult result = engine.run();
  for (const auto& best : result.best_by_size) {
    EXPECT_TRUE(filter.feasible(best.snps()))
        << "winner " << best.to_string() << " violates constraints";
  }
}

TEST(GaEngineFaultTolerance, FarmWithInjectedFaultsMatchesSerialRun) {
  // Acceptance: with a deterministic 20% injected failure rate on every
  // evaluation attempt, a full farm run must complete every phase and
  // still walk the exact serial trajectory (faults are retried, never
  // change results).
  GaConfig config = fast_config();
  config.max_generations = 15;

  const stats::HaplotypeEvaluator serial_eval(shared_dataset());
  const GaResult rs = GaEngine(serial_eval, config).run();

  parallel::FaultInjector::Config faults;
  faults.seed = 99;
  faults.throw_probability = 0.2;
  auto injector = std::make_shared<parallel::FaultInjector>(faults);

  stats::BackendOptions options;
  options.workers = 3;
  // 20% per attempt exhausts the default 2 retries once in ~125 tasks;
  // give the policy enough headroom that exhaustion never happens.
  options.farm_policy.max_task_retries = 8;
  options.fault_injector = injector;
  const stats::HaplotypeEvaluator farm_eval(shared_dataset());
  GaEngine noisy(farm_eval, config,
                 stats::make_farm_backend(farm_eval, options));
  const GaResult rf = noisy.run();

  ASSERT_EQ(rf.best_by_size.size(), rs.best_by_size.size());
  for (std::size_t i = 0; i < rs.best_by_size.size(); ++i) {
    EXPECT_TRUE(rf.best_by_size[i].same_snps(rs.best_by_size[i]));
    EXPECT_DOUBLE_EQ(rf.best_by_size[i].fitness(),
                     rs.best_by_size[i].fitness());
  }
  EXPECT_EQ(rf.generations, rs.generations);
  EXPECT_GT(injector->injected_throws(), 0u);
  EXPECT_GT(rf.farm_stats.retries, 0u);
  EXPECT_EQ(rf.farm_stats.retries, rf.farm_stats.failures);
  // The fault-free serial run reports phases but no failures.
  EXPECT_GT(rs.farm_stats.phases, 0u);
  EXPECT_EQ(rs.farm_stats.failures, 0u);
}

class GaEngineCheckpoint : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "ldga_engine.ckpt";

  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(GaEngineCheckpoint, KilledRunResumesToIdenticalResult) {
  // Acceptance: run A executes uninterrupted; run B is "killed" after
  // 11 generations (last snapshot at 8) and then resumed. Both must
  // reach the identical final best-per-size haplotypes and stop at the
  // same generation, because resume restores the complete
  // inter-generation state (population, rates, RNG stream, stagnation
  // counters).
  GaConfig base = fast_config();
  base.max_generations = 30;
  const GaResult full = GaEngine(shared_evaluator(), base).run();

  GaConfig interrupted = base;
  interrupted.checkpoint.path = path_;
  interrupted.checkpoint.every = 4;
  interrupted.max_generations = 11;  // the "kill"
  const GaResult partial = GaEngine(shared_evaluator(), interrupted).run();
  ASSERT_EQ(partial.generations, 11u);
  ASSERT_TRUE(checkpoint_exists(path_));

  GaConfig resumed_config = base;
  resumed_config.checkpoint.path = path_;
  resumed_config.checkpoint.every = 4;
  resumed_config.checkpoint.resume = true;
  const GaResult resumed =
      GaEngine(shared_evaluator(), resumed_config).run();

  EXPECT_EQ(resumed.resumed_from_generation, 8u);
  EXPECT_EQ(resumed.generations, full.generations);
  EXPECT_EQ(resumed.immigrant_events, full.immigrant_events);
  EXPECT_EQ(resumed.terminated_by_stagnation,
            full.terminated_by_stagnation);
  ASSERT_EQ(resumed.best_by_size.size(), full.best_by_size.size());
  for (std::size_t i = 0; i < full.best_by_size.size(); ++i) {
    EXPECT_TRUE(resumed.best_by_size[i].same_snps(full.best_by_size[i]));
    EXPECT_DOUBLE_EQ(resumed.best_by_size[i].fitness(),
                     full.best_by_size[i].fitness());
  }
}

TEST_F(GaEngineCheckpoint, ResumeRejectsIncompatibleConfig) {
  GaConfig writer = fast_config();
  writer.checkpoint.path = path_;
  writer.checkpoint.every = 3;
  writer.max_generations = 6;
  GaEngine(shared_evaluator(), writer).run();
  ASSERT_TRUE(checkpoint_exists(path_));

  GaConfig reader = writer;
  reader.checkpoint.resume = true;
  reader.seed = writer.seed + 1;  // different trajectory → incompatible
  EXPECT_THROW(GaEngine(shared_evaluator(), reader).run(),
               CheckpointError);
}

TEST_F(GaEngineCheckpoint, ResumeWithoutFileStartsFresh) {
  GaConfig config = fast_config();
  config.checkpoint.path = path_;
  config.checkpoint.every = 5;
  config.checkpoint.resume = true;  // nothing on disk yet
  config.max_generations = 5;
  const GaResult result = GaEngine(shared_evaluator(), config).run();
  EXPECT_EQ(result.resumed_from_generation, 0u);
  EXPECT_EQ(result.generations, 5u);
  EXPECT_TRUE(checkpoint_exists(path_));  // gen 5 was snapshotted
}

TEST_F(GaEngineCheckpoint, ResumeWithoutPathIsRejected) {
  GaConfig config = fast_config();
  config.checkpoint.resume = true;  // no path
  EXPECT_THROW(GaEngine(shared_evaluator(), config), ConfigError);
}

TEST(GaEngineValidation, FarmPolicyIsValidated) {
  // The policy moved into BackendOptions; every factory validates it.
  stats::BackendOptions options;
  options.farm_policy.quarantine_after = 0;
  EXPECT_THROW(stats::make_serial_backend(shared_evaluator(), options),
               ConfigError);
  EXPECT_THROW(stats::make_thread_pool_backend(shared_evaluator(), options),
               ConfigError);
  EXPECT_THROW(stats::make_farm_backend(shared_evaluator(), options),
               ConfigError);
}

TEST(GaEngineValidation, MaxEvaluationsBelowPopulationIsRejected) {
  GaConfig config = fast_config();
  config.max_evaluations = config.population_size - 1;
  EXPECT_THROW(config.validated(), ConfigError);
  config.max_evaluations = config.population_size;
  EXPECT_NO_THROW(config.validated());
}

TEST(GaEngine, IncrementalPatternCacheLeavesTrajectoryBitIdentical) {
  // The subset-reuse pattern cache is a pure construction shortcut:
  // extension, projection and fresh DFS all produce identical tables,
  // so a run with the cache on must walk the exact trajectory of a
  // run with it off — same individuals, bit-identical fitness, same
  // generation count — while actually taking the incremental routes.
  GaConfig config = fast_config();
  config.record_history = true;

  stats::EvaluatorConfig off_config;
  off_config.incremental.pattern_cache = false;
  const stats::HaplotypeEvaluator off_eval(shared_dataset(), off_config);
  ASSERT_FALSE(off_eval.incremental_active());
  const GaResult off = GaEngine(off_eval, config).run();

  const stats::HaplotypeEvaluator on_eval(shared_dataset());
  ASSERT_TRUE(on_eval.incremental_active());
  const GaResult on = GaEngine(on_eval, config).run();

  EXPECT_EQ(on.generations, off.generations);
  ASSERT_EQ(on.best_by_size.size(), off.best_by_size.size());
  for (std::size_t i = 0; i < on.best_by_size.size(); ++i) {
    EXPECT_TRUE(on.best_by_size[i].same_snps(off.best_by_size[i]));
    // Bit-for-bit, not just within tolerance.
    EXPECT_EQ(on.best_by_size[i].fitness(), off.best_by_size[i].fitness());
  }
  ASSERT_EQ(on.history.size(), off.history.size());
  for (std::size_t g = 0; g < on.history.size(); ++g) {
    EXPECT_EQ(on.history[g].best_by_size, off.history[g].best_by_size)
        << "generation " << g;
  }

  // The identical trajectory must have exercised the cache for real.
  const auto stats = on_eval.incremental_stats();
  EXPECT_GT(stats.entry_builds, 0u);
  EXPECT_GT(stats.provenance_hints, 0u);
  EXPECT_GT(stats.fresh, 0u);
  EXPECT_GT(stats.extended + stats.projected, 0u);
  EXPECT_EQ(on.pattern_cache.entry_builds, stats.entry_builds);
  EXPECT_EQ(off.pattern_cache.entry_reuses + off.pattern_cache.entry_builds, 0u);
}

TEST(GaEngine, CacheCountersAreExactUnderThreadPoolBackend) {
  // GaResult's cache counters come from the evaluator's lock-free
  // stats; under the thread-pool backend they must match the serial
  // run exactly (identical trajectory ⇒ identical probe sequence) and
  // balance internally: with the default unbounded fitness cache each
  // miss is computed and inserted exactly once.
  const GaConfig config = fast_config();

  const stats::HaplotypeEvaluator serial_eval(shared_dataset());
  const GaResult rs = GaEngine(serial_eval, config,
                               stats::make_serial_backend(serial_eval))
                          .run();

  stats::BackendOptions pool_options;
  pool_options.workers = 4;
  const stats::HaplotypeEvaluator pool_eval(shared_dataset());
  const GaResult rp =
      GaEngine(pool_eval, config,
               stats::make_thread_pool_backend(pool_eval, pool_options))
          .run();

  EXPECT_EQ(rp.cache_stats.hits, rs.cache_stats.hits);
  EXPECT_EQ(rp.cache_stats.misses, rs.cache_stats.misses);
  EXPECT_GT(rp.cache_stats.hits + rp.cache_stats.misses, 0u);

  const auto pool_stats = pool_eval.cache_stats();
  EXPECT_EQ(rp.cache_stats.hits, pool_stats.hits);
  EXPECT_EQ(rp.cache_stats.misses, pool_stats.misses);
  EXPECT_EQ(pool_stats.misses, pool_stats.insertions);
  EXPECT_EQ(pool_stats.evictions, 0u);
  EXPECT_EQ(pool_eval.evaluation_count(), serial_eval.evaluation_count());
}

TEST(GaEngine, PerGenerationTelemetryDeltasMatchCumulativeCounters) {
  // Each GenerationInfo carries both the cumulative counters and the
  // per-generation deltas; every delta must equal the difference of
  // consecutive cumulative values, and the last cumulative value must
  // equal the run total in GaResult.
  GaConfig config = fast_config();
  config.record_history = true;
  const stats::HaplotypeEvaluator evaluator(shared_dataset());
  const GaResult result = GaEngine(evaluator, config).run();
  ASSERT_GE(result.history.size(), 2u);
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    const auto& prev = result.history[g - 1];
    const auto& cur = result.history[g];
    EXPECT_EQ(cur.gen_cache_hits, cur.cache_hits - prev.cache_hits)
        << "generation " << g;
    EXPECT_EQ(cur.gen_cache_misses, cur.cache_misses - prev.cache_misses)
        << "generation " << g;
    EXPECT_EQ(cur.gen_pattern_entry_reuses,
              cur.pattern_cache.entry_reuses - prev.pattern_cache.entry_reuses)
        << "generation " << g;
    EXPECT_EQ(cur.gen_pattern_entry_builds,
              cur.pattern_cache.entry_builds - prev.pattern_cache.entry_builds)
        << "generation " << g;
    EXPECT_EQ(cur.gen_warm_starts,
              cur.pattern_cache.warm_starts - prev.pattern_cache.warm_starts)
        << "generation " << g;
  }
  const auto& last = result.history.back();
  EXPECT_EQ(last.cache_hits, result.cache_stats.hits);
  EXPECT_EQ(last.cache_misses, result.cache_stats.misses);
  EXPECT_EQ(last.pattern_cache.entry_reuses, result.pattern_cache.entry_reuses);
  EXPECT_EQ(last.pattern_cache.entry_builds, result.pattern_cache.entry_builds);
  EXPECT_EQ(last.mc_replicates_run, result.mc_replicates_run);
}

TEST(GaEngine, BestFitnessNeverDecreasesOverGenerations) {
  GaConfig config = fast_config();
  config.record_history = true;
  GaEngine engine(shared_evaluator(), config);
  const GaResult result = engine.run();
  for (std::size_t s = 0; s < 3; ++s) {
    double previous = 0.0;
    for (const auto& info : result.history) {
      EXPECT_GE(info.best_by_size[s], previous - 1e-9);
      previous = info.best_by_size[s];
    }
  }
}

}  // namespace
}  // namespace ldga::ga
