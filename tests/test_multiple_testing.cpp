#include "stats/multiple_testing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::stats {
namespace {

TEST(Bonferroni, ScalesByCount) {
  const std::vector<double> p{0.01, 0.2, 0.5};
  const auto adjusted = bonferroni_adjust(p);
  EXPECT_DOUBLE_EQ(adjusted[0], 0.03);
  EXPECT_DOUBLE_EQ(adjusted[1], 0.6);
  EXPECT_DOUBLE_EQ(adjusted[2], 1.0);  // capped
}

TEST(Bonferroni, EmptyAndSingle) {
  EXPECT_TRUE(bonferroni_adjust(std::vector<double>{}).empty());
  const auto one = bonferroni_adjust(std::vector<double>{0.04});
  EXPECT_DOUBLE_EQ(one[0], 0.04);
}

TEST(Holm, KnownExample) {
  // Classic textbook case: p = {0.01, 0.04, 0.03, 0.005}.
  const std::vector<double> p{0.01, 0.04, 0.03, 0.005};
  const auto adjusted = holm_adjust(p);
  // Sorted: 0.005*4=0.02, 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.04->max 0.06
  EXPECT_DOUBLE_EQ(adjusted[3], 0.02);
  EXPECT_DOUBLE_EQ(adjusted[0], 0.03);
  EXPECT_DOUBLE_EQ(adjusted[2], 0.06);
  EXPECT_DOUBLE_EQ(adjusted[1], 0.06);
}

TEST(Holm, NeverLessPowerfulThanBonferroni) {
  Rng rng(5);
  std::vector<double> p;
  for (int i = 0; i < 30; ++i) p.push_back(rng.uniform());
  const auto holm = holm_adjust(p);
  const auto bonf = bonferroni_adjust(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_LE(holm[i], bonf[i] + 1e-12);
    EXPECT_GE(holm[i], p[i] - 1e-12);  // adjustment never decreases p
  }
}

TEST(BenjaminiHochberg, KnownExample) {
  // p = {0.01, 0.02, 0.03, 0.04}: q_i = p_i * 4 / rank, then step-up min.
  const std::vector<double> p{0.01, 0.02, 0.03, 0.04};
  const auto q = benjamini_hochberg_adjust(p);
  EXPECT_DOUBLE_EQ(q[0], 0.04);
  EXPECT_DOUBLE_EQ(q[1], 0.04);
  EXPECT_DOUBLE_EQ(q[2], 0.04);
  EXPECT_DOUBLE_EQ(q[3], 0.04);
}

TEST(BenjaminiHochberg, MonotoneInRank) {
  Rng rng(9);
  std::vector<double> p;
  for (int i = 0; i < 50; ++i) p.push_back(rng.uniform());
  const auto q = benjamini_hochberg_adjust(p);
  // Sorted by p, adjusted values must be non-decreasing.
  std::vector<std::size_t> order(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return p[a] < p[b]; });
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(q[order[i]], q[order[i - 1]] - 1e-12);
  }
  // FDR adjustment is sandwiched between raw p and Bonferroni.
  const auto bonf = bonferroni_adjust(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(q[i], p[i] - 1e-12);
    EXPECT_LE(q[i], bonf[i] + 1e-12);
  }
}

TEST(BenjaminiHochberg, KeepSelectsSignificant) {
  const std::vector<double> p{0.001, 0.8, 0.002, 0.9};
  const auto keep = benjamini_hochberg_keep(p, 0.05);
  EXPECT_EQ(keep, (std::vector<std::size_t>{0, 2}));
}

TEST(MultipleTesting, RejectsInvalidP) {
  EXPECT_THROW(bonferroni_adjust(std::vector<double>{-0.1}), ConfigError);
  EXPECT_THROW(holm_adjust(std::vector<double>{1.2}), ConfigError);
  EXPECT_THROW(benjamini_hochberg_adjust(std::vector<double>{2.0}),
               ConfigError);
}

TEST(MultipleTesting, KeepRejectsBadAlpha) {
  const std::vector<double> p{0.5};
  EXPECT_DEATH(benjamini_hochberg_keep(p, 0.0), "precondition");
}

}  // namespace
}  // namespace ldga::stats
