#include "ga/multipopulation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/combinatorics.hpp"

namespace ldga::ga {
namespace {

TEST(Allocation, SumsToTotal) {
  const auto caps = Multipopulation::allocate_capacities(51, 2, 6, 150, 10);
  EXPECT_EQ(std::accumulate(caps.begin(), caps.end(), 0u), 150u);
  EXPECT_EQ(caps.size(), 5u);
}

TEST(Allocation, RespectsMinimum) {
  const auto caps = Multipopulation::allocate_capacities(51, 2, 6, 150, 10);
  for (const auto c : caps) EXPECT_GE(c, 10u);
}

TEST(Allocation, GrowsWithHaplotypeSize) {
  // Paper §4.2: subpopulation sizes increase with the haplotype size,
  // following the growth of the search space.
  const auto caps = Multipopulation::allocate_capacities(51, 2, 6, 150, 10);
  for (std::size_t i = 1; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], caps[i - 1]);
  }
  EXPECT_GT(caps.back(), caps.front());
}

TEST(Allocation, NeverExceedsSearchSpaceSize) {
  // Tiny panel: C(6,2)=15 < a naive share of 60.
  const auto caps = Multipopulation::allocate_capacities(6, 2, 4, 40, 2);
  EXPECT_LE(caps[0], choose(6, 2));
  EXPECT_LE(caps[1], choose(6, 3));
  EXPECT_LE(caps[2], choose(6, 4));
}

TEST(Allocation, SingleSizeClassTakesEverything) {
  const auto caps = Multipopulation::allocate_capacities(51, 3, 3, 50, 10);
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0], 50u);
}

TEST(Multipopulation, BySizeMapping) {
  Multipopulation population(51, 2, 6, 150, 10);
  EXPECT_EQ(population.subpopulation_count(), 5u);
  for (std::uint32_t size = 2; size <= 6; ++size) {
    EXPECT_EQ(population.by_size(size).haplotype_size(), size);
  }
  EXPECT_TRUE(population.has_size(4));
  EXPECT_FALSE(population.has_size(1));
  EXPECT_FALSE(population.has_size(7));
}

TEST(Multipopulation, BySizeOutOfRangeDies) {
  Multipopulation population(51, 2, 6, 150, 10);
  EXPECT_DEATH(population.by_size(7), "precondition");
}

TEST(Multipopulation, StagnationSignatureTracksBestImprovements) {
  Multipopulation population(20, 2, 3, 20, 5);
  auto scored = [](std::vector<SnpIndex> snps, double f) {
    HaplotypeIndividual ind(std::move(snps));
    ind.set_fitness(f);
    return ind;
  };
  population.by_size(2).add_initial(scored({0, 1}, 2.0));
  population.by_size(3).add_initial(scored({0, 1, 2}, 5.0));
  const double before = population.stagnation_signature();
  EXPECT_DOUBLE_EQ(before, 7.0);

  // Inserting a non-best individual must not change the signature.
  population.by_size(2).add_initial(scored({0, 2}, 1.0));
  EXPECT_DOUBLE_EQ(population.stagnation_signature(), 7.0);

  // Improving one subpopulation's best raises it.
  population.by_size(2).add_initial(scored({1, 2}, 4.0));
  EXPECT_DOUBLE_EQ(population.stagnation_signature(), 9.0);
}

TEST(Multipopulation, TotalIndividualsAndRanges) {
  Multipopulation population(20, 2, 3, 20, 5);
  EXPECT_EQ(population.total_individuals(), 0u);
  auto scored = [](std::vector<SnpIndex> snps, double f) {
    HaplotypeIndividual ind(std::move(snps));
    ind.set_fitness(f);
    return ind;
  };
  population.by_size(2).add_initial(scored({0, 1}, 2.0));
  population.by_size(2).add_initial(scored({0, 2}, 6.0));
  EXPECT_EQ(population.total_individuals(), 2u);
  const auto ranges = population.ranges();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_DOUBLE_EQ(ranges[0].worst, 2.0);
  EXPECT_DOUBLE_EQ(ranges[0].best, 6.0);
}

TEST(Allocation, UniformPolicyGivesEqualShares) {
  const auto caps = Multipopulation::allocate_capacities(
      51, 2, 6, 150, 10, AllocationPolicy::Uniform);
  EXPECT_EQ(std::accumulate(caps.begin(), caps.end(), 0u), 150u);
  // Equal weights: every class within one slot of 150/5.
  for (const auto c : caps) {
    EXPECT_GE(c, 29u);
    EXPECT_LE(c, 31u);
  }
}

TEST(Allocation, PoliciesDifferOnWideRanges) {
  const auto log_caps = Multipopulation::allocate_capacities(
      51, 2, 6, 150, 10, AllocationPolicy::LogSearchSpace);
  const auto uniform_caps = Multipopulation::allocate_capacities(
      51, 2, 6, 150, 10, AllocationPolicy::Uniform);
  EXPECT_NE(log_caps, uniform_caps);
  EXPECT_GT(log_caps.back(), uniform_caps.back());
}

TEST(Allocation, InvalidArgumentsDie) {
  EXPECT_DEATH(Multipopulation::allocate_capacities(51, 3, 2, 100, 10),
               "precondition");
  EXPECT_DEATH(Multipopulation::allocate_capacities(51, 2, 6, 10, 10),
               "precondition");
  EXPECT_DEATH(Multipopulation::allocate_capacities(4, 2, 6, 100, 10),
               "precondition");
}

}  // namespace
}  // namespace ldga::ga
