// EvaluationStream: the asynchronous islands' evaluation front door.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "parallel/fault_injection.hpp"
#include "parallel/work_queue.hpp"
#include "stats/evaluation_service.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

const genomics::Dataset& shared_dataset() {
  static const auto synthetic = ldga::testing::small_synthetic(12, 2, 321);
  return synthetic.dataset;
}

/// Drains `queue` until `expected` results arrived (or a generous
/// deadline passes, so a broken stream fails the test instead of
/// hanging it).
std::vector<StreamResult> drain(EvaluationStream& stream, std::uint32_t queue,
                                std::size_t expected) {
  std::vector<StreamResult> results;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (results.size() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    auto batch = stream.wait(queue, std::chrono::milliseconds(50));
    results.insert(results.end(), batch.begin(), batch.end());
  }
  return results;
}

TEST(EvaluationStreamConfigValidation, CatchesBadSettings) {
  EvaluationStreamConfig config;
  config.lanes = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.max_coalesce = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  EXPECT_NO_THROW(config.validate());
}

TEST(EvaluationStream, DeliversEverySubmissionToItsOwnQueue) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  EvaluationStreamConfig config;
  config.lanes = 2;
  config.max_coalesce = 4;
  EvaluationStream stream(evaluator, 3, config);

  // Round-robin 36 pair candidates over the three queues; tickets are
  // globally unique so cross-queue misdelivery is detectable.
  std::map<std::uint64_t, Candidate> sent;
  std::uint64_t ticket = 0;
  std::vector<std::uint64_t> per_queue(3, 0);
  for (SnpIndex a = 0; a < 9; ++a) {
    for (SnpIndex b = a + 1; b < a + 5 && b < 12; ++b) {
      const std::uint32_t queue = static_cast<std::uint32_t>(ticket % 3);
      const Candidate candidate{a, b};
      ASSERT_TRUE(stream.submit(queue, ticket, candidate));
      sent.emplace(ticket, candidate);
      ++per_queue[queue];
      ++ticket;
    }
  }

  std::uint64_t delivered = 0;
  for (std::uint32_t queue = 0; queue < 3; ++queue) {
    const auto results = drain(stream, queue, per_queue[queue]);
    ASSERT_EQ(results.size(), per_queue[queue]) << "queue " << queue;
    for (const auto& result : results) {
      // Ticket belongs to this queue (tickets were dealt round-robin).
      EXPECT_EQ(result.ticket % 3, queue);
      EXPECT_FALSE(result.failed);
      // The stream's fitness is the evaluator's (pure function of the
      // candidate, whatever lane and batch computed it).
      const auto it = sent.find(result.ticket);
      ASSERT_NE(it, sent.end());
      EXPECT_DOUBLE_EQ(result.fitness,
                       evaluator.evaluate_full(it->second).fitness);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, ticket);
  EXPECT_EQ(stream.in_flight(), 0u);

  stream.close();
  const auto stats = stream.stats();
  EXPECT_EQ(stats.submitted, ticket);
  EXPECT_EQ(stats.completed, ticket);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.dispatch_rounds, 0u);
}

TEST(EvaluationStream, DuplicateSubmissionsAgreeAndDedup) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  EvaluationStreamConfig config;
  config.lanes = 2;
  EvaluationStream stream(evaluator, 2, config);

  // The same candidate submitted many times across both queues: every
  // copy gets a result, all results agree, and the service computes the
  // pipeline far fewer times than it delivers (cache + in-flight
  // merges + in-batch duplicates).
  const Candidate candidate{3, 7};
  const std::size_t copies = 16;
  for (std::uint64_t i = 0; i < copies; ++i) {
    ASSERT_TRUE(stream.submit(static_cast<std::uint32_t>(i % 2), i,
                              candidate));
  }
  const auto q0 = drain(stream, 0, copies / 2);
  const auto q1 = drain(stream, 1, copies / 2);
  ASSERT_EQ(q0.size() + q1.size(), copies);
  const double expected = evaluator.evaluate_full(candidate).fitness;
  for (const auto& result : q0) EXPECT_DOUBLE_EQ(result.fitness, expected);
  for (const auto& result : q1) EXPECT_DOUBLE_EQ(result.fitness, expected);

  stream.close();
  const auto stats = stream.stats();
  EXPECT_EQ(stats.completed, copies);
  EXPECT_LT(stats.service.dispatched, copies);
}

TEST(EvaluationStream, CloseRejectsNewWorkAndUnblocksWaiters) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  EvaluationStream stream(evaluator, 1, {});
  ASSERT_TRUE(stream.submit(0, 1, Candidate{0, 1}));
  stream.close();
  stream.close();  // idempotent

  EXPECT_FALSE(stream.submit(0, 2, Candidate{2, 3}));
  // Whatever close() drained is still deliverable; afterwards waits
  // return empty immediately instead of blocking out the timeout.
  (void)stream.poll(0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto late = stream.wait(0, std::chrono::milliseconds(500));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(late.empty());
  EXPECT_LT(waited, std::chrono::milliseconds(400));
}

TEST(EvaluationStream, RetryLadderExhaustionDeliversFailedResults) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  parallel::FaultInjector::Config faults;
  faults.seed = 3;
  faults.throw_probability = 1.0;  // every attempt throws
  EvaluationStreamConfig config;
  config.lanes = 2;
  config.backend.farm_policy.max_task_retries = 1;
  config.backend.fault_injector =
      std::make_shared<parallel::FaultInjector>(faults);
  EvaluationStream stream(evaluator, 1, config);

  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(stream.submit(0, i, Candidate{static_cast<SnpIndex>(i),
                                              static_cast<SnpIndex>(i + 1)}));
  }
  const auto results = drain(stream, 0, 6);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& result : results) {
    EXPECT_TRUE(result.failed);
  }
  stream.close();
  EXPECT_EQ(stream.stats().failed, 6u);
}

TEST(EvaluationStream, StragglersDelayButNeverCorrupt) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  EvaluationStreamConfig config;
  config.lanes = 3;
  config.max_coalesce = 2;
  config.backend.fault_injector = std::make_shared<parallel::FaultInjector>(
      parallel::FaultInjector::straggler_preset(
          7, 0.5, std::chrono::milliseconds(1)));
  EvaluationStream stream(evaluator, 1, config);

  std::map<std::uint64_t, Candidate> sent;
  std::uint64_t ticket = 0;
  for (SnpIndex a = 0; a < 8; ++a) {
    for (SnpIndex b = a + 1; b < a + 4 && b < 12; ++b) {
      const Candidate candidate{a, b};
      ASSERT_TRUE(stream.submit(0, ticket, candidate));
      sent.emplace(ticket, candidate);
      ++ticket;
    }
  }
  const auto results = drain(stream, 0, sent.size());
  ASSERT_EQ(results.size(), sent.size());
  for (const auto& result : results) {
    EXPECT_FALSE(result.failed);
    EXPECT_DOUBLE_EQ(result.fitness,
                     evaluator.evaluate_full(sent.at(result.ticket)).fitness);
  }
  EXPECT_GT(config.backend.fault_injector->injected_stragglers(), 0u);
  EXPECT_GT(config.backend.fault_injector->injected_straggler_time().count(),
            0);
}


TEST(EvaluationStream, MultiTenantQueuesScoreAgainstTheirOwnEvaluator) {
  // Two evaluators over DIFFERENT datasets share one stream — the
  // pipelined genome scan's shape, where every in-flight window engine
  // rents a queue block from the scan-wide lane pool. Each result must
  // come from the submitting tenant's evaluator, even though one lane
  // serves both.
  const HaplotypeEvaluator first(shared_dataset());
  const auto other_synthetic = ldga::testing::small_synthetic(10, 2, 77);
  const HaplotypeEvaluator second(other_synthetic.dataset);

  EvaluationStreamConfig config;
  config.lanes = 2;
  config.max_coalesce = 4;
  EvaluationStream stream(3, config);
  const std::uint32_t first_base = stream.open_queues(first, 2);
  const std::uint32_t second_base = stream.open_queues(second, 1);
  ASSERT_NE(first_base, second_base);

  std::map<std::uint64_t, Candidate> sent;
  std::uint64_t ticket = 0;
  for (SnpIndex a = 0; a < 6; ++a) {
    const Candidate candidate{a, static_cast<SnpIndex>(a + 2)};
    // The same candidate indices go to BOTH tenants: identical keys,
    // different datasets, so mixing tenants in a batch would be
    // observable as the wrong fitness.
    ASSERT_TRUE(stream.submit(first_base + (a % 2), ticket, candidate));
    sent.emplace(ticket++, candidate);
    ASSERT_TRUE(stream.submit(second_base, ticket, candidate));
    sent.emplace(ticket++, candidate);
  }

  const auto q0 = drain(stream, first_base, 3);
  const auto q1 = drain(stream, first_base + 1, 3);
  for (const auto& result : q0) {
    EXPECT_DOUBLE_EQ(result.fitness,
                     first.evaluate_full(sent.at(result.ticket)).fitness);
  }
  for (const auto& result : q1) {
    EXPECT_DOUBLE_EQ(result.fitness,
                     first.evaluate_full(sent.at(result.ticket)).fitness);
  }
  const auto other = drain(stream, second_base, 6);
  ASSERT_EQ(other.size(), 6u);
  for (const auto& result : other) {
    EXPECT_DOUBLE_EQ(result.fitness,
                     second.evaluate_full(sent.at(result.ticket)).fitness);
  }
}

TEST(EvaluationStream, RetireQueuesDrainsOutstandingWorkFirst) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  EvaluationStreamConfig config;
  config.lanes = 2;
  EvaluationStream stream(2, config);
  const std::uint32_t base = stream.open_queues(evaluator, 2);

  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(stream.submit(base + static_cast<std::uint32_t>(i % 2), i,
                              Candidate{static_cast<SnpIndex>(i % 4),
                                        static_cast<SnpIndex>(i % 4 + 5)}));
  }
  // retire_queues blocks until every submission of this tenant has a
  // delivered result — the guarantee that lets a window engine destroy
  // its evaluator right after.
  stream.retire_queues(base, 2);
  EXPECT_EQ(stream.poll(base).size() + stream.poll(base + 1).size(), 8u);
  // A retired tenant takes no further work.
  EXPECT_FALSE(stream.submit(base, 99, Candidate{0, 1}));
}

TEST(EvaluationStream, OpenQueuesBeyondCapacityThrows) {
  const HaplotypeEvaluator evaluator(shared_dataset());
  EvaluationStream stream(2, {});
  (void)stream.open_queues(evaluator, 1);
  (void)stream.open_queues(evaluator, 1);
  EXPECT_THROW(stream.open_queues(evaluator, 1), ConfigError);
}

TEST(CoalescingQueue, GroupedClaimGathersTheAnchorsKeyAcrossTheQueue) {
  parallel::CoalescingQueue<int> queue;
  for (const int v : {2, 3, 2, 4, 2, 3, 2}) ASSERT_TRUE(queue.push(v));

  // The oldest item anchors the claim; matching keys are gathered from
  // anywhere in the queue, capped at the batch size.
  const auto same = [](int v) { return v; };
  EXPECT_EQ(queue.pop_batch_grouped(3, same), (std::vector<int>{2, 2, 2}));
  // Skipped items kept their relative order: {3, 4, 3, 2} remains.
  EXPECT_EQ(queue.pop_batch_grouped(8, same), (std::vector<int>{3, 3}));
  EXPECT_EQ(queue.pop_batch_grouped(8, same), (std::vector<int>{4}));
  EXPECT_EQ(queue.pop_batch_grouped(8, same), (std::vector<int>{2}));
}

}  // namespace
}  // namespace ldga::stats
