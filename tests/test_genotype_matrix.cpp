#include "genomics/genotype_matrix.hpp"

#include <gtest/gtest.h>

namespace ldga::genomics {
namespace {

TEST(GenotypeMatrix, StartsAllMissing) {
  const GenotypeMatrix matrix(3, 4);
  EXPECT_EQ(matrix.individual_count(), 3u);
  EXPECT_EQ(matrix.snp_count(), 4u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(matrix.at(i, s), Genotype::Missing);
    }
  }
}

TEST(GenotypeMatrix, SetAndGetRoundTrip) {
  GenotypeMatrix matrix(2, 2);
  matrix.set(0, 1, Genotype::Het);
  matrix.set(1, 0, Genotype::HomTwo);
  EXPECT_EQ(matrix.at(0, 1), Genotype::Het);
  EXPECT_EQ(matrix.at(1, 0), Genotype::HomTwo);
  EXPECT_EQ(matrix.at(0, 0), Genotype::Missing);
}

TEST(GenotypeMatrix, RowSpansAreContiguousPerIndividual) {
  GenotypeMatrix matrix(2, 3);
  matrix.set(1, 0, Genotype::HomOne);
  matrix.set(1, 2, Genotype::HomTwo);
  const auto row = matrix.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], Genotype::HomOne);
  EXPECT_EQ(row[1], Genotype::Missing);
  EXPECT_EQ(row[2], Genotype::HomTwo);
}

TEST(GenotypeMatrix, GatherSelectsSubset) {
  GenotypeMatrix matrix(1, 5);
  for (SnpIndex s = 0; s < 5; ++s) {
    matrix.set(0, s, static_cast<Genotype>(s % 3));
  }
  const std::vector<SnpIndex> subset{4, 0, 2};
  std::vector<Genotype> out;
  matrix.gather(0, subset, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], static_cast<Genotype>(1));  // snp 4
  EXPECT_EQ(out[1], static_cast<Genotype>(0));  // snp 0
  EXPECT_EQ(out[2], static_cast<Genotype>(2));  // snp 2
}

TEST(GenotypeMatrix, GatherClearsOutput) {
  GenotypeMatrix matrix(1, 2);
  std::vector<Genotype> out{Genotype::HomTwo, Genotype::HomTwo,
                            Genotype::HomTwo};
  const std::vector<SnpIndex> subset{0};
  matrix.gather(0, subset, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(GenotypeMatrix, OutOfRangeAccessDies) {
  const GenotypeMatrix matrix(2, 2);
  EXPECT_DEATH(matrix.at(2, 0), "precondition");
  EXPECT_DEATH(matrix.at(0, 2), "precondition");
}

TEST(GenotypeTypes, TwoCountMatchesCode) {
  EXPECT_EQ(two_count(Genotype::HomOne), 0);
  EXPECT_EQ(two_count(Genotype::Het), 1);
  EXPECT_EQ(two_count(Genotype::HomTwo), 2);
}

TEST(GenotypeTypes, MakeGenotypeIsUnordered) {
  EXPECT_EQ(make_genotype(Allele::One, Allele::Two),
            make_genotype(Allele::Two, Allele::One));
  EXPECT_EQ(make_genotype(Allele::One, Allele::One), Genotype::HomOne);
  EXPECT_EQ(make_genotype(Allele::Two, Allele::Two), Genotype::HomTwo);
}

}  // namespace
}  // namespace ldga::genomics
