#include "genomics/disease_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/error.hpp"

namespace ldga::genomics {
namespace {

RiskHaplotype simple_risk() {
  return RiskHaplotype{{1, 3}, {Allele::Two, Allele::Two}};
}

Haplotype haplotype_from(const std::string& pattern) {
  Haplotype h;
  for (const char c : pattern) {
    h.push_back(c == '2' ? Allele::Two : Allele::One);
  }
  return h;
}

TEST(DiseaseModelConfig, Validation) {
  DiseaseModelConfig config;
  config.baseline_risk = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.baseline_risk = 1.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.relative_risk = 0.5;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.partial_effect = 1.5;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  EXPECT_NO_THROW(config.validate());
}

TEST(DiseaseModel, RejectsMalformedRisk) {
  DiseaseModelConfig config;
  EXPECT_THROW(DiseaseModel(RiskHaplotype{}, config), ConfigError);
  EXPECT_THROW(DiseaseModel(RiskHaplotype{{0, 1}, {Allele::Two}}, config),
               ConfigError);
  EXPECT_THROW(
      DiseaseModel(RiskHaplotype{{3, 1}, {Allele::Two, Allele::Two}}, config),
      ConfigError);
}

TEST(DiseaseModel, CountsMatches) {
  const DiseaseModel model(simple_risk(), {});
  EXPECT_EQ(model.matches(haplotype_from("12121")), 2u);
  EXPECT_EQ(model.matches(haplotype_from("12111")), 1u);
  EXPECT_EQ(model.matches(haplotype_from("11111")), 0u);
}

TEST(DiseaseModel, BaselineWithoutMatches) {
  DiseaseModelConfig config;
  config.baseline_risk = 0.05;
  const DiseaseModel model(simple_risk(), config);
  EXPECT_DOUBLE_EQ(
      model.disease_probability(haplotype_from("11111"),
                                haplotype_from("11111")),
      0.05);
}

TEST(DiseaseModel, FullMatchMultipliesRisk) {
  DiseaseModelConfig config;
  config.baseline_risk = 0.05;
  config.relative_risk = 4.0;
  config.partial_effect = 0.0;
  const DiseaseModel model(simple_risk(), config);
  // One matching chromosome: 0.05 * 4 = 0.2; two: 0.05 * 16 = 0.8.
  EXPECT_NEAR(model.disease_probability(haplotype_from("12121"),
                                        haplotype_from("11111")),
              0.2, 1e-12);
  EXPECT_NEAR(model.disease_probability(haplotype_from("12121"),
                                        haplotype_from("12121")),
              0.8, 1e-12);
}

TEST(DiseaseModel, PartialMatchHasIntermediateEffect) {
  DiseaseModelConfig config;
  config.baseline_risk = 0.05;
  config.relative_risk = 4.0;
  config.partial_effect = 0.5;
  const DiseaseModel model(simple_risk(), config);
  const double partial = model.disease_probability(
      haplotype_from("12111"), haplotype_from("11111"));
  EXPECT_NEAR(partial, 0.05 * std::pow(4.0, 0.5), 1e-12);
  const double full = model.disease_probability(haplotype_from("12121"),
                                                haplotype_from("11111"));
  EXPECT_GT(full, partial);
  EXPECT_GT(partial, 0.05);
}

TEST(DiseaseModel, ProbabilityCappedAtOne) {
  DiseaseModelConfig config;
  config.baseline_risk = 0.5;
  config.relative_risk = 100.0;
  const DiseaseModel model(simple_risk(), config);
  EXPECT_DOUBLE_EQ(model.disease_probability(haplotype_from("12121"),
                                             haplotype_from("12121")),
                   1.0);
}

TEST(DiseaseModel, SampleStatusFollowsProbability) {
  DiseaseModelConfig config;
  config.baseline_risk = 0.05;
  config.relative_risk = 16.0;
  config.partial_effect = 0.0;
  const DiseaseModel model(simple_risk(), config);
  Rng rng(17);
  int affected = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (model.sample_status(haplotype_from("12121"), haplotype_from("11111"),
                            rng) == Status::Affected) {
      ++affected;
    }
  }
  EXPECT_NEAR(affected / static_cast<double>(n), 0.8, 0.02);
}

}  // namespace
}  // namespace ldga::genomics
