// Cross-module integration tests: the full paper pipeline end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/enumeration.hpp"
#include "analysis/random_search.hpp"
#include "ga/engine.hpp"
#include "genomics/dataset_io.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"

namespace ldga {
namespace {

using genomics::SnpIndex;

/// One shared mid-size instance: 14 SNPs, strong planted pair.
struct Instance {
  genomics::SyntheticDataset synthetic;
  stats::HaplotypeEvaluator evaluator;

  Instance()
      : synthetic(make()),
        evaluator(synthetic.dataset) {}

  static genomics::SyntheticDataset make() {
    genomics::SyntheticConfig config;
    config.snp_count = 14;
    config.affected_count = 50;
    config.unaffected_count = 50;
    config.unknown_count = 10;
    config.active_snps = {4, 9};
    config.disease.relative_risk = 8.0;
    Rng rng(7777);
    return genomics::generate_synthetic(config, rng);
  }
};

const Instance& instance() {
  static const Instance shared;
  return shared;
}

TEST(Integration, GaFindsTheEnumeratedOptimumForSmallSizes) {
  // The core Table-2 property: the GA's per-size best equals the exact
  // optimum found by exhaustive enumeration (deviation = 0).
  const auto& inst = instance();

  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.population_size = 40;
  config.min_subpopulation = 10;
  config.crossovers_per_generation = 8;
  config.mutations_per_generation = 16;
  config.stagnation_generations = 30;
  config.max_generations = 200;
  config.seed = 99;
  ga::GaEngine engine(inst.evaluator, config);
  const ga::GaResult result = engine.run();

  for (std::uint32_t size = 2; size <= 3; ++size) {
    const auto exact = analysis::enumerate_all(inst.evaluator, size);
    const auto& ga_best = result.best_by_size[size - 2];
    EXPECT_NEAR(ga_best.fitness(), exact.best.front().fitness, 1e-9)
        << "size " << size;
    EXPECT_EQ(ga_best.snps(), exact.best.front().snps) << "size " << size;
  }
}

TEST(Integration, GaUsesFarFewerEvaluationsThanEnumeration) {
  const auto& inst = instance();
  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.population_size = 40;
  config.min_subpopulation = 10;
  config.stagnation_generations = 20;
  config.max_generations = 120;
  config.seed = 5;
  const stats::HaplotypeEvaluator fresh(inst.synthetic.dataset);
  ga::GaEngine engine(fresh, config);
  const ga::GaResult result = engine.run();
  // Whole search space for sizes 2..4 of 14 SNPs = 91+364+1001 = 1456;
  // the GA should explore well under it thanks to caching by SNP set.
  EXPECT_LT(result.evaluations, 1456u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(Integration, PlantedPairIsTheSize2Optimum) {
  // Sanity of the whole simulated-data + statistics chain: with a
  // strong relative risk the planted pair must be the enumerated
  // optimum at its own size.
  const auto& inst = instance();
  const auto exact = analysis::enumerate_all(inst.evaluator, 2);
  EXPECT_EQ(exact.best.front().snps, inst.synthetic.truth.snps);
}

TEST(Integration, DatasetRoundTripPreservesFitness) {
  // Save + reload the cohort, rebuild the pipeline: fitness values must
  // be bit-identical (the evaluation is a pure function of the data).
  const auto& inst = instance();
  std::stringstream stream;
  genomics::write_dataset(stream, inst.synthetic.dataset);
  const genomics::Dataset reloaded = genomics::read_dataset(stream);
  const stats::HaplotypeEvaluator evaluator2(reloaded);

  const std::vector<SnpIndex> probe{2, 5, 11};
  EXPECT_DOUBLE_EQ(inst.evaluator.evaluate_full(probe).fitness,
                   evaluator2.evaluate_full(probe).fitness);
}

TEST(Integration, AdaptiveSchemeBeatsRandomSearchOnEvaluations) {
  // The §5.2 qualitative claim, scaled down: at an equal evaluation
  // budget the GA's per-size bests dominate random search overall.
  const auto& inst = instance();

  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.population_size = 40;
  config.min_subpopulation = 10;
  config.stagnation_generations = 25;
  config.max_generations = 150;
  config.seed = 31;
  const stats::HaplotypeEvaluator ga_eval(inst.synthetic.dataset);
  const ga::GaResult ga_result = ga::GaEngine(ga_eval, config).run();

  analysis::RandomSearchConfig rs_config;
  rs_config.min_size = 2;
  rs_config.max_size = 4;
  rs_config.max_evaluations = ga_result.evaluations;
  rs_config.seed = 32;
  const stats::HaplotypeEvaluator rs_eval(inst.synthetic.dataset);
  const ga::FeasibilityFilter filter;
  const auto rs_result = analysis::random_search(rs_eval, rs_config, filter);

  int ga_wins = 0, rs_wins = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (!rs_result.best_by_size[i].evaluated()) {
      ++ga_wins;
      continue;
    }
    const double ga_fit = ga_result.best_by_size[i].fitness();
    const double rs_fit = rs_result.best_by_size[i].fitness();
    if (ga_fit >= rs_fit) {
      ++ga_wins;
    } else {
      ++rs_wins;
    }
  }
  EXPECT_GE(ga_wins, rs_wins);
}

TEST(Integration, ConstraintsRestrictTheGaSearch) {
  // With a feasibility filter every individual the GA reports must obey
  // the §2.3 conditions (best-effort generation can produce infeasible
  // starts, but selection pressure + feasible operators keep the final
  // bests feasible on a panel with plenty of feasible pairs).
  const auto& inst = instance();
  const auto ld = genomics::LdMatrix::compute(inst.synthetic.dataset);
  const auto freqs =
      genomics::AlleleFrequencyTable::estimate(inst.synthetic.dataset);
  ga::ConstraintConfig constraint_config;
  constraint_config.max_pairwise_d_prime = 0.98;
  const ga::FeasibilityFilter filter(ld, freqs, constraint_config);

  // Verify the filter is actually active on this panel.
  ASSERT_TRUE(filter.enabled());

  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.population_size = 30;
  config.min_subpopulation = 10;
  config.stagnation_generations = 15;
  config.max_generations = 60;
  config.seed = 17;
  const stats::HaplotypeEvaluator fresh(inst.synthetic.dataset);
  ga::GaEngine engine(fresh, config, filter);
  const ga::GaResult result = engine.run();
  EXPECT_EQ(result.best_by_size.size(), 2u);
}

}  // namespace
}  // namespace ldga
