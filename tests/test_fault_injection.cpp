// FaultInjector: deterministic schedules, with a focus on the
// heavy-tailed straggler preset the barrier-vs-async comparison runs
// under (bench_parallel_speedup and the chaos CI leg).
#include "parallel/fault_injection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace ldga::parallel {
namespace {

using Kind = FaultDecision::Kind;

TEST(StragglerPreset, ShapesTheComparisonConfig) {
  const auto config = FaultInjector::straggler_preset(
      42, 0.25, std::chrono::milliseconds(4));
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.straggler_probability, 0.25);
  EXPECT_EQ(config.straggler_scale.count(), 4);
  EXPECT_DOUBLE_EQ(config.straggler_shape, 1.1);
  EXPECT_EQ(config.straggler_cap, config.straggler_scale * 50);
  // No other fault class rides along: the preset measures stragglers
  // and nothing else.
  EXPECT_DOUBLE_EQ(config.throw_probability, 0.0);
  EXPECT_DOUBLE_EQ(config.delay_probability, 0.0);
  EXPECT_DOUBLE_EQ(config.stale_probability, 0.0);
}

TEST(StragglerPreset, ValidationRejectsBadSettings) {
  FaultInjector::Config config;
  config.straggler_probability = 1.5;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.straggler_probability = 0.5;
  config.straggler_shape = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.straggler_probability = 0.5;
  config.straggler_scale = std::chrono::milliseconds(10);
  config.straggler_cap = std::chrono::milliseconds(5);  // cap < scale
  EXPECT_THROW(config.validate(), ConfigError);

  EXPECT_NO_THROW(FaultInjector::straggler_preset(
      1, 0.1, std::chrono::milliseconds(2)));
}

TEST(StragglerSchedule, IsDeterministicAcrossInjectors) {
  // The whole point of injected stragglers: the same (seed, phase,
  // index, attempt) coordinates draw the same delay, so two runs (or
  // two backends) measure the same delay population.
  const auto config = FaultInjector::straggler_preset(
      7, 0.3, std::chrono::milliseconds(2));
  FaultInjector a(config), b(config);
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    for (std::uint64_t index = 0; index < 200; ++index) {
      const FaultDecision da = a.decide(phase, index);
      const FaultDecision db = b.decide(phase, index);
      EXPECT_EQ(da.kind, db.kind) << phase << "/" << index;
      EXPECT_EQ(da.delay, db.delay) << phase << "/" << index;
    }
  }
  EXPECT_EQ(a.injected_stragglers(), b.injected_stragglers());
  EXPECT_EQ(a.injected_straggler_time(), b.injected_straggler_time());
}

TEST(StragglerSchedule, DrawsAreParetoScaledAndCapped) {
  const auto scale = std::chrono::milliseconds(2);
  FaultInjector injector(FaultInjector::straggler_preset(123, 0.3, scale));
  std::uint64_t stragglers = 0;
  std::uint64_t total_ms = 0;
  const std::uint64_t draws = 2000;
  for (std::uint64_t index = 0; index < draws; ++index) {
    const FaultDecision decision = injector.decide(0, index);
    if (decision.kind == Kind::kNone) continue;
    ASSERT_EQ(decision.kind, Kind::kDelay);
    // Pareto factor u^(-1/shape) >= 1, so every draw is at least the
    // scale and never beyond the cap.
    EXPECT_GE(decision.delay, scale);
    EXPECT_LE(decision.delay, scale * 50);
    ++stragglers;
    total_ms += static_cast<std::uint64_t>(decision.delay.count());
  }
  // The hit rate tracks the configured probability...
  EXPECT_NEAR(static_cast<double>(stragglers) / draws, 0.3, 0.05);
  // ...and the counters account every injected sleep exactly.
  EXPECT_EQ(injector.injected_stragglers(), stragglers);
  EXPECT_EQ(injector.injected_delays(), stragglers);
  EXPECT_EQ(injector.injected_straggler_time().count(),
            static_cast<std::int64_t>(total_ms));
  // Heavy tail: the mean draw clearly exceeds the scale (shape 1.1
  // puts substantial mass far beyond it).
  EXPECT_GT(static_cast<double>(total_ms) / static_cast<double>(stragglers),
            static_cast<double>(scale.count()));
}

TEST(StragglerSchedule, DiffersAcrossSeeds) {
  FaultInjector a(FaultInjector::straggler_preset(
      1, 0.3, std::chrono::milliseconds(2)));
  FaultInjector b(FaultInjector::straggler_preset(
      2, 0.3, std::chrono::milliseconds(2)));
  bool any_difference = false;
  for (std::uint64_t index = 0; index < 200 && !any_difference; ++index) {
    const FaultDecision da = a.decide(0, index);
    const FaultDecision db = b.decide(0, index);
    any_difference = da.kind != db.kind || da.delay != db.delay;
  }
  EXPECT_TRUE(any_difference);
}

TEST(StragglerSchedule, WrappedWorkersSleepThroughTheSchedule) {
  // wrap() applies the schedule by global call order — the thread-pool
  // and stream-lane path. The worker's results are untouched.
  FaultInjector injector(FaultInjector::straggler_preset(
      9, 0.5, std::chrono::milliseconds(1)));
  auto worker = injector.wrap([](int task) { return task * 2; });
  for (int task = 0; task < 50; ++task) {
    EXPECT_EQ(worker(task), task * 2);
  }
  EXPECT_GT(injector.injected_stragglers(), 0u);
  EXPECT_GT(injector.injected_straggler_time().count(), 0);
}

}  // namespace
}  // namespace ldga::parallel
