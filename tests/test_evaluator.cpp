#include "stats/evaluator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

TEST(Evaluator, ConfigValidation) {
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.max_loci = 0;
  EXPECT_THROW(HaplotypeEvaluator(dataset, config), ConfigError);
  config = {};
  config.max_loci = kMaxEmLoci + 1;
  EXPECT_THROW(HaplotypeEvaluator(dataset, config), ConfigError);
}

TEST(Evaluator, FitnessIsDeterministic) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator ev1(dataset);
  const HaplotypeEvaluator ev2(dataset);
  const std::vector<SnpIndex> snps{0, 2};
  EXPECT_DOUBLE_EQ(ev1.fitness(snps), ev2.fitness(snps));
}

TEST(Evaluator, CacheCountsMissesOnly) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const std::vector<SnpIndex> a{0, 1};
  const std::vector<SnpIndex> b{0, 2};

  evaluator.fitness(a);
  evaluator.fitness(a);
  evaluator.fitness(b);
  evaluator.fitness(a);
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
  EXPECT_EQ(evaluator.request_count(), 4u);

  evaluator.reset_counters();
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
  // Cache survives counter reset: no new evaluation for a known key.
  evaluator.fitness(a);
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
  EXPECT_EQ(evaluator.request_count(), 1u);
}

TEST(Evaluator, CachedAndUncachedAgree) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const std::vector<SnpIndex> snps{0, 1, 3};
  EXPECT_DOUBLE_EQ(evaluator.fitness(snps),
                   evaluator.evaluate_full(snps).fitness);
}

TEST(Evaluator, UnsortedInputDies) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  EXPECT_DEATH(evaluator.fitness(std::vector<SnpIndex>{2, 0}),
               "precondition");
}

TEST(Evaluator, PerfectSeparatorOutscoresNoise) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const double strong = evaluator.fitness(std::vector<SnpIndex>{0});
  const double weak = evaluator.fitness(std::vector<SnpIndex>{2});
  EXPECT_GT(strong, weak);
}

TEST(Evaluator, FitnessGrowsWithHaplotypeSize) {
  // The paper's §3 observation: larger haplotypes produce larger
  // statistics (more table columns), so sizes are not comparable.
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 11);
  const HaplotypeEvaluator evaluator(synthetic.dataset);
  double mean2 = 0.0, mean4 = 0.0;
  int n = 0;
  for (SnpIndex a = 0; a + 3 < 10; a += 2) {
    mean2 += evaluator
                 .evaluate_full(std::vector<SnpIndex>{a, static_cast<SnpIndex>(a + 1)})
                 .fitness;
    mean4 += evaluator
                 .evaluate_full(std::vector<SnpIndex>{
                     a, static_cast<SnpIndex>(a + 1),
                     static_cast<SnpIndex>(a + 2), static_cast<SnpIndex>(a + 3)})
                 .fitness;
    ++n;
  }
  EXPECT_GT(mean4 / n, mean2 / n);
}

TEST(Evaluator, ConcurrentRequestsAreConsistent) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 13);
  const HaplotypeEvaluator evaluator(synthetic.dataset);

  // Serial reference values.
  std::vector<std::vector<SnpIndex>> keys;
  for (SnpIndex a = 0; a + 1 < 10; ++a) {
    for (SnpIndex b = a + 1; b < 10; ++b) {
      keys.push_back({a, b});
    }
  }
  std::vector<double> reference(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    reference[i] = evaluator.evaluate_full(keys[i]).fitness;
  }

  std::vector<double> results(keys.size(), -1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < keys.size();
           i += 4) {
        results[i] = evaluator.fitness(keys[i]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], reference[i]);
  }
}

TEST(Evaluator, AlternativeFitnessStatistics) {
  const auto dataset = ldga::testing::tiny_dataset();
  const std::vector<SnpIndex> snps{0, 1};

  EvaluatorConfig lrt_config;
  lrt_config.fitness_statistic = FitnessStatistic::Lrt;
  const HaplotypeEvaluator lrt_eval(dataset, lrt_config);
  const auto full = lrt_eval.evaluate_full(snps);
  EXPECT_DOUBLE_EQ(full.fitness, full.lrt);

  EvaluatorConfig t3_config;
  t3_config.fitness_statistic = FitnessStatistic::T3;
  const HaplotypeEvaluator t3_eval(dataset, t3_config);
  const auto t3_full = t3_eval.evaluate_full(snps);
  const auto clump = t3_eval.clump_analysis(snps);
  EXPECT_NEAR(t3_full.fitness, clump.t3.statistic, 1e-9);
}

TEST(Evaluator, ReportsEmDiagnostics) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const auto result = evaluator.evaluate_full(std::vector<SnpIndex>{0, 1});
  EXPECT_TRUE(result.em_converged);
  EXPECT_GT(result.em_iterations_total, 0u);
  EXPECT_GE(result.table_columns, 1u);
  EXPECT_LE(result.table_columns, 4u);
}

TEST(EvaluatorDegradation, StrictEmFailureMapsToPenalty) {
  // max_iterations = 1 with an unreachable tolerance cannot converge;
  // in strict mode with the penalize policy, the candidate scores the
  // penalty instead of poisoning the evaluation phase.
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.em.max_iterations = 1;
  config.em.tolerance = 1e-300;
  config.require_em_convergence = true;
  config.penalty_fitness = -1.0;
  const HaplotypeEvaluator evaluator(dataset, config);
  const std::vector<SnpIndex> snps{0, 1};
  ASSERT_FALSE(evaluator.evaluate_full(snps).em_converged);

  EXPECT_DOUBLE_EQ(evaluator.fitness(snps), -1.0);
  EXPECT_EQ(evaluator.failed_evaluation_count(), 1u);
  EXPECT_NE(evaluator.last_failure().find("EM did not converge"),
            std::string::npos);
  // The SNP set is reported 1-based, matching every other report.
  EXPECT_NE(evaluator.last_failure().find("{1 2}"), std::string::npos);

  // The penalty is cached like any fitness: no second pipeline run.
  evaluator.fitness(snps);
  EXPECT_EQ(evaluator.failed_evaluation_count(), 1u);
}

TEST(EvaluatorDegradation, PropagatePolicyThrowsTypedError) {
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.em.max_iterations = 1;
  config.em.tolerance = 1e-300;
  config.require_em_convergence = true;
  config.failure_policy = EvaluationFailurePolicy::kPropagate;
  const HaplotypeEvaluator evaluator(dataset, config);
  try {
    evaluator.fitness(std::vector<SnpIndex>{0, 1});
    FAIL() << "expected EvaluationError";
  } catch (const EvaluationError& error) {
    EXPECT_EQ(error.reason(), EvaluationError::Reason::kEmNotConverged);
  }
  EXPECT_EQ(evaluator.failed_evaluation_count(), 1u);
}

TEST(EvaluatorDegradation, LenientModeKeepsUnconvergedStatistic) {
  // Default policy: a capped EM still yields the statistic (original EH
  // behaviour), so nothing is penalized.
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.em.max_iterations = 1;
  config.em.tolerance = 1e-300;
  const HaplotypeEvaluator evaluator(dataset, config);
  const std::vector<SnpIndex> snps{0, 1};
  EXPECT_DOUBLE_EQ(evaluator.fitness(snps),
                   evaluator.evaluate_full(snps).fitness);
  EXPECT_EQ(evaluator.failed_evaluation_count(), 0u);
  EXPECT_TRUE(evaluator.last_failure().empty());
}

TEST(EvaluatorDegradation, NonFinitePenaltyIsRejected) {
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.penalty_fitness = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(HaplotypeEvaluator(dataset, config), ConfigError);
}

TEST(Evaluator, TooManyLociDies) {
  const auto synthetic = ldga::testing::small_synthetic(20, 0, 3);
  EvaluatorConfig config;
  config.max_loci = 3;
  const HaplotypeEvaluator evaluator(synthetic.dataset, config);
  EXPECT_DEATH(
      evaluator.evaluate_full(std::vector<SnpIndex>{0, 1, 2, 3}),
      "precondition");
}

TEST(Evaluator, ValidatedRejectsBadEarlyStopSettings) {
  // Early stopping without replicates: the stopper has no ceiling to
  // work under, so validated() must refuse rather than silently no-op.
  EvaluatorConfig config;
  config.clump.mc_early_stop = true;
  config.clump.monte_carlo_trials = 0;
  EXPECT_THROW(config.validated(), ConfigError);

  config = {};
  config.clump.monte_carlo_trials = 100;
  config.clump.mc_early_stop = true;
  config.clump.mc_significance = 1.0;  // must be strictly inside (0, 1)
  EXPECT_THROW(config.validated(), ConfigError);
  config.clump.mc_significance = 0.0;
  EXPECT_THROW(config.validated(), ConfigError);
  config.clump.mc_significance = 0.05;
  config.clump.mc_error_rate = 1.0;
  EXPECT_THROW(config.validated(), ConfigError);
  config.clump.mc_error_rate = 1e-3;
  EXPECT_NO_THROW(config.validated());

  config = {};
  config.incremental.pattern_cache_shards = 0;
  EXPECT_THROW(config.validated(), ConfigError);
}

TEST(Evaluator, IncrementalCacheActiveByDefaultAndGated) {
  const auto synthetic = ldga::testing::small_synthetic();
  const HaplotypeEvaluator with_cache(synthetic.dataset);
  EXPECT_TRUE(with_cache.incremental_active());

  EvaluatorConfig off;
  off.incremental.pattern_cache = false;
  const HaplotypeEvaluator without(synthetic.dataset, off);
  EXPECT_FALSE(without.incremental_active());
  EXPECT_EQ(without.incremental_stats().entry_reuses, 0u);

  // The incremental routes are defined on the compiled EM programs,
  // so turning those off deactivates it silently.
  EvaluatorConfig gated_config;
  gated_config.compiled_em = false;
  const HaplotypeEvaluator gated(synthetic.dataset, gated_config);
  EXPECT_FALSE(gated.incremental_active());
}

TEST(Evaluator, IncrementalCacheMatchesReferenceFitness) {
  const auto synthetic = ldga::testing::small_synthetic(14, 2, 21);
  EvaluatorConfig reference_config;
  reference_config.incremental.pattern_cache = false;
  const HaplotypeEvaluator reference(synthetic.dataset, reference_config);
  const HaplotypeEvaluator incremental(synthetic.dataset);

  // Parent, then one-locus neighbours: exercises fresh build,
  // extension/projection and a repeat hit; fitness must be bit-equal.
  const std::vector<std::vector<SnpIndex>> sets{
      {1, 4, 7}, {1, 4, 7, 9}, {1, 4}, {1, 4, 7}, {2, 4, 7}};
  for (const auto& snps : sets) {
    EXPECT_EQ(incremental.fitness(snps), reference.fitness(snps))
        << "set size " << snps.size();
  }
  EXPECT_GT(incremental.incremental_stats().entry_builds, 0u);
}

TEST(Evaluator, MonteCarloReplicateCountersTrackClumpRuns) {
  const auto synthetic = ldga::testing::small_synthetic();
  EvaluatorConfig config;
  config.fitness_statistic = FitnessStatistic::T3;
  config.clump.monte_carlo_trials = 200;
  const HaplotypeEvaluator evaluator(synthetic.dataset, config);
  EXPECT_EQ(evaluator.mc_replicates_run(), 0u);
  (void)evaluator.evaluate_full(std::vector<SnpIndex>{0, 1});
  EXPECT_EQ(evaluator.mc_replicates_run(), 200u);
  EXPECT_EQ(evaluator.mc_replicates_saved(), 0u);

  EvaluatorConfig early = config;
  early.clump.mc_early_stop = true;
  early.clump.mc_min_batch = 16;
  const HaplotypeEvaluator stopper(synthetic.dataset, early);
  (void)stopper.evaluate_full(std::vector<SnpIndex>{0, 1});
  const std::uint64_t run = stopper.mc_replicates_run();
  EXPECT_GT(run, 0u);
  EXPECT_EQ(stopper.mc_replicates_saved(), 200u - run);

  stopper.reset_counters();
  EXPECT_EQ(stopper.mc_replicates_run(), 0u);
  EXPECT_EQ(stopper.mc_replicates_saved(), 0u);
}

TEST(Evaluator, EarlyStoppingNeverChangesFitness) {
  // GA fitness for T2/T3/T4 is the statistic value, not the MC p-value,
  // so the early stopper must leave every fitness bit-identical.
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 31);
  for (const FitnessStatistic stat :
       {FitnessStatistic::T2, FitnessStatistic::T3, FitnessStatistic::T4}) {
    EvaluatorConfig fixed;
    fixed.fitness_statistic = stat;
    fixed.clump.monte_carlo_trials = 400;
    EvaluatorConfig early = fixed;
    early.clump.mc_early_stop = true;
    const HaplotypeEvaluator a(synthetic.dataset, fixed);
    const HaplotypeEvaluator b(synthetic.dataset, early);
    for (const auto& snps : std::vector<std::vector<SnpIndex>>{
             {0, 1}, {2, 5, 8}, {1, 3, 6, 9}}) {
      EXPECT_EQ(a.fitness(snps), b.fitness(snps));
    }
  }
}

}  // namespace
}  // namespace ldga::stats
