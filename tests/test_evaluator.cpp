#include "stats/evaluator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

TEST(Evaluator, ConfigValidation) {
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.max_loci = 0;
  EXPECT_THROW(HaplotypeEvaluator(dataset, config), ConfigError);
  config = {};
  config.max_loci = kMaxEmLoci + 1;
  EXPECT_THROW(HaplotypeEvaluator(dataset, config), ConfigError);
}

TEST(Evaluator, FitnessIsDeterministic) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator ev1(dataset);
  const HaplotypeEvaluator ev2(dataset);
  const std::vector<SnpIndex> snps{0, 2};
  EXPECT_DOUBLE_EQ(ev1.fitness(snps), ev2.fitness(snps));
}

TEST(Evaluator, CacheCountsMissesOnly) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const std::vector<SnpIndex> a{0, 1};
  const std::vector<SnpIndex> b{0, 2};

  evaluator.fitness(a);
  evaluator.fitness(a);
  evaluator.fitness(b);
  evaluator.fitness(a);
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
  EXPECT_EQ(evaluator.request_count(), 4u);

  evaluator.reset_counters();
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
  // Cache survives counter reset: no new evaluation for a known key.
  evaluator.fitness(a);
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
  EXPECT_EQ(evaluator.request_count(), 1u);
}

TEST(Evaluator, CachedAndUncachedAgree) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const std::vector<SnpIndex> snps{0, 1, 3};
  EXPECT_DOUBLE_EQ(evaluator.fitness(snps),
                   evaluator.evaluate_full(snps).fitness);
}

TEST(Evaluator, UnsortedInputDies) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  EXPECT_DEATH(evaluator.fitness(std::vector<SnpIndex>{2, 0}),
               "precondition");
}

TEST(Evaluator, PerfectSeparatorOutscoresNoise) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const double strong = evaluator.fitness(std::vector<SnpIndex>{0});
  const double weak = evaluator.fitness(std::vector<SnpIndex>{2});
  EXPECT_GT(strong, weak);
}

TEST(Evaluator, FitnessGrowsWithHaplotypeSize) {
  // The paper's §3 observation: larger haplotypes produce larger
  // statistics (more table columns), so sizes are not comparable.
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 11);
  const HaplotypeEvaluator evaluator(synthetic.dataset);
  double mean2 = 0.0, mean4 = 0.0;
  int n = 0;
  for (SnpIndex a = 0; a + 3 < 10; a += 2) {
    mean2 += evaluator
                 .evaluate_full(std::vector<SnpIndex>{a, static_cast<SnpIndex>(a + 1)})
                 .fitness;
    mean4 += evaluator
                 .evaluate_full(std::vector<SnpIndex>{
                     a, static_cast<SnpIndex>(a + 1),
                     static_cast<SnpIndex>(a + 2), static_cast<SnpIndex>(a + 3)})
                 .fitness;
    ++n;
  }
  EXPECT_GT(mean4 / n, mean2 / n);
}

TEST(Evaluator, ConcurrentRequestsAreConsistent) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 13);
  const HaplotypeEvaluator evaluator(synthetic.dataset);

  // Serial reference values.
  std::vector<std::vector<SnpIndex>> keys;
  for (SnpIndex a = 0; a + 1 < 10; ++a) {
    for (SnpIndex b = a + 1; b < 10; ++b) {
      keys.push_back({a, b});
    }
  }
  std::vector<double> reference(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    reference[i] = evaluator.evaluate_full(keys[i]).fitness;
  }

  std::vector<double> results(keys.size(), -1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < keys.size();
           i += 4) {
        results[i] = evaluator.fitness(keys[i]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], reference[i]);
  }
}

TEST(Evaluator, AlternativeFitnessStatistics) {
  const auto dataset = ldga::testing::tiny_dataset();
  const std::vector<SnpIndex> snps{0, 1};

  EvaluatorConfig lrt_config;
  lrt_config.fitness_statistic = FitnessStatistic::Lrt;
  const HaplotypeEvaluator lrt_eval(dataset, lrt_config);
  const auto full = lrt_eval.evaluate_full(snps);
  EXPECT_DOUBLE_EQ(full.fitness, full.lrt);

  EvaluatorConfig t3_config;
  t3_config.fitness_statistic = FitnessStatistic::T3;
  const HaplotypeEvaluator t3_eval(dataset, t3_config);
  const auto t3_full = t3_eval.evaluate_full(snps);
  const auto clump = t3_eval.clump_analysis(snps);
  EXPECT_NEAR(t3_full.fitness, clump.t3.statistic, 1e-9);
}

TEST(Evaluator, ReportsEmDiagnostics) {
  const auto dataset = ldga::testing::tiny_dataset();
  const HaplotypeEvaluator evaluator(dataset);
  const auto result = evaluator.evaluate_full(std::vector<SnpIndex>{0, 1});
  EXPECT_TRUE(result.em_converged);
  EXPECT_GT(result.em_iterations_total, 0u);
  EXPECT_GE(result.table_columns, 1u);
  EXPECT_LE(result.table_columns, 4u);
}

TEST(EvaluatorDegradation, StrictEmFailureMapsToPenalty) {
  // max_iterations = 1 with an unreachable tolerance cannot converge;
  // in strict mode with the penalize policy, the candidate scores the
  // penalty instead of poisoning the evaluation phase.
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.em.max_iterations = 1;
  config.em.tolerance = 1e-300;
  config.require_em_convergence = true;
  config.penalty_fitness = -1.0;
  const HaplotypeEvaluator evaluator(dataset, config);
  const std::vector<SnpIndex> snps{0, 1};
  ASSERT_FALSE(evaluator.evaluate_full(snps).em_converged);

  EXPECT_DOUBLE_EQ(evaluator.fitness(snps), -1.0);
  EXPECT_EQ(evaluator.failed_evaluation_count(), 1u);
  EXPECT_NE(evaluator.last_failure().find("EM did not converge"),
            std::string::npos);
  // The SNP set is reported 1-based, matching every other report.
  EXPECT_NE(evaluator.last_failure().find("{1 2}"), std::string::npos);

  // The penalty is cached like any fitness: no second pipeline run.
  evaluator.fitness(snps);
  EXPECT_EQ(evaluator.failed_evaluation_count(), 1u);
}

TEST(EvaluatorDegradation, PropagatePolicyThrowsTypedError) {
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.em.max_iterations = 1;
  config.em.tolerance = 1e-300;
  config.require_em_convergence = true;
  config.failure_policy = EvaluationFailurePolicy::kPropagate;
  const HaplotypeEvaluator evaluator(dataset, config);
  try {
    evaluator.fitness(std::vector<SnpIndex>{0, 1});
    FAIL() << "expected EvaluationError";
  } catch (const EvaluationError& error) {
    EXPECT_EQ(error.reason(), EvaluationError::Reason::kEmNotConverged);
  }
  EXPECT_EQ(evaluator.failed_evaluation_count(), 1u);
}

TEST(EvaluatorDegradation, LenientModeKeepsUnconvergedStatistic) {
  // Default policy: a capped EM still yields the statistic (original EH
  // behaviour), so nothing is penalized.
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.em.max_iterations = 1;
  config.em.tolerance = 1e-300;
  const HaplotypeEvaluator evaluator(dataset, config);
  const std::vector<SnpIndex> snps{0, 1};
  EXPECT_DOUBLE_EQ(evaluator.fitness(snps),
                   evaluator.evaluate_full(snps).fitness);
  EXPECT_EQ(evaluator.failed_evaluation_count(), 0u);
  EXPECT_TRUE(evaluator.last_failure().empty());
}

TEST(EvaluatorDegradation, NonFinitePenaltyIsRejected) {
  const auto dataset = ldga::testing::tiny_dataset();
  EvaluatorConfig config;
  config.penalty_fitness = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(HaplotypeEvaluator(dataset, config), ConfigError);
}

TEST(Evaluator, TooManyLociDies) {
  const auto synthetic = ldga::testing::small_synthetic(20, 0, 3);
  EvaluatorConfig config;
  config.max_loci = 3;
  const HaplotypeEvaluator evaluator(synthetic.dataset, config);
  EXPECT_DEATH(
      evaluator.evaluate_full(std::vector<SnpIndex>{0, 1, 2, 3}),
      "precondition");
}

}  // namespace
}  // namespace ldga::stats
