#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <array>
#include <set>
#include <vector>

namespace ldga {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NearbySeedsAreWellMixed) {
  // splitmix64 seeding should decorrelate consecutive seeds.
  Rng a(100), b(101);
  const std::uint64_t xa = a(), xb = b();
  EXPECT_NE(xa, xb);
  // Crude bit-difference check: roughly half the bits should differ.
  const int bits = __builtin_popcountll(xa ^ xb);
  EXPECT_GT(bits, 10);
  EXPECT_LT(bits, 54);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
  // Parent advanced identically.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(parent1(), parent2());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, 5 * std::sqrt(n / 8.0));
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnit) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeMeanIsCentered) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, WeightedIndexSingleBucket) {
  Rng rng(41);
  const std::vector<double> weights{2.5};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(43);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = values;
  rng.shuffle(std::span<int>(values));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(47);
  std::vector<int> values(50);
  for (std::size_t i = 0; i < 50; ++i) values[i] = static_cast<int>(i);
  const std::vector<int> original = values;
  rng.shuffle(std::span<int>(values));
  EXPECT_NE(values, original);  // astronomically unlikely to be identity
}

// --- sample_without_replacement property sweep ------------------------

struct SampleCase {
  std::uint32_t n;
  std::uint32_t k;
};

class SampleWithoutReplacement
    : public ::testing::TestWithParam<SampleCase> {};

TEST_P(SampleWithoutReplacement, ProducesSortedDistinctInRange) {
  const auto [n, k] = GetParam();
  Rng rng(1000 + n * 31 + k);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(n, k);
    ASSERT_EQ(sample.size(), k);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
                sample.end());
    for (const auto v : sample) EXPECT_LT(v, n);
  }
}

TEST_P(SampleWithoutReplacement, IsUniformOverElements) {
  const auto [n, k] = GetParam();
  if (k == 0) GTEST_SKIP();
  Rng rng(2000 + n * 31 + k);
  std::vector<int> counts(n, 0);
  const int trials = 20'000;
  for (int trial = 0; trial < trials; ++trial) {
    for (const auto v : rng.sample_without_replacement(n, k)) ++counts[v];
  }
  const double expected = trials * static_cast<double>(k) / n;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 6 * std::sqrt(expected) + 5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacement,
    ::testing::Values(SampleCase{1, 1}, SampleCase{5, 0}, SampleCase{5, 5},
                      SampleCase{10, 3}, SampleCase{51, 6},
                      SampleCase{100, 2}, SampleCase{7, 6}));

}  // namespace
}  // namespace ldga
