#include "stats/em_haplotype.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "genomics/genotype_matrix.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using genomics::Genotype;
using genomics::GenotypeMatrix;
using genomics::SnpIndex;

GenotypeMatrix matrix_from_rows(
    const std::vector<std::vector<Genotype>>& rows) {
  GenotypeMatrix matrix(static_cast<std::uint32_t>(rows.size()),
                        static_cast<std::uint32_t>(rows[0].size()));
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    for (SnpIndex s = 0; s < rows[i].size(); ++s) {
      matrix.set(i, s, rows[i][s]);
    }
  }
  return matrix;
}

std::vector<std::uint32_t> all_individuals(const GenotypeMatrix& matrix) {
  std::vector<std::uint32_t> ids(matrix.individual_count());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(GenotypePatterns, GroupsIdenticalGenotypes) {
  const auto matrix = matrix_from_rows({
      {Genotype::HomOne, Genotype::Het},
      {Genotype::HomOne, Genotype::Het},
      {Genotype::HomTwo, Genotype::HomOne},
  });
  const auto ids = all_individuals(matrix);
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, ids);
  EXPECT_EQ(table.locus_count(), 2u);
  EXPECT_DOUBLE_EQ(table.total_individuals(), 3.0);
  ASSERT_EQ(table.patterns().size(), 2u);
  // Sorted by (hom_two_mask, het_mask): (0, 2) then (1, 0).
  EXPECT_EQ(table.patterns()[0].hom_two_mask, 0u);
  EXPECT_EQ(table.patterns()[0].het_mask, 2u);
  EXPECT_DOUBLE_EQ(table.patterns()[0].count, 2.0);
  EXPECT_EQ(table.patterns()[1].hom_two_mask, 1u);
  EXPECT_DOUBLE_EQ(table.patterns()[1].count, 1.0);
}

TEST(GenotypePatterns, ExcludesMissing) {
  const auto matrix = matrix_from_rows({
      {Genotype::HomOne, Genotype::Missing},
      {Genotype::HomOne, Genotype::HomOne},
  });
  const auto ids = all_individuals(matrix);
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, ids);
  EXPECT_DOUBLE_EQ(table.total_individuals(), 1.0);
  EXPECT_EQ(table.excluded_missing(), 1u);
}

TEST(GenotypePatterns, MergeAddsCounts) {
  const auto matrix = matrix_from_rows({
      {Genotype::Het},
      {Genotype::Het},
      {Genotype::HomOne},
  });
  const std::vector<std::uint32_t> first{0};
  const std::vector<std::uint32_t> rest{1, 2};
  const std::vector<SnpIndex> snps{0};
  const auto a = GenotypePatternTable::build(matrix, snps, first);
  const auto b = GenotypePatternTable::build(matrix, snps, rest);
  const auto merged = GenotypePatternTable::merge(a, b);
  EXPECT_DOUBLE_EQ(merged.total_individuals(), 3.0);
  ASSERT_EQ(merged.patterns().size(), 2u);
}

TEST(Em, SingleLocusMatchesAlleleCounting) {
  // 11, 12, 22 -> allele Two frequency (0+1+2)/6 = 0.5.
  const auto matrix = matrix_from_rows({
      {Genotype::HomOne},
      {Genotype::Het},
      {Genotype::HomTwo},
  });
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0}, all_individuals(matrix));
  const auto result = estimate_haplotype_frequencies(table);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.frequencies[0], 0.5, 1e-8);  // haplotype "1"
  EXPECT_NEAR(result.frequencies[1], 0.5, 1e-8);  // haplotype "2"
}

TEST(Em, UnambiguousTwoLocusMatchesDirectCounting) {
  // No double heterozygotes: haplotypes are directly countable.
  // Individuals: (11,22) => two copies of hap "12" (code 2: bit1 set);
  //              (22,11) => two copies of hap "21" (code 1: bit0 set).
  const auto matrix = matrix_from_rows({
      {Genotype::HomOne, Genotype::HomTwo},
      {Genotype::HomTwo, Genotype::HomOne},
      {Genotype::HomTwo, Genotype::HomOne},
  });
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, all_individuals(matrix));
  const auto result = estimate_haplotype_frequencies(table);
  EXPECT_NEAR(result.frequencies[0b10], 2.0 / 6.0, 1e-8);
  EXPECT_NEAR(result.frequencies[0b01], 4.0 / 6.0, 1e-8);
  EXPECT_NEAR(result.frequencies[0b00], 0.0, 1e-8);
  EXPECT_NEAR(result.frequencies[0b11], 0.0, 1e-8);
}

TEST(Em, DoubleHeterozygoteResolvedTowardCommonHaplotypes) {
  // Many unambiguous 11/22 individuals (cis evidence) plus one double
  // het: EM should assign the double het mostly to the cis resolution.
  std::vector<std::vector<Genotype>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Genotype::HomOne, Genotype::HomOne});  // 2x hap 00
    rows.push_back({Genotype::HomTwo, Genotype::HomTwo});  // 2x hap 11
  }
  rows.push_back({Genotype::Het, Genotype::Het});
  const auto matrix = matrix_from_rows(rows);
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, all_individuals(matrix));
  const auto result = estimate_haplotype_frequencies(table);
  // cis haplotypes (00 and 11) should absorb nearly all the mass.
  EXPECT_GT(result.frequencies[0b00] + result.frequencies[0b11], 0.97);
  EXPECT_LT(result.frequencies[0b01] + result.frequencies[0b10], 0.03);
}

TEST(Em, FrequenciesFormADistribution) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 99);
  const auto& matrix = synthetic.dataset.genotypes();
  const auto ids = all_individuals(matrix);
  for (const std::vector<SnpIndex>& snps :
       {std::vector<SnpIndex>{0, 1}, std::vector<SnpIndex>{2, 5, 7},
        std::vector<SnpIndex>{1, 3, 6, 9}}) {
    const auto table = GenotypePatternTable::build(matrix, snps, ids);
    const auto result = estimate_haplotype_frequencies(table);
    double sum = 0.0;
    for (const double f : result.frequencies) {
      EXPECT_GE(f, -1e-12);
      sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-8);
    EXPECT_EQ(result.frequencies.size(), std::size_t{1} << snps.size());
  }
}

TEST(Em, LikelihoodNeverDecreasesFromStart) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 55);
  const auto& matrix = synthetic.dataset.genotypes();
  const auto ids = all_individuals(matrix);
  const std::vector<SnpIndex> snps{0, 2, 4};
  const auto table = GenotypePatternTable::build(matrix, snps, ids);

  // One-iteration run vs converged run: converged must be >= single.
  EmConfig one_step;
  one_step.max_iterations = 1;
  const auto early = estimate_haplotype_frequencies(table, one_step);
  const auto full = estimate_haplotype_frequencies(table);
  EXPECT_GE(full.log_likelihood, early.log_likelihood - 1e-9);
}

TEST(Em, EmptyPatternTableConverges) {
  const GenotypeMatrix matrix(0, 2);
  const std::vector<std::uint32_t> no_ids;
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, no_ids);
  const auto result = estimate_haplotype_frequencies(table);
  EXPECT_TRUE(result.converged);
}

TEST(Em, ConfigValidation) {
  EmConfig config;
  config.tolerance = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.max_iterations = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Em, InvariantToIndividualOrder) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 424);
  const auto& matrix = synthetic.dataset.genotypes();
  std::vector<std::uint32_t> forward = all_individuals(matrix);
  std::vector<std::uint32_t> reversed(forward.rbegin(), forward.rend());
  const std::vector<SnpIndex> snps{0, 3, 7};
  const auto a = estimate_haplotype_frequencies(
      GenotypePatternTable::build(matrix, snps, forward));
  const auto b = estimate_haplotype_frequencies(
      GenotypePatternTable::build(matrix, snps, reversed));
  for (std::size_t h = 0; h < a.frequencies.size(); ++h) {
    EXPECT_DOUBLE_EQ(a.frequencies[h], b.frequencies[h]);
  }
}

TEST(Em, MatchesGridSearchOnTwoLocusProblem) {
  // Brute-force the 2-locus likelihood over a frequency grid and check
  // EM's solution is at least as likely as every grid point.
  const auto matrix = matrix_from_rows({
      {Genotype::Het, Genotype::Het},
      {Genotype::HomOne, Genotype::Het},
      {Genotype::HomTwo, Genotype::HomTwo},
      {Genotype::Het, Genotype::HomOne},
      {Genotype::HomOne, Genotype::HomOne},
  });
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, all_individuals(matrix));
  const auto em = estimate_haplotype_frequencies(table);

  double best_grid = -1e300;
  const int steps = 24;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; i + j <= steps; ++j) {
      for (int k = 0; i + j + k <= steps; ++k) {
        const double p00 = static_cast<double>(i) / steps;
        const double p01 = static_cast<double>(j) / steps;
        const double p10 = static_cast<double>(k) / steps;
        const double p11 = 1.0 - p00 - p01 - p10;
        const std::vector<double> freqs{p00, p01, p10, p11};
        best_grid = std::max(best_grid,
                             genotype_log_likelihood(table, freqs));
      }
    }
  }
  EXPECT_GE(em.log_likelihood, best_grid - 1e-6);
}

// --- missing-data marginalization ---------------------------------------

TEST(EmMissing, MarginalizeKeepsAllIndividuals) {
  const auto matrix = matrix_from_rows({
      {Genotype::HomOne, Genotype::Missing},
      {Genotype::HomOne, Genotype::HomOne},
  });
  const auto ids = all_individuals(matrix);
  const std::vector<SnpIndex> snps{0, 1};
  const auto complete = GenotypePatternTable::build(
      matrix, snps, ids, MissingPolicy::CompleteCase);
  const auto marginal = GenotypePatternTable::build(
      matrix, snps, ids, MissingPolicy::Marginalize);
  EXPECT_DOUBLE_EQ(complete.total_individuals(), 1.0);
  EXPECT_EQ(complete.excluded_missing(), 1u);
  EXPECT_DOUBLE_EQ(marginal.total_individuals(), 2.0);
  EXPECT_EQ(marginal.excluded_missing(), 0u);
  ASSERT_EQ(marginal.patterns().size(), 2u);
  EXPECT_EQ(marginal.patterns()[0].missing_mask, 0u);
  EXPECT_EQ(marginal.patterns()[1].missing_mask, 2u);
}

TEST(EmMissing, PoliciesAgreeWithoutMissingData) {
  const auto synthetic = ldga::testing::small_synthetic(8, 2, 5150);
  const auto& matrix = synthetic.dataset.genotypes();
  const auto ids = all_individuals(matrix);
  const std::vector<SnpIndex> snps{1, 4, 6};
  const auto a = GenotypePatternTable::build(matrix, snps, ids,
                                             MissingPolicy::CompleteCase);
  const auto b = GenotypePatternTable::build(matrix, snps, ids,
                                             MissingPolicy::Marginalize);
  const auto ra = estimate_haplotype_frequencies(a);
  const auto rb = estimate_haplotype_frequencies(b);
  for (std::size_t h = 0; h < ra.frequencies.size(); ++h) {
    EXPECT_DOUBLE_EQ(ra.frequencies[h], rb.frequencies[h]);
  }
}

TEST(EmMissing, MarginalizedFrequenciesSumToOne) {
  // Build data with forced missing cells.
  const auto matrix = matrix_from_rows({
      {Genotype::HomOne, Genotype::Het, Genotype::Missing},
      {Genotype::Missing, Genotype::HomTwo, Genotype::Het},
      {Genotype::Het, Genotype::Missing, Genotype::Missing},
      {Genotype::HomTwo, Genotype::HomOne, Genotype::HomOne},
      {Genotype::Het, Genotype::Het, Genotype::Het},
  });
  const auto ids = all_individuals(matrix);
  EmConfig config;
  config.missing = MissingPolicy::Marginalize;
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1, 2}, ids,
      MissingPolicy::Marginalize);
  const auto result = estimate_haplotype_frequencies(table, config);
  double sum = 0.0;
  for (const double f : result.frequencies) {
    EXPECT_GE(f, -1e-12);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST(EmMissing, MissingPullsTowardObservedConsensus) {
  // Overwhelming HomTwo evidence plus one fully missing individual: EM
  // should attribute the missing individual's chromosomes to the same
  // haplotype, converging on frequency ~1 for "2".
  std::vector<std::vector<Genotype>> rows(20, {Genotype::HomTwo});
  rows.push_back({Genotype::Missing});
  const auto matrix = matrix_from_rows(rows);
  const auto ids = all_individuals(matrix);
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0}, ids, MissingPolicy::Marginalize);
  EmConfig config;
  config.missing = MissingPolicy::Marginalize;
  config.max_iterations = 2000;
  config.tolerance = 1e-12;
  const auto result = estimate_haplotype_frequencies(table, config);
  EXPECT_GT(result.frequencies[1], 0.99);
}

TEST(EmMissing, LikelihoodComparableAcrossPolicies) {
  // On the same individuals, per-individual likelihood contributions
  // under marginalization cannot exceed 1; log-likelihood is finite.
  const auto matrix = matrix_from_rows({
      {Genotype::Het, Genotype::Missing},
      {Genotype::HomOne, Genotype::Het},
      {Genotype::HomTwo, Genotype::HomTwo},
  });
  const auto ids = all_individuals(matrix);
  const auto table = GenotypePatternTable::build(
      matrix, std::vector<SnpIndex>{0, 1}, ids, MissingPolicy::Marginalize);
  EmConfig config;
  config.missing = MissingPolicy::Marginalize;
  const auto result = estimate_haplotype_frequencies(table, config);
  EXPECT_LE(result.log_likelihood, 1e-9);
  EXPECT_TRUE(std::isfinite(result.log_likelihood));
}

TEST(HaplotypeLabel, RendersAlleleDigits) {
  EXPECT_EQ(haplotype_label(0b000, 3), "111");
  EXPECT_EQ(haplotype_label(0b101, 3), "212");
  EXPECT_EQ(haplotype_label(0b1, 1), "2");
}

}  // namespace
}  // namespace ldga::stats
