#include "genomics/ld.hpp"

#include <gtest/gtest.h>

#include "genomics/haplotype_sim.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ldga::genomics {
namespace {

/// Builds a 2-SNP genotype matrix from explicit haplotype pairs, so the
/// true haplotype frequencies are known.
GenotypeMatrix from_haplotypes(
    const std::vector<std::pair<std::array<Allele, 2>,
                                std::array<Allele, 2>>>& individuals) {
  GenotypeMatrix matrix(static_cast<std::uint32_t>(individuals.size()), 2);
  for (std::uint32_t i = 0; i < individuals.size(); ++i) {
    const auto& [maternal, paternal] = individuals[i];
    matrix.set(i, 0, make_genotype(maternal[0], paternal[0]));
    matrix.set(i, 1, make_genotype(maternal[1], paternal[1]));
  }
  return matrix;
}

TEST(PairEm, PerfectPositiveLd) {
  // Only haplotypes 11 and 22 exist, equally frequent.
  const std::array<Allele, 2> h11{Allele::One, Allele::One};
  const std::array<Allele, 2> h22{Allele::Two, Allele::Two};
  std::vector<std::pair<std::array<Allele, 2>, std::array<Allele, 2>>> people;
  for (int i = 0; i < 10; ++i) {
    people.push_back({h11, h11});
    people.push_back({h22, h22});
    people.push_back({h11, h22});
  }
  const auto matrix = from_haplotypes(people);
  const auto freqs = estimate_pair_haplotypes(matrix, 0, 1);
  EXPECT_NEAR(freqs.p11, 0.5, 1e-6);
  EXPECT_NEAR(freqs.p22, 0.5, 1e-6);
  EXPECT_NEAR(freqs.p12, 0.0, 1e-6);
  EXPECT_NEAR(freqs.p21, 0.0, 1e-6);

  const PairLd ld = pair_ld_from_freqs(freqs);
  EXPECT_NEAR(ld.d_prime, 1.0, 1e-6);
  EXPECT_NEAR(ld.r2, 1.0, 1e-6);
  EXPECT_NEAR(ld.d, 0.25, 1e-6);
}

TEST(PairEm, LinkageEquilibrium) {
  // All four haplotypes equally frequent: D = 0.
  const std::array<std::array<Allele, 2>, 4> haplotypes{{
      {Allele::One, Allele::One},
      {Allele::One, Allele::Two},
      {Allele::Two, Allele::One},
      {Allele::Two, Allele::Two},
  }};
  std::vector<std::pair<std::array<Allele, 2>, std::array<Allele, 2>>> people;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      people.push_back({haplotypes[a], haplotypes[b]});
    }
  }
  const auto matrix = from_haplotypes(people);
  const auto freqs = estimate_pair_haplotypes(matrix, 0, 1);
  const PairLd ld = pair_ld_from_freqs(freqs);
  EXPECT_NEAR(ld.d, 0.0, 1e-6);
  EXPECT_NEAR(ld.r2, 0.0, 1e-6);
}

TEST(PairEm, UnambiguousCountsNeedNoIterationToBeExact) {
  // Without double heterozygotes, EM must reproduce direct counting:
  // 6 chromosomes: 4x haplotype 12, 2x haplotype 21.
  std::vector<std::pair<std::array<Allele, 2>, std::array<Allele, 2>>> people{
      {{Allele::One, Allele::Two}, {Allele::One, Allele::Two}},
      {{Allele::One, Allele::Two}, {Allele::One, Allele::Two}},
      {{Allele::Two, Allele::One}, {Allele::Two, Allele::One}},
  };
  const auto matrix = from_haplotypes(people);
  const auto freqs = estimate_pair_haplotypes(matrix, 0, 1);
  EXPECT_NEAR(freqs.p12, 4.0 / 6.0, 1e-8);
  EXPECT_NEAR(freqs.p21, 2.0 / 6.0, 1e-8);
  EXPECT_NEAR(freqs.p11, 0.0, 1e-8);
  EXPECT_NEAR(freqs.p22, 0.0, 1e-8);
}

TEST(PairEm, FrequenciesAlwaysSumToOne) {
  const auto synthetic = ldga::testing::small_synthetic(8, 2, 77);
  const auto& matrix = synthetic.dataset.genotypes();
  for (SnpIndex a = 0; a + 1 < matrix.snp_count(); ++a) {
    for (SnpIndex b = a + 1; b < matrix.snp_count(); ++b) {
      const auto freqs = estimate_pair_haplotypes(matrix, a, b);
      EXPECT_NEAR(freqs.p11 + freqs.p12 + freqs.p21 + freqs.p22, 1.0, 1e-8);
    }
  }
}

TEST(PairEm, EmptyDataReturnsUniform) {
  const GenotypeMatrix matrix(0, 2);
  const auto freqs = estimate_pair_haplotypes(matrix, 0, 1);
  EXPECT_DOUBLE_EQ(freqs.p11, 0.25);
}

TEST(PairLd, DPrimeIsScaleInvariantUpperBound) {
  // D' must be in [0, 1] and r2 <= 1 for arbitrary frequencies.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    PairHaplotypeFreqs freqs;
    double total = 0.0;
    double draws[4];
    for (double& d : draws) {
      d = rng.uniform() + 1e-3;
      total += d;
    }
    freqs.p11 = draws[0] / total;
    freqs.p12 = draws[1] / total;
    freqs.p21 = draws[2] / total;
    freqs.p22 = draws[3] / total;
    const PairLd ld = pair_ld_from_freqs(freqs);
    EXPECT_GE(ld.d_prime, 0.0);
    EXPECT_LE(ld.d_prime, 1.0);
    EXPECT_GE(ld.r2, 0.0);
    EXPECT_LE(ld.r2, 1.0 + 1e-9);
  }
}

TEST(LdMatrix, SymmetricAccess) {
  const auto dataset = ldga::testing::tiny_dataset();
  const auto matrix = LdMatrix::compute(dataset);
  for (SnpIndex a = 0; a + 1 < dataset.snp_count(); ++a) {
    for (SnpIndex b = a + 1; b < dataset.snp_count(); ++b) {
      EXPECT_DOUBLE_EQ(matrix.at(a, b).d_prime, matrix.at(b, a).d_prime);
    }
  }
}

TEST(LdMatrix, DiagonalAccessDies) {
  const auto dataset = ldga::testing::tiny_dataset();
  const auto matrix = LdMatrix::compute(dataset);
  EXPECT_DEATH(matrix.at(1, 1), "precondition");
}

TEST(LdMatrix, LdDecaysWithDistanceInSimulatedData) {
  // The mosaic simulator must produce stronger LD for adjacent markers
  // than for distant ones — the property §2.2 of the paper relies on.
  const SnpPanel panel = SnpPanel::uniform(40, 10.0);
  HaplotypeSimConfig config;
  config.switch_rate_per_kb = 0.004;
  Rng rng(123);
  const HaplotypeSimulator simulator(panel, config, rng);

  GenotypeMatrix matrix(300, panel.size());
  for (std::uint32_t i = 0; i < 300; ++i) {
    const auto m = simulator.sample(rng);
    const auto p = simulator.sample(rng);
    for (SnpIndex s = 0; s < panel.size(); ++s) {
      matrix.set(i, s, make_genotype(m[s], p[s]));
    }
  }
  double near = 0.0, far = 0.0;
  int near_n = 0, far_n = 0;
  for (SnpIndex a = 0; a + 1 < panel.size(); ++a) {
    for (SnpIndex b = a + 1; b < panel.size(); ++b) {
      const auto ld =
          pair_ld_from_freqs(estimate_pair_haplotypes(matrix, a, b));
      if (b - a == 1) {
        near += ld.r2;
        ++near_n;
      } else if (b - a >= 20) {
        far += ld.r2;
        ++far_n;
      }
    }
  }
  EXPECT_GT(near / near_n, 2.0 * far / far_n);
}

}  // namespace
}  // namespace ldga::genomics
