#include "ga/operators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "genomics/allele_freq.hpp"
#include "genomics/ld.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::ga {
namespace {

VariationOperators make_operators(std::uint32_t snp_count = 20,
                                  std::uint32_t min_size = 2,
                                  std::uint32_t max_size = 6,
                                  std::uint32_t trials = 4) {
  static const FeasibilityFilter no_filter;
  OperatorConfig config;
  config.snp_count = snp_count;
  config.min_size = min_size;
  config.max_size = max_size;
  config.snp_mutation_trials = trials;
  return VariationOperators(config, no_filter);
}

std::uint32_t symmetric_difference_size(const std::vector<SnpIndex>& a,
                                        const std::vector<SnpIndex>& b) {
  std::vector<SnpIndex> diff;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(diff));
  return static_cast<std::uint32_t>(diff.size());
}

TEST(OperatorConfig, Validation) {
  OperatorConfig config;
  config.snp_count = 1;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.snp_count = 20;
  config.min_size = 5;
  config.max_size = 3;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.snp_count = 5;
  config.max_size = 9;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.snp_count = 20;
  config.snp_mutation_trials = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(SnpMutation, ProducesRequestedTrialCount) {
  const auto ops = make_operators(20, 2, 6, 5);
  const HaplotypeIndividual parent({2, 7, 11});
  Rng rng(1);
  const auto trials = ops.snp_mutation_trials(parent, rng);
  EXPECT_EQ(trials.size(), 5u);
}

TEST(SnpMutation, TrialsPreserveSizeAndChangeOneSnp) {
  const auto ops = make_operators();
  const HaplotypeIndividual parent({2, 7, 11, 15});
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    for (const auto& trial : ops.snp_mutation_trials(parent, rng)) {
      EXPECT_EQ(trial.size(), parent.size());
      // Replacing one SNP: symmetric difference of exactly 2 (or 0 if
      // the draw failed feasibility retries — never with no filter).
      EXPECT_EQ(symmetric_difference_size(trial.snps(), parent.snps()), 2u);
      for (const auto snp : trial.snps()) EXPECT_LT(snp, 20u);
    }
  }
}

TEST(SnpMutation, ExploresManyNeighbors) {
  const auto ops = make_operators(15, 2, 6, 4);
  const HaplotypeIndividual parent({0, 1});
  Rng rng(3);
  std::set<std::vector<SnpIndex>> seen;
  for (int round = 0; round < 100; ++round) {
    for (const auto& trial : ops.snp_mutation_trials(parent, rng)) {
      seen.insert(trial.snps());
    }
  }
  // Neighborhood size is 2 * 13 = 26; most should be hit.
  EXPECT_GT(seen.size(), 20u);
}

TEST(Reduction, RemovesExactlyOneSnp) {
  const auto ops = make_operators();
  const HaplotypeIndividual parent({2, 7, 11});
  Rng rng(4);
  const auto child = ops.reduction(parent, rng);
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->size(), 2u);
  // Child is a strict subset of the parent.
  EXPECT_TRUE(std::includes(parent.snps().begin(), parent.snps().end(),
                            child->snps().begin(), child->snps().end()));
}

TEST(Reduction, InapplicableAtMinSize) {
  const auto ops = make_operators(20, 2, 6);
  const HaplotypeIndividual parent({2, 7});
  Rng rng(5);
  EXPECT_FALSE(ops.reduction(parent, rng).has_value());
}

TEST(Reduction, EveryPositionCanBeRemoved) {
  const auto ops = make_operators();
  const HaplotypeIndividual parent({1, 2, 3});
  Rng rng(6);
  std::set<std::vector<SnpIndex>> children;
  for (int i = 0; i < 100; ++i) {
    children.insert(ops.reduction(parent, rng)->snps());
  }
  EXPECT_EQ(children.size(), 3u);
}

TEST(Augmentation, AddsExactlyOneSnp) {
  const auto ops = make_operators();
  const HaplotypeIndividual parent({2, 7, 11});
  Rng rng(7);
  const auto child = ops.augmentation(parent, rng);
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->size(), 4u);
  EXPECT_TRUE(std::includes(child->snps().begin(), child->snps().end(),
                            parent.snps().begin(), parent.snps().end()));
}

TEST(Augmentation, InapplicableAtMaxSize) {
  const auto ops = make_operators(20, 2, 3);
  const HaplotypeIndividual parent({2, 7, 11});
  Rng rng(8);
  EXPECT_FALSE(ops.augmentation(parent, rng).has_value());
}

// --- crossover property sweep ------------------------------------------

struct CrossCase {
  std::uint32_t size_a;
  std::uint32_t size_b;
};

class UniformCrossover : public ::testing::TestWithParam<CrossCase> {};

TEST_P(UniformCrossover, ChildrenHaveParentSizes) {
  const auto [size_a, size_b] = GetParam();
  const auto ops = make_operators(30, 2, 8);
  Rng rng(100 + size_a * 10 + size_b);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pa = HaplotypeIndividual::random(30, size_a, rng);
    const auto pb = HaplotypeIndividual::random(30, size_b, rng);
    const auto [ca, cb] = ops.uniform_crossover(pa, pb, rng);
    EXPECT_EQ(ca.size(), size_a);
    EXPECT_EQ(cb.size(), size_b);
    EXPECT_TRUE(std::is_sorted(ca.snps().begin(), ca.snps().end()));
    EXPECT_TRUE(
        std::adjacent_find(ca.snps().begin(), ca.snps().end()) ==
        ca.snps().end());
  }
}

TEST_P(UniformCrossover, ChildrenMostlyInheritParentMaterial) {
  const auto [size_a, size_b] = GetParam();
  const auto ops = make_operators(30, 2, 8);
  Rng rng(200 + size_a * 10 + size_b);
  int inherited = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto pa = HaplotypeIndividual::random(30, size_a, rng);
    const auto pb = HaplotypeIndividual::random(30, size_b, rng);
    std::set<SnpIndex> pool(pa.snps().begin(), pa.snps().end());
    pool.insert(pb.snps().begin(), pb.snps().end());
    const auto [ca, cb] = ops.uniform_crossover(pa, pb, rng);
    for (const auto snp : ca.snps()) {
      ++total;
      if (pool.count(snp)) ++inherited;
    }
    for (const auto snp : cb.snps()) {
      ++total;
      if (pool.count(snp)) ++inherited;
    }
  }
  // Panel top-up only happens when the union is exhausted; inherited
  // material must dominate overwhelmingly.
  EXPECT_GT(inherited, total * 95 / 100);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UniformCrossover,
                         ::testing::Values(CrossCase{2, 2}, CrossCase{3, 3},
                                           CrossCase{6, 6}, CrossCase{2, 6},
                                           CrossCase{3, 5}, CrossCase{4, 2},
                                           CrossCase{8, 3}));

TEST(UniformCrossoverBasics, IdenticalParentsYieldIdenticalChildren) {
  const auto ops = make_operators();
  const HaplotypeIndividual parent({3, 9, 14});
  Rng rng(9);
  const auto [c1, c2] = ops.uniform_crossover(parent, parent, rng);
  EXPECT_TRUE(c1.same_snps(parent));
  EXPECT_TRUE(c2.same_snps(parent));
}

TEST(UniformCrossoverBasics, MixesMaterialFromBothParents) {
  const auto ops = make_operators(30, 2, 8);
  const HaplotypeIndividual pa({0, 1, 2, 3});
  const HaplotypeIndividual pb({20, 21, 22, 23});
  Rng rng(10);
  bool mixed = false;
  for (int trial = 0; trial < 50 && !mixed; ++trial) {
    const auto [ca, cb] = ops.uniform_crossover(pa, pb, rng);
    const bool has_low =
        std::any_of(ca.snps().begin(), ca.snps().end(),
                    [](SnpIndex s) { return s < 10; });
    const bool has_high =
        std::any_of(ca.snps().begin(), ca.snps().end(),
                    [](SnpIndex s) { return s >= 20; });
    mixed = has_low && has_high;
  }
  EXPECT_TRUE(mixed);
}

TEST(OperatorsWithFilter, AugmentationAvoidsInfeasibleAdditions) {
  // Build a filter from a panel where some pairs are infeasible, then
  // check augmentation's additions respect it whenever possible.
  const auto dataset = ldga::testing::tiny_dataset();
  const auto ld = genomics::LdMatrix::compute(dataset);
  const auto freqs = genomics::AlleleFrequencyTable::estimate(dataset);
  ConstraintConfig constraint_config;
  constraint_config.max_pairwise_d_prime = 0.99;
  const FeasibilityFilter filter(ld, freqs, constraint_config);
  if (!filter.enabled()) GTEST_SKIP();

  OperatorConfig config;
  config.snp_count = 4;
  config.min_size = 1;
  config.max_size = 3;
  const VariationOperators ops(config, filter);
  Rng rng(21);
  int feasible_additions = 0, total = 0;
  for (SnpIndex start = 0; start < 4; ++start) {
    const HaplotypeIndividual parent({start});
    for (int trial = 0; trial < 25; ++trial) {
      const auto child = ops.augmentation(parent, rng);
      if (!child) continue;
      ++total;
      if (filter.feasible(child->snps())) ++feasible_additions;
    }
  }
  ASSERT_GT(total, 0);
  // Best-effort retries make feasible additions dominate when any
  // feasible partner exists for the start SNP.
  EXPECT_GT(feasible_additions, total * 3 / 4);
}

TEST(UniformCrossoverBasics, DeterministicForSeed) {
  const auto ops = make_operators();
  const HaplotypeIndividual pa({1, 5, 9});
  const HaplotypeIndividual pb({2, 6, 10});
  Rng rng1(77), rng2(77);
  const auto [a1, b1] = ops.uniform_crossover(pa, pb, rng1);
  const auto [a2, b2] = ops.uniform_crossover(pa, pb, rng2);
  EXPECT_TRUE(a1.same_snps(a2));
  EXPECT_TRUE(b1.same_snps(b2));
}

}  // namespace
}  // namespace ldga::ga
