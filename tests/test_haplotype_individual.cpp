#include "ga/haplotype_individual.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ldga::ga {
namespace {

TEST(HaplotypeIndividual, CanonicalizesOnConstruction) {
  const HaplotypeIndividual individual({9, 2, 5, 2, 9});
  EXPECT_EQ(individual.snps(), (std::vector<SnpIndex>{2, 5, 9}));
  EXPECT_EQ(individual.size(), 3u);
}

TEST(HaplotypeIndividual, DefaultIsEmptyAndUnevaluated) {
  const HaplotypeIndividual individual;
  EXPECT_EQ(individual.size(), 0u);
  EXPECT_FALSE(individual.evaluated());
}

TEST(HaplotypeIndividual, FitnessLifecycle) {
  HaplotypeIndividual individual({1, 2});
  EXPECT_FALSE(individual.evaluated());
  individual.set_fitness(12.5);
  EXPECT_TRUE(individual.evaluated());
  EXPECT_DOUBLE_EQ(individual.fitness(), 12.5);
  individual.invalidate_fitness();
  EXPECT_FALSE(individual.evaluated());
}

TEST(HaplotypeIndividual, ReadingUnevaluatedFitnessDies) {
  const HaplotypeIndividual individual({1});
  EXPECT_DEATH(individual.fitness(), "precondition");
}

TEST(HaplotypeIndividual, Contains) {
  const HaplotypeIndividual individual({3, 8, 20});
  EXPECT_TRUE(individual.contains(8));
  EXPECT_FALSE(individual.contains(9));
}

TEST(HaplotypeIndividual, SameSnpsIgnoresFitness) {
  HaplotypeIndividual a({1, 2});
  HaplotypeIndividual b({2, 1});
  a.set_fitness(1.0);
  b.set_fitness(2.0);
  EXPECT_TRUE(a.same_snps(b));
  const HaplotypeIndividual c({1, 3});
  EXPECT_FALSE(a.same_snps(c));
}

TEST(HaplotypeIndividual, ToStringIsOneBasedLikeThePaper) {
  // The paper's Table 2 lists haplotypes like "8 12 15".
  const HaplotypeIndividual individual({7, 11, 14});
  EXPECT_EQ(individual.to_string(), "8 12 15");
}

TEST(HaplotypeIndividual, RandomHasRequestedSizeAndRange) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto individual = HaplotypeIndividual::random(30, 6, rng);
    EXPECT_EQ(individual.size(), 6u);
    EXPECT_TRUE(std::is_sorted(individual.snps().begin(),
                               individual.snps().end()));
    for (const auto snp : individual.snps()) EXPECT_LT(snp, 30u);
  }
}

TEST(HaplotypeIndividual, RandomCoversTheWholePanel) {
  Rng rng(6);
  std::set<SnpIndex> seen;
  for (int trial = 0; trial < 300; ++trial) {
    const auto individual = HaplotypeIndividual::random(10, 3, rng);
    seen.insert(individual.snps().begin(), individual.snps().end());
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HaplotypeIndividual, RandomSizeEqualsPanel) {
  Rng rng(7);
  const auto individual = HaplotypeIndividual::random(5, 5, rng);
  EXPECT_EQ(individual.snps(), (std::vector<SnpIndex>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace ldga::ga
