#include "genomics/qc.hpp"

#include <gtest/gtest.h>

#include "genomics/synthetic.hpp"
#include "stats/special.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::genomics {
namespace {

TEST(HardyWeinberg, PerfectEquilibriumScoresZero) {
  // p = q = 0.5, n = 100: expected 25/50/25.
  const auto result = hardy_weinberg_test(25, 50, 25);
  EXPECT_NEAR(result.chi_square, 0.0, 1e-12);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.freq_two, 0.5);
}

TEST(HardyWeinberg, KnownDeviationByHand) {
  // 10/20/10 het-deficient case: q=0.5, expected 10/20/10 for n=40...
  // Use a real deviation: 30/0/30 (no hets at all, q = 0.5, n = 60):
  // expected 15/30/15 -> chi2 = 15 + 30 + 15 = 60.
  const auto result = hardy_weinberg_test(30, 0, 30);
  EXPECT_NEAR(result.chi_square, 60.0, 1e-9);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(HardyWeinberg, MatchesChiSquareSf) {
  // 1-df p-value via erfc must agree with the generic sf.
  const auto result = hardy_weinberg_test(40, 40, 20);
  EXPECT_NEAR(result.p_value,
              stats::chi_square_sf(result.chi_square, 1.0), 1e-10);
}

TEST(HardyWeinberg, MonomorphicIsUndefinedButSafe) {
  const auto result = hardy_weinberg_test(50, 0, 0);
  EXPECT_DOUBLE_EQ(result.chi_square, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(HardyWeinberg, EmptyCounts) {
  const auto result = hardy_weinberg_test(0, 0, 0);
  EXPECT_EQ(result.typed_individuals, 0u);
}

TEST(HardyWeinberg, SimulatedCohortMostlyPasses) {
  // The mosaic simulator mates chromosomes at random, so HWE should
  // hold for the bulk of markers in a status-blind population.
  const auto synthetic = ldga::testing::small_synthetic(30, 0, 12);
  int fails = 0;
  for (SnpIndex s = 0; s < 30; ++s) {
    if (hardy_weinberg_test(synthetic.dataset, s).p_value < 0.01) ++fails;
  }
  EXPECT_LE(fails, 3);
}

TEST(MarkerQc, ThresholdValidation) {
  QcThresholds thresholds;
  thresholds.min_maf = 0.6;
  EXPECT_THROW(thresholds.validate(), ConfigError);
  thresholds = {};
  thresholds.max_missing_rate = 1.5;
  EXPECT_THROW(thresholds.validate(), ConfigError);
  thresholds = {};
  thresholds.min_hwe_p = -0.1;
  EXPECT_THROW(thresholds.validate(), ConfigError);
}

TEST(MarkerQc, PermissiveThresholdsKeepEverything) {
  const auto synthetic = ldga::testing::small_synthetic(15, 2, 77);
  QcThresholds thresholds;
  thresholds.min_maf = 0.0;
  thresholds.max_missing_rate = 1.0;
  thresholds.min_hwe_p = 0.0;
  const auto report = run_marker_qc(synthetic.dataset, thresholds);
  EXPECT_EQ(report.kept.size(), 15u);
  EXPECT_EQ(report.dropped_maf + report.dropped_missing + report.dropped_hwe,
            0u);
}

TEST(MarkerQc, MissingnessFilterDrops) {
  // Build a dataset with one all-missing marker.
  genomics::GenotypeMatrix matrix(10, 2);
  for (std::uint32_t i = 0; i < 10; ++i) {
    matrix.set(i, 0, i % 2 == 0 ? Genotype::Het : Genotype::HomOne);
    // marker 1 stays Missing everywhere
  }
  const Dataset dataset(SnpPanel::uniform(2), std::move(matrix),
                        std::vector<Status>(10, Status::Unknown));
  QcThresholds thresholds;
  thresholds.min_hwe_p = 0.0;
  const auto report = run_marker_qc(dataset, thresholds);
  EXPECT_EQ(report.kept, (std::vector<SnpIndex>{0}));
  EXPECT_EQ(report.dropped_missing, 1u);
}

TEST(MarkerQc, MafFilterDropsRareMarkers) {
  genomics::GenotypeMatrix matrix(50, 2);
  for (std::uint32_t i = 0; i < 50; ++i) {
    matrix.set(i, 0, i < 25 ? Genotype::HomOne : Genotype::HomTwo);
    matrix.set(i, 1, Genotype::HomOne);  // monomorphic: MAF 0
  }
  const Dataset dataset(SnpPanel::uniform(2), std::move(matrix),
                        std::vector<Status>(50, Status::Unknown));
  QcThresholds thresholds;
  thresholds.min_hwe_p = 0.0;  // marker 0 (30/0/30-like) must not be
                               // dropped for HWE in this test
  const auto report = run_marker_qc(dataset, thresholds);
  EXPECT_EQ(report.kept, (std::vector<SnpIndex>{0}));
  EXPECT_EQ(report.dropped_maf, 1u);
}

TEST(SubsetMarkers, KeepsSelectedColumnsAndStatuses) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 33);
  const std::vector<SnpIndex> keep{1, 4, 8};
  const Dataset subset = subset_markers(synthetic.dataset, keep);
  EXPECT_EQ(subset.snp_count(), 3u);
  EXPECT_EQ(subset.individual_count(),
            synthetic.dataset.individual_count());
  for (std::uint32_t i = 0; i < subset.individual_count(); ++i) {
    EXPECT_EQ(subset.status(i), synthetic.dataset.status(i));
    for (std::uint32_t m = 0; m < keep.size(); ++m) {
      EXPECT_EQ(subset.genotypes().at(i, static_cast<SnpIndex>(m)),
                synthetic.dataset.genotypes().at(i, keep[m]));
    }
  }
  EXPECT_EQ(subset.panel().name(1), synthetic.dataset.panel().name(4));
}

TEST(MarkerQc, EndToEndWithGa) {
  // QC then search: the standard pipeline shape.
  genomics::SyntheticConfig config;
  config.snp_count = 20;
  config.active_snps = {3, 11};
  config.affected_count = 40;
  config.unaffected_count = 40;
  config.unknown_count = 0;
  config.missing_rate = 0.02;
  Rng rng(55);
  const auto synthetic = generate_synthetic(config, rng);
  const auto report = run_marker_qc(synthetic.dataset);
  ASSERT_GE(report.kept.size(), 10u);
  const Dataset clean = subset_markers(synthetic.dataset, report.kept);
  EXPECT_EQ(clean.snp_count(), report.kept.size());
}

}  // namespace
}  // namespace ldga::genomics
