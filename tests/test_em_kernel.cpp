// Property suite for the compiled sparse EM kernel: the phase-program
// path must be bit-for-bit identical to the visitor-based reference —
// frequencies, log-likelihood, iteration count and convergence flag —
// on every table shape the pipeline can produce.
#include "stats/em_kernel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "genomics/genotype_matrix.hpp"
#include "stats/eh_diall.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ldga::stats {
namespace {

using genomics::Genotype;
using genomics::GenotypeMatrix;
using genomics::SnpIndex;

GenotypeMatrix random_matrix(std::uint32_t individuals, std::uint32_t snps,
                             double missing_prob, Rng& rng) {
  GenotypeMatrix matrix(individuals, snps);
  for (std::uint32_t i = 0; i < individuals; ++i) {
    for (SnpIndex s = 0; s < snps; ++s) {
      if (rng.uniform() < missing_prob) {
        matrix.set(i, s, Genotype::Missing);
        continue;
      }
      switch (rng.below(3)) {
        case 0:
          matrix.set(i, s, Genotype::HomOne);
          break;
        case 1:
          matrix.set(i, s, Genotype::Het);
          break;
        default:
          matrix.set(i, s, Genotype::HomTwo);
          break;
      }
    }
  }
  return matrix;
}

GenotypePatternTable table_of(const GenotypeMatrix& matrix,
                              MissingPolicy missing) {
  std::vector<std::uint32_t> ids(matrix.individual_count());
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<SnpIndex> snps(matrix.snp_count());
  std::iota(snps.begin(), snps.end(), 0);
  return GenotypePatternTable::build(matrix, snps, ids, missing);
}

EmResult run_compiled(const GenotypePatternTable& table,
                      const EmConfig& config) {
  const EmProgram program = EmProgram::compile(table);
  EmKernelScratch scratch;
  return expand_em_result(program,
                          run_em_program(program, config, scratch));
}

void expect_bit_identical(const EmResult& reference,
                          const EmResult& compiled) {
  ASSERT_EQ(reference.frequencies.size(), compiled.frequencies.size());
  for (std::size_t h = 0; h < reference.frequencies.size(); ++h) {
    EXPECT_EQ(reference.frequencies[h], compiled.frequencies[h])
        << "haplotype " << h;
  }
  EXPECT_EQ(reference.log_likelihood, compiled.log_likelihood);
  EXPECT_EQ(reference.iterations, compiled.iterations);
  EXPECT_EQ(reference.converged, compiled.converged);
}

TEST(EmKernel, MatchesReferenceOnRandomTables) {
  for (const std::uint32_t k : {2u, 3u, 4u, 6u, 8u}) {
    for (const MissingPolicy missing :
         {MissingPolicy::CompleteCase, MissingPolicy::Marginalize}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 1000 + k);
        const auto matrix = random_matrix(40, k, 0.03, rng);
        const auto table = table_of(matrix, missing);
        EmConfig config;
        config.missing = missing;
        const auto reference = estimate_haplotype_frequencies(table, config);
        const auto compiled = run_compiled(table, config);
        expect_bit_identical(reference, compiled);
      }
    }
  }
}

TEST(EmKernel, MatchesReferenceAtMaxLoci) {
  // 2^20 dense entries on the reference side; cap the iterations so the
  // dense M-step stays cheap. The point is shape coverage, not depth.
  Rng rng(77);
  const auto matrix = random_matrix(25, kMaxEmLoci, 0.02, rng);
  for (const MissingPolicy missing :
       {MissingPolicy::CompleteCase, MissingPolicy::Marginalize}) {
    const auto table = table_of(matrix, missing);
    EmConfig config;
    config.missing = missing;
    config.max_iterations = 3;
    const auto reference = estimate_haplotype_frequencies(table, config);
    const auto compiled = run_compiled(table, config);
    expect_bit_identical(reference, compiled);
  }
}

TEST(EmKernel, MatchesReferenceOnSinglePattern) {
  // Every individual carries the same genotype — one pattern, and for
  // the all-het case the classic 2^(k-1) phase ambiguity.
  for (const Genotype g :
       {Genotype::HomOne, Genotype::Het, Genotype::HomTwo}) {
    GenotypeMatrix matrix(6, 3);
    for (std::uint32_t i = 0; i < 6; ++i) {
      for (SnpIndex s = 0; s < 3; ++s) matrix.set(i, s, g);
    }
    const auto table = table_of(matrix, MissingPolicy::CompleteCase);
    const auto reference = estimate_haplotype_frequencies(table, {});
    const auto compiled = run_compiled(table, {});
    expect_bit_identical(reference, compiled);
  }
}

TEST(EmKernel, MatchesReferenceOnAllMissing) {
  GenotypeMatrix matrix(5, 2);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (SnpIndex s = 0; s < 2; ++s) matrix.set(i, s, Genotype::Missing);
  }
  // CompleteCase excludes everyone: the no-data degenerate path.
  {
    const auto table = table_of(matrix, MissingPolicy::CompleteCase);
    ASSERT_EQ(table.total_individuals(), 0.0);
    const auto reference = estimate_haplotype_frequencies(table, {});
    const auto compiled = run_compiled(table, {});
    expect_bit_identical(reference, compiled);
  }
  // Marginalize keeps everyone with every locus free: the support is
  // the full 2^k set and every pair is compatible.
  {
    EmConfig config;
    config.missing = MissingPolicy::Marginalize;
    const auto table = table_of(matrix, MissingPolicy::Marginalize);
    const auto reference = estimate_haplotype_frequencies(table, config);
    const auto compiled = run_compiled(table, config);
    expect_bit_identical(reference, compiled);
  }
}

TEST(EmKernel, SupportSetIsSparseOnStructuredData) {
  // Two homozygous genotype classes reach only two haplotypes — the
  // program must not carry the other 2^k − 2.
  GenotypeMatrix matrix(10, 4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    for (SnpIndex s = 0; s < 4; ++s) {
      matrix.set(i, s, i % 2 == 0 ? Genotype::HomOne : Genotype::HomTwo);
    }
  }
  const auto table = table_of(matrix, MissingPolicy::CompleteCase);
  const EmProgram program = EmProgram::compile(table);
  EXPECT_EQ(program.support_size(), 2u);
  EXPECT_EQ(program.haplotype_count(), 16u);
  const auto reference = estimate_haplotype_frequencies(table, {});
  EmKernelScratch scratch;
  const auto compiled = expand_em_result(
      program, run_em_program(program, {}, scratch));
  expect_bit_identical(reference, compiled);
}

TEST(EmKernel, CompiledEhDiallMatchesReferencePath) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 424242);
  const EhDiall reference(synthetic.dataset, {}, false);
  const EhDiall compiled(synthetic.dataset, {}, true);
  for (const std::vector<SnpIndex>& snps :
       {std::vector<SnpIndex>{0, 1}, {2, 5, 7}, {0, 3, 4, 8}}) {
    const auto ref = reference.analyze(snps);
    const auto fast = compiled.analyze(snps);
    expect_bit_identical(ref.affected, fast.affected);
    expect_bit_identical(ref.unaffected, fast.unaffected);
    expect_bit_identical(ref.pooled, fast.pooled);
    EXPECT_EQ(ref.lrt, fast.lrt);
  }
}

TEST(EmKernel, WarmStartedPooledAgreesWithColdSolution) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 99);
  const EhDiall cold(synthetic.dataset, {}, true, false);
  const EhDiall warm(synthetic.dataset, {}, true, true);
  for (const std::vector<SnpIndex>& snps :
       {std::vector<SnpIndex>{0, 1}, {1, 4, 6}, {2, 3, 5, 9}}) {
    const auto c = cold.analyze(snps);
    const auto w = warm.analyze(snps);
    // Group runs never warm-start: identical by construction.
    expect_bit_identical(c.affected, w.affected);
    expect_bit_identical(c.unaffected, w.unaffected);
    // The pooled run reaches the same maximum from a different start;
    // agreement is to EM tolerance, not ulps.
    ASSERT_EQ(c.pooled.frequencies.size(), w.pooled.frequencies.size());
    for (std::size_t h = 0; h < c.pooled.frequencies.size(); ++h) {
      EXPECT_NEAR(c.pooled.frequencies[h], w.pooled.frequencies[h], 1e-5);
    }
    EXPECT_NEAR(c.lrt, w.lrt, 1e-5);
    EXPECT_TRUE(w.pooled.converged);
    // The blend starts near the pooled optimum, so the warm run must
    // not be slower than the cold one.
    EXPECT_LE(w.pooled.iterations, c.pooled.iterations);
  }
}

TEST(EmKernel, WarmStartFallbackReproducesColdResultExactly) {
  // An iteration cap of 1 denies the warm run any chance to converge,
  // forcing the equilibrium-start fallback — which must be bit-for-bit
  // the cold compiled result.
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 7);
  EmConfig config;
  config.max_iterations = 1;
  const EhDiall cold(synthetic.dataset, config, true, false);
  const EhDiall warm(synthetic.dataset, config, true, true);
  const std::vector<SnpIndex> snps{0, 1, 2};
  const auto c = cold.analyze(snps);
  const auto w = warm.analyze(snps);
  EXPECT_FALSE(w.pooled_warm_started);
  expect_bit_identical(c.pooled, w.pooled);
  EXPECT_EQ(c.lrt, w.lrt);
}

}  // namespace
}  // namespace ldga::stats
