#include "genomics/dataset.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::genomics {
namespace {

TEST(Dataset, TinyDatasetShape) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  EXPECT_EQ(dataset.individual_count(), 8u);
  EXPECT_EQ(dataset.snp_count(), 4u);
}

TEST(Dataset, StatusCounts) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  EXPECT_EQ(dataset.count(Status::Affected), 4u);
  EXPECT_EQ(dataset.count(Status::Unaffected), 4u);
  EXPECT_EQ(dataset.count(Status::Unknown), 0u);
}

TEST(Dataset, IndividualsWithPreservesOrder) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  const auto affected = dataset.individuals_with(Status::Affected);
  ASSERT_EQ(affected.size(), 4u);
  EXPECT_EQ(affected, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  const auto unaffected = dataset.individuals_with(Status::Unaffected);
  EXPECT_EQ(unaffected, (std::vector<std::uint32_t>{4, 5, 6, 7}));
}

TEST(Dataset, MismatchedPanelThrows) {
  GenotypeMatrix matrix(2, 3);
  EXPECT_THROW(Dataset(SnpPanel::uniform(4), std::move(matrix),
                       std::vector<Status>(2, Status::Unknown)),
               DataError);
}

TEST(Dataset, MismatchedStatusCountThrows) {
  GenotypeMatrix matrix(2, 3);
  EXPECT_THROW(Dataset(SnpPanel::uniform(3), std::move(matrix),
                       std::vector<Status>(5, Status::Unknown)),
               DataError);
}

TEST(Dataset, StatusOutOfRangeDies) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  EXPECT_DEATH(dataset.status(8), "precondition");
}

}  // namespace
}  // namespace ldga::genomics
