#include "parallel/message.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ldga::parallel {
namespace {

TEST(Message, ScalarRoundTrip) {
  Packer packer;
  packer.pack<std::int32_t>(-7);
  packer.pack<std::uint32_t>(42u);
  packer.pack<std::int64_t>(-1'000'000'000'000LL);
  packer.pack<std::uint64_t>(9'000'000'000'000'000'000ULL);
  packer.pack(3.14159);

  Message message;
  message.payload = std::move(packer).take();
  Unpacker unpacker = message.unpacker();
  EXPECT_EQ(unpacker.unpack<std::int32_t>(), -7);
  EXPECT_EQ(unpacker.unpack<std::uint32_t>(), 42u);
  EXPECT_EQ(unpacker.unpack<std::int64_t>(), -1'000'000'000'000LL);
  EXPECT_EQ(unpacker.unpack<std::uint64_t>(), 9'000'000'000'000'000'000ULL);
  EXPECT_DOUBLE_EQ(unpacker.unpack<double>(), 3.14159);
  EXPECT_TRUE(unpacker.exhausted());
}

TEST(Message, VectorRoundTrip) {
  Packer packer;
  const std::vector<std::uint32_t> ints{1, 5, 9};
  const std::vector<double> doubles{0.5, -2.25};
  packer.pack_vector(ints);
  packer.pack_vector(doubles);

  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_EQ(unpacker.unpack_vector<std::uint32_t>(), ints);
  EXPECT_EQ(unpacker.unpack_vector<double>(), doubles);
}

TEST(Message, EmptyVectorRoundTrip) {
  Packer packer;
  packer.pack_vector(std::vector<double>{});
  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_TRUE(unpacker.unpack_vector<double>().empty());
  EXPECT_TRUE(unpacker.exhausted());
}

TEST(Message, StringRoundTrip) {
  Packer packer;
  packer.pack_string("hello pvm");
  packer.pack_string("");
  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_EQ(unpacker.unpack_string(), "hello pvm");
  EXPECT_EQ(unpacker.unpack_string(), "");
}

TEST(Message, MixedSequenceRoundTrip) {
  Packer packer;
  packer.pack<std::uint64_t>(3);
  packer.pack_vector(std::vector<std::uint32_t>{8, 12, 15});
  packer.pack(58.814);
  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_EQ(unpacker.unpack<std::uint64_t>(), 3u);
  EXPECT_EQ(unpacker.unpack_vector<std::uint32_t>(),
            (std::vector<std::uint32_t>{8, 12, 15}));
  EXPECT_DOUBLE_EQ(unpacker.unpack<double>(), 58.814);
}

TEST(Message, TypeMismatchThrows) {
  Packer packer;
  packer.pack(1.5);
  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_THROW(unpacker.unpack<std::int32_t>(), ParallelError);
}

TEST(Message, VectorElementTypeMismatchThrows) {
  Packer packer;
  packer.pack_vector(std::vector<double>{1.0});
  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_THROW(unpacker.unpack_vector<std::uint32_t>(), ParallelError);
}

TEST(Message, ReadPastEndThrows) {
  Packer packer;
  packer.pack<std::int32_t>(1);
  const auto bytes = std::move(packer).take();
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  unpacker.unpack<std::int32_t>();
  EXPECT_THROW(unpacker.unpack<std::int32_t>(), ParallelError);
}

TEST(Message, TruncatedPayloadThrows) {
  Packer packer;
  packer.pack(2.5);
  auto bytes = std::move(packer).take();
  ASSERT_GT(bytes.size(), 3u);
  bytes.pop_back();  // cut into the scalar bytes (shrink-only: resize's
  bytes.pop_back();  // grow path trips GCC 12 -Wstringop-overflow under
  bytes.pop_back();  // the sanitizer presets)
  Unpacker unpacker((std::span<const std::uint8_t>(bytes)));
  EXPECT_THROW(unpacker.unpack<double>(), ParallelError);
}

}  // namespace
}  // namespace ldga::parallel
