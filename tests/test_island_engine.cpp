#include "ga/island_engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "analysis/enumeration.hpp"
#include "ga/telemetry_writer.hpp"
#include "genomics/synthetic.hpp"
#include "parallel/fault_injection.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::ga {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ldga_" + name;
}

/// Small, fast configuration mirroring test_engine.cpp's fast_config,
/// with tight async cadences so migration / rate syncs / immigrant
/// waves all fire inside a short run.
IslandConfig fast_config() {
  IslandConfig config;
  config.ga.min_size = 2;
  config.ga.max_size = 4;
  config.ga.population_size = 30;
  config.ga.min_subpopulation = 5;
  config.ga.crossovers_per_generation = 6;
  config.ga.mutations_per_generation = 10;
  config.ga.stagnation_generations = 15;
  config.ga.random_immigrant_stagnation = 6;
  config.ga.max_generations = 60;
  config.ga.seed = 5;
  config.lanes = 2;
  config.max_coalesce = 8;
  config.max_pending = 4;
  config.migration_interval = 8;
  config.rate_sync_interval = 4;
  return config;
}

const genomics::Dataset& shared_dataset() {
  static const auto synthetic = ldga::testing::small_synthetic(12, 2, 321);
  return synthetic.dataset;
}

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const stats::HaplotypeEvaluator evaluator(shared_dataset());
  return evaluator;
}

TEST(IslandConfigValidation, CatchesBadSettings) {
  IslandConfig config = fast_config();
  config.lanes = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.max_coalesce = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.max_pending = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.migration_interval = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.rate_sync_interval = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  config.poll_timeout = std::chrono::milliseconds(0);
  EXPECT_THROW(config.validate(), ConfigError);

  // Bad base GA settings surface through the nested validate.
  config = fast_config();
  config.ga.min_size = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = fast_config();
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.applications_per_generation(), 16u);
}

TEST(IslandEngine, RejectsMaxSizeBeyondEvaluator) {
  stats::EvaluatorConfig eval_config;
  eval_config.max_loci = 3;
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 1);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset, eval_config);
  EXPECT_THROW(IslandEngine(evaluator, fast_config()), ConfigError);
}

TEST(IslandEngine, RunProducesBestPerSize) {
  IslandEngine engine(shared_evaluator(), fast_config());
  const IslandRunResult result = engine.run();

  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& best = result.best_by_size[i];
    EXPECT_EQ(best.size(), 2u + i);
    EXPECT_TRUE(best.evaluated());
    EXPECT_GE(best.fitness(), 0.0);
  }
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GT(result.total_steps, 0u);
  ASSERT_EQ(result.steps_by_island.size(), 3u);
  std::uint64_t steps = 0;
  for (const std::uint64_t s : result.steps_by_island) steps += s;
  EXPECT_EQ(steps, result.total_steps);
  EXPECT_GT(result.wall_seconds, 0.0);
  // Every submission was either delivered or accounted as failed.
  EXPECT_EQ(result.stream_stats.completed + result.stream_stats.failed,
            result.stream_stats.submitted);
}

TEST(IslandEngine, MigrationAndImmigrantsFire) {
  IslandConfig config = fast_config();
  config.migration_interval = 4;  // push elites eagerly
  IslandEngine engine(shared_evaluator(), config);
  const IslandRunResult result = engine.run();
  EXPECT_GT(result.migrations_sent, 0u);
  EXPECT_GT(result.migrations_received, 0u);
}

TEST(IslandEngine, ReachesTheEnumeratedOptimum) {
  // The acceptance criterion for the async rewrite: no generation
  // barrier, yet the same planted haplotypes as the synchronous
  // reference (whose own test pins it to the enumerated optimum).
  genomics::SyntheticConfig synth;
  synth.snp_count = 14;
  synth.affected_count = 50;
  synth.unaffected_count = 50;
  synth.unknown_count = 10;
  synth.active_snps = {4, 9};
  synth.disease.relative_risk = 8.0;
  Rng rng(7777);
  const auto synthetic = genomics::generate_synthetic(synth, rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  IslandConfig config = fast_config();
  config.ga.min_size = 2;
  config.ga.max_size = 3;
  config.ga.population_size = 40;
  config.ga.min_subpopulation = 10;
  config.ga.crossovers_per_generation = 8;
  config.ga.mutations_per_generation = 16;
  config.ga.stagnation_generations = 30;
  config.ga.max_generations = 200;
  config.ga.seed = 99;
  IslandEngine engine(evaluator, config);
  const IslandRunResult result = engine.run();

  for (std::uint32_t size = 2; size <= 3; ++size) {
    const auto exact = analysis::enumerate_all(evaluator, size);
    const auto& best = result.best_by_size[size - 2];
    EXPECT_NEAR(best.fitness(), exact.best.front().fitness, 1e-9)
        << "size " << size;
    EXPECT_EQ(best.snps(), exact.best.front().snps) << "size " << size;
  }
  // And the size-2 optimum is the planted pair (sanity of the claim).
  EXPECT_EQ(result.best_by_size[0].snps(), synthetic.truth.snps);
}

TEST(IslandEngine, EventTelemetryIsWritten) {
  std::stringstream out;
  IslandEventCsvWriter writer(out);
  IslandEngine engine(shared_evaluator(), fast_config());
  engine.set_event_callback(writer.callback());
  const IslandRunResult result = engine.run();
  EXPECT_GT(result.total_steps, 0u);

  EXPECT_GT(writer.rows_written(), 0u);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("wall_seconds,event,island"), std::string::npos);
  // Every island reports the end of its initial scoring.
  EXPECT_NE(csv.find("initialized"), std::string::npos);
}

TEST(IslandEngine, HonorsEvaluationBudget) {
  IslandConfig config = fast_config();
  config.ga.max_evaluations = 40;
  IslandEngine engine(shared_evaluator(), config);
  const IslandRunResult result = engine.run();
  // The budget is a stop signal, not a hard ceiling: in-flight
  // evaluations finish, so allow the bounded overshoot of one window.
  const std::uint64_t slack =
      static_cast<std::uint64_t>(config.max_pending) * 3 + config.lanes;
  EXPECT_LE(result.evaluations, 40u + slack * config.max_coalesce);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(IslandEngine, CheckpointsAndResumes) {
  const std::string path = temp_path("island_resume.ckpt");
  std::remove(path.c_str());

  IslandConfig config = fast_config();
  config.ga.checkpoint.path = path;
  config.ga.checkpoint.every = 1;  // one generation-equivalent of steps
  {
    IslandEngine engine(shared_evaluator(), config);
    const IslandRunResult result = engine.run();
    ASSERT_TRUE(checkpoint_exists(path));
    EXPECT_EQ(result.resumed_steps, 0u);

    const IslandCheckpoint cp = load_island_checkpoint(path);
    EXPECT_EQ(cp.islands.size(), 3u);
    EXPECT_GT(cp.total_steps, 0u);
    for (const auto& island : cp.islands) {
      EXPECT_FALSE(island.members.empty());
      for (const auto& member : island.members) {
        EXPECT_TRUE(member.evaluated());
      }
    }
  }

  // Resume from the snapshot: the run continues past the saved step
  // count and still reports one best per size.
  config.ga.checkpoint.resume = true;
  const std::uint64_t saved = load_island_checkpoint(path).total_steps;
  IslandEngine resumed(shared_evaluator(), config);
  const IslandRunResult result = resumed.run();
  EXPECT_EQ(result.resumed_steps, saved);
  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (const auto& best : result.best_by_size) {
    EXPECT_TRUE(best.evaluated());
  }
  std::remove(path.c_str());
}

TEST(IslandEngine, RefusesResumeUnderDifferentConfig) {
  const std::string path = temp_path("island_mismatch.ckpt");
  std::remove(path.c_str());

  IslandConfig config = fast_config();
  config.ga.checkpoint.path = path;
  config.ga.checkpoint.every = 1;
  IslandEngine(shared_evaluator(), config).run();
  ASSERT_TRUE(checkpoint_exists(path));

  config.ga.checkpoint.resume = true;
  config.ga.seed = 777;  // fingerprint covers the seed
  IslandEngine resumed(shared_evaluator(), config);
  EXPECT_THROW(resumed.run(), CheckpointError);
  std::remove(path.c_str());
}

TEST(IslandEngine, SurvivesInjectedFaultsAndStragglers) {
  // Injected throws exercise the retry ladder; the heavy-tailed
  // straggler preset exercises exactly the schedule the generation
  // barrier cannot absorb. The run must complete and still report an
  // evaluated best per size.
  auto fault_config = parallel::FaultInjector::straggler_preset(
      11, 0.10, std::chrono::milliseconds(1));
  fault_config.throw_probability = 0.05;
  IslandConfig config = fast_config();
  config.fault_injector =
      std::make_shared<parallel::FaultInjector>(fault_config);

  IslandEngine engine(shared_evaluator(), config);
  const IslandRunResult result = engine.run();
  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (const auto& best : result.best_by_size) {
    EXPECT_TRUE(best.evaluated());
  }
  EXPECT_GT(config.fault_injector->injected_stragglers(), 0u);
  EXPECT_GT(config.fault_injector->injected_throws(), 0u);
}

int soak_repetitions() {
  const char* soak = std::getenv("LDGA_CHAOS_SOAK");
  return (soak != nullptr && soak[0] != '\0' && soak[0] != '0') ? 3 : 1;
}

TEST(IslandEngineChaos, FindsThePlantedPairUnderStragglerChaos) {
  // The async engine's chaos acceptance (scripts/check.sh
  // --transport=socket regex, CI chaos job plain + TSan): under the
  // heavy-tailed straggler schedule plus injected throws, the islands
  // must still converge to the planted haplotype — chaos may cost
  // time, never the destination. LDGA_CHAOS_SOAK=1 repeats the run
  // across injector seeds.
  genomics::SyntheticConfig synth;
  synth.snp_count = 14;
  synth.affected_count = 50;
  synth.unaffected_count = 50;
  synth.unknown_count = 10;
  synth.active_snps = {4, 9};
  synth.disease.relative_risk = 8.0;
  Rng rng(7777);
  const auto synthetic = genomics::generate_synthetic(synth, rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  std::uint64_t stragglers_across_reps = 0;
  for (int rep = 0; rep < soak_repetitions(); ++rep) {
    auto fault_config = parallel::FaultInjector::straggler_preset(
        100 + static_cast<std::uint64_t>(rep), 0.10,
        std::chrono::milliseconds(1));
    fault_config.throw_probability = 0.05;

    IslandConfig config = fast_config();
    config.ga.min_size = 2;
    config.ga.max_size = 3;
    config.ga.population_size = 40;
    config.ga.min_subpopulation = 10;
    config.ga.crossovers_per_generation = 8;
    config.ga.mutations_per_generation = 16;
    config.ga.stagnation_generations = 30;
    config.ga.max_generations = 200;
    config.ga.seed = 99 + static_cast<std::uint64_t>(rep);
    config.fault_injector =
        std::make_shared<parallel::FaultInjector>(fault_config);

    IslandEngine engine(evaluator, config);
    const IslandRunResult result = engine.run();
    EXPECT_EQ(result.best_by_size[0].snps(), synthetic.truth.snps)
        << "rep " << rep;
    stragglers_across_reps += config.fault_injector->injected_stragglers();
  }
  // A fast-converging seed may finish before its schedule fires; the
  // chaos claim only needs the soak as a whole to have injected some.
  EXPECT_GT(stragglers_across_reps, 0u);
}

}  // namespace
}  // namespace ldga::ga
