#include "analysis/ld_prefilter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "ga/window_scan.hpp"
#include "genomics/genotype_matrix.hpp"
#include "genomics/ld.hpp"
#include "genomics/packed_genotype.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::analysis {
namespace {

using genomics::Genotype;
using genomics::PackedGenotypeMatrix;
using genomics::PairLd;

/// Builds a packed store from dosage columns (0/1/2; 3 = missing).
PackedGenotypeMatrix store_from_columns(
    const std::vector<std::vector<int>>& columns) {
  const auto individuals = static_cast<std::uint32_t>(columns.front().size());
  const auto snps = static_cast<std::uint32_t>(columns.size());
  genomics::GenotypeMatrix matrix(individuals, snps);
  for (std::uint32_t s = 0; s < snps; ++s) {
    for (std::uint32_t i = 0; i < individuals; ++i) {
      matrix.set(i, s, static_cast<Genotype>(columns[s][i]));
    }
  }
  return PackedGenotypeMatrix(matrix);
}

// A balanced polymorphic column: four of each dosage.
const std::vector<int> kColA{0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2};
// Its dosage complement (perfect negative correlation).
const std::vector<int> kColFlip{2, 2, 2, 1, 1, 1, 0, 0, 0, 2, 1, 0};
// Monomorphic in dosage (every individual heterozygous).
const std::vector<int> kColMono{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
// Uncorrelated-ish shuffle of kColA.
const std::vector<int> kColShuffled{1, 2, 0, 2, 0, 1, 1, 0, 2, 2, 1, 0};

TEST(LdPrefilter, PerfectlyCorrelatedPairScoresFullLd) {
  const PackedGenotypeMatrix store = store_from_columns({kColA, kColA});
  const PairLd ld = composite_pair_ld(store, 0, 1);
  EXPECT_NEAR(ld.r2, 1.0, 1e-12);
  EXPECT_NEAR(ld.d_prime, 1.0, 1e-12);
  // cov = var = 2/3 for the balanced column, so D = cov/2 = 1/3.
  EXPECT_NEAR(ld.d, 1.0 / 3.0, 1e-12);
}

TEST(LdPrefilter, AnticorrelatedPairScoresFullLdWithNegativeD) {
  const PackedGenotypeMatrix store = store_from_columns({kColA, kColFlip});
  const PairLd ld = composite_pair_ld(store, 0, 1);
  EXPECT_NEAR(ld.r2, 1.0, 1e-12);
  EXPECT_NEAR(ld.d_prime, 1.0, 1e-12);
  EXPECT_LT(ld.d, 0.0);
}

TEST(LdPrefilter, MonomorphicLocusScoresZero) {
  const PackedGenotypeMatrix store = store_from_columns({kColA, kColMono});
  const PairLd ld = composite_pair_ld(store, 0, 1);
  EXPECT_EQ(ld.r2, 0.0);
  EXPECT_EQ(ld.d_prime, 0.0);
  EXPECT_EQ(ld.d, 0.0);
}

TEST(LdPrefilter, MissingGenotypesAreExcludedPairwise) {
  // Column B with the first three individuals untyped: the pair must be
  // scored over the remaining nine only.
  std::vector<int> with_missing = kColShuffled;
  with_missing[0] = with_missing[1] = with_missing[2] = 3;
  const PackedGenotypeMatrix store =
      store_from_columns({kColA, with_missing});

  const std::vector<int> a_reduced(kColA.begin() + 3, kColA.end());
  const std::vector<int> b_reduced(kColShuffled.begin() + 3,
                                   kColShuffled.end());
  const PackedGenotypeMatrix reduced =
      store_from_columns({a_reduced, b_reduced});

  const PairLd full = composite_pair_ld(store, 0, 1);
  const PairLd sub = composite_pair_ld(reduced, 0, 1);
  EXPECT_DOUBLE_EQ(full.r2, sub.r2);
  EXPECT_DOUBLE_EQ(full.d, sub.d);
  EXPECT_DOUBLE_EQ(full.d_prime, sub.d_prime);
}

TEST(LdPrefilter, FewerThanTwoJointlyTypedScoresZero) {
  // Complementary missingness: no individual is typed at both loci.
  std::vector<int> first_half = kColA;
  std::vector<int> second_half = kColA;
  for (std::size_t i = 0; i < kColA.size(); ++i) {
    if (i < 6) first_half[i] = 3;
    if (i >= 6) second_half[i] = 3;
  }
  const PackedGenotypeMatrix store =
      store_from_columns({first_half, second_half});
  const PairLd ld = composite_pair_ld(store, 0, 1);
  EXPECT_EQ(ld.r2, 0.0);
  EXPECT_EQ(ld.d, 0.0);
}

TEST(LdPrefilter, WindowSummaryCountsPairsAndStrongPairs) {
  const PackedGenotypeMatrix store =
      store_from_columns({kColA, kColA, kColMono});
  const std::vector<ga::WindowSpec> windows{{0, 3}};
  const std::vector<WindowScore> scores = score_windows(store, windows);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].pairs, 3u);           // (0,1) (0,2) (1,2)
  EXPECT_EQ(scores[0].strong_pairs, 1u);    // only the (0,1) r² = 1 pair
  EXPECT_NEAR(scores[0].max_r2, 1.0, 1e-12);
  EXPECT_NEAR(scores[0].mean_r2, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(scores[0].score, scores[0].mean_r2);
}

TEST(LdPrefilter, TileSizeDoesNotChangeScores) {
  const genomics::Dataset dataset =
      ldga::testing::small_synthetic(30, 2, 7).dataset;
  const PackedGenotypeMatrix store(dataset.genotypes());
  const std::vector<ga::WindowSpec> windows = ga::plan_windows(30, 12, 6);

  LdPrefilterConfig tiny;
  tiny.tile_snps = 1;
  LdPrefilterConfig odd;
  odd.tile_snps = 5;
  const auto reference = score_windows(store, windows);  // tile 256
  const auto tiled_1 = score_windows(store, windows, tiny);
  const auto tiled_5 = score_windows(store, windows, odd);

  ASSERT_EQ(reference.size(), windows.size());
  for (std::size_t w = 0; w < reference.size(); ++w) {
    for (const auto* other : {&tiled_1[w], &tiled_5[w]}) {
      EXPECT_EQ(other->pairs, reference[w].pairs);
      EXPECT_EQ(other->strong_pairs, reference[w].strong_pairs);
      EXPECT_DOUBLE_EQ(other->max_r2, reference[w].max_r2);
      // The tile order changes the summation order, so means agree to
      // rounding, not bit-for-bit.
      EXPECT_NEAR(other->mean_r2, reference[w].mean_r2, 1e-12);
      EXPECT_NEAR(other->mean_abs_d_prime, reference[w].mean_abs_d_prime,
                  1e-12);
    }
  }
}

TEST(LdPrefilter, ThreadCountDoesNotChangeScores) {
  // Unlike tile size (which reorders the pair sums), the worker count
  // must not move a single bit: every tile folds into its own partial
  // and the partials reduce in fixed tile order on the caller, whether
  // a pool ran or not.
  const genomics::Dataset dataset =
      ldga::testing::small_synthetic(30, 2, 7).dataset;
  const PackedGenotypeMatrix store(dataset.genotypes());
  const std::vector<ga::WindowSpec> windows = ga::plan_windows(30, 12, 6);

  LdPrefilterConfig serial;
  serial.tile_snps = 5;  // several tiles per window, so the pool engages
  const auto reference = score_windows(store, windows, serial);
  for (const std::uint32_t workers : {2u, 3u, 7u}) {
    LdPrefilterConfig parallel = serial;
    parallel.workers = workers;
    const auto scored = score_windows(store, windows, parallel);
    ASSERT_EQ(scored.size(), reference.size());
    for (std::size_t w = 0; w < reference.size(); ++w) {
      EXPECT_EQ(scored[w].pairs, reference[w].pairs);
      EXPECT_EQ(scored[w].strong_pairs, reference[w].strong_pairs);
      EXPECT_EQ(scored[w].max_r2, reference[w].max_r2);
      EXPECT_EQ(scored[w].mean_r2, reference[w].mean_r2);
      EXPECT_EQ(scored[w].mean_abs_d_prime, reference[w].mean_abs_d_prime);
      EXPECT_EQ(scored[w].score, reference[w].score);
    }
  }
}

TEST(LdPrefilter, RanksLdBlockAboveNoiseWindow) {
  // Window [0, 4): four copies of one column — a perfect LD block.
  // Window [4, 8): shuffles with little mutual correlation.
  const PackedGenotypeMatrix store = store_from_columns(
      {kColA, kColA, kColA, kColA,
       kColShuffled,
       {2, 0, 1, 0, 2, 1, 0, 1, 2, 0, 2, 1},
       {0, 1, 2, 2, 1, 0, 2, 0, 1, 1, 0, 2},
       {1, 0, 2, 1, 2, 0, 0, 2, 1, 2, 1, 0}});
  const std::vector<ga::WindowSpec> windows{{0, 4}, {4, 4}};
  const std::vector<WindowScore> scores = score_windows(store, windows);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0].score, scores[1].score);
  EXPECT_NEAR(scores[0].mean_r2, 1.0, 1e-12);

  const std::vector<ga::WindowSpec> kept = top_windows(scores, 1);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].begin, 0u);
  EXPECT_EQ(kept[0].count, 4u);
}

TEST(LdPrefilter, TopWindowsResortGenomicallyAndBreakTiesEarly) {
  std::vector<WindowScore> scores(3);
  scores[0].window = {0, 10};
  scores[0].score = 0.1;
  scores[1].window = {10, 10};
  scores[1].score = 0.9;
  scores[2].window = {20, 10};
  scores[2].score = 0.1;  // ties with window 0 — earlier begin wins

  const auto kept = top_windows(scores, 2);
  ASSERT_EQ(kept.size(), 2u);
  // Highest (begin 10) plus the tie-winner (begin 0), genomic order.
  EXPECT_EQ(kept[0].begin, 0u);
  EXPECT_EQ(kept[1].begin, 10u);

  const auto all = top_windows(scores, 99);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].begin, 0u);
  EXPECT_EQ(all[2].begin, 20u);
}

TEST(LdPrefilter, StreamingSweepEmitsBatchScoresInOrder) {
  const genomics::Dataset dataset =
      ldga::testing::small_synthetic(30, 2, 7).dataset;
  const PackedGenotypeMatrix store(dataset.genotypes());
  const std::vector<ga::WindowSpec> windows = ga::plan_windows(30, 12, 6);

  LdPrefilterConfig config;
  config.tile_snps = 5;
  config.workers = 3;  // the shared pool must not change a bit either
  const auto batch = score_windows(store, windows, config);
  std::vector<WindowScore> streamed;
  score_windows_streaming(store, windows, config,
                          [&](const WindowScore& score) {
                            streamed.push_back(score);
                          });
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    EXPECT_EQ(streamed[w].window.begin, batch[w].window.begin);
    EXPECT_EQ(streamed[w].score, batch[w].score);
    EXPECT_EQ(streamed[w].pairs, batch[w].pairs);
    EXPECT_EQ(streamed[w].max_r2, batch[w].max_r2);
  }
}

/// Synthetic rankings for the admission logic: scores only, no store.
std::vector<WindowScore> ranking_fixture() {
  // Includes ties (0.5 twice) and a ceiling score to stress the
  // tie-break and bound reasoning.
  const std::vector<double> values{0.1, 0.5, 0.9, 0.5,  1.0, 0.0,
                                   0.3, 0.7, 0.2, 0.45, 0.5, 0.65};
  std::vector<WindowScore> scores(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    scores[i].window = {static_cast<genomics::SnpIndex>(i * 10), 10};
    scores[i].score = values[i];
  }
  return scores;
}

std::vector<std::uint32_t> begins_of(std::span<const ga::WindowSpec> specs) {
  std::vector<std::uint32_t> begins;
  for (const auto& spec : specs) begins.push_back(spec.begin);
  return begins;
}

TEST(LdPrefilter, StreamingAdmissionEqualsFullRankingEveryOrder) {
  const std::vector<WindowScore> scores = ranking_fixture();
  // Offer orders: genomic, reversed, and an interleaved shuffle.
  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> forward(scores.size());
  std::iota(forward.begin(), forward.end(), 0u);
  orders.push_back(forward);
  orders.emplace_back(forward.rbegin(), forward.rend());
  orders.push_back({5, 2, 9, 0, 11, 7, 4, 1, 8, 3, 10, 6});

  for (const std::uint32_t keep : {1u, 3u, 5u, 12u, 99u}) {
    const auto expected = begins_of(top_windows(scores, keep));
    for (const auto& order : orders) {
      StreamingTopK admission(static_cast<std::uint32_t>(scores.size()),
                              keep);
      std::vector<std::uint32_t> admitted;
      for (const std::size_t i : order) {
        for (const WindowScore& released : admission.offer(scores[i])) {
          admitted.push_back(released.window.begin);
        }
      }
      EXPECT_TRUE(admission.complete());
      EXPECT_EQ(admission.admitted(), expected.size());
      std::sort(admitted.begin(), admitted.end());
      // The admitted set EQUALS the full ranking's output — streaming
      // may only change when windows are released, never which.
      EXPECT_EQ(admitted, expected) << "keep=" << keep;
    }
  }
}

TEST(LdPrefilter, StreamingAdmissionNeverAdmitsARankingReject) {
  // The satellite property, checked at every prefix: a window released
  // mid-stream must be in the top set of the FINAL full ranking — no
  // admission may later be proven wrong.
  const std::vector<WindowScore> scores = ranking_fixture();
  const std::uint32_t keep = 4;
  const auto final_top = begins_of(top_windows(scores, keep));

  StreamingTopK admission(static_cast<std::uint32_t>(scores.size()), keep);
  std::size_t released_total = 0;
  for (const WindowScore& score : scores) {
    for (const WindowScore& released : admission.offer(score)) {
      ++released_total;
      EXPECT_NE(std::find(final_top.begin(), final_top.end(),
                          released.window.begin),
                final_top.end())
          << "admitted window " << released.window.begin
          << " is not in the final top-" << keep;
    }
    EXPECT_LE(admission.admitted(), keep);
  }
  EXPECT_EQ(released_total, final_top.size());
}

TEST(LdPrefilter, StreamingAdmissionReleasesEarlyWhenProvable) {
  // keep >= total: every window is provably in the moment it is
  // scored — admissions must not wait for the sweep to end.
  const std::vector<WindowScore> scores = ranking_fixture();
  StreamingTopK admission(static_cast<std::uint32_t>(scores.size()),
                          static_cast<std::uint32_t>(scores.size()));
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto released = admission.offer(scores[i]);
    ASSERT_EQ(released.size(), 1u) << "offer " << i;
    EXPECT_EQ(released[0].window.begin, scores[i].window.begin);
  }
}

TEST(LdPrefilter, ConfigRejectsBadKnobs) {
  LdPrefilterConfig zero_tile;
  zero_tile.tile_snps = 0;
  EXPECT_THROW(zero_tile.validate(), ConfigError);

  LdPrefilterConfig bad_threshold;
  bad_threshold.strong_r2 = 1.5;
  EXPECT_THROW(bad_threshold.validate(), ConfigError);
}

}  // namespace
}  // namespace ldga::analysis
