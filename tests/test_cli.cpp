#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ldga {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"program"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, NamedValues) {
  const auto args = parse({"--snps", "51", "--backend", "farm"});
  EXPECT_EQ(args.get_int("snps", 0), 51);
  EXPECT_EQ(args.get("backend", ""), "farm");
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("snps", 42), 42);
  EXPECT_EQ(args.get("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.5), 0.5);
  EXPECT_FALSE(args.get_bool("trace"));
}

TEST(Cli, BooleanFlagForms) {
  EXPECT_TRUE(parse({"--trace"}).get_bool("trace"));
  EXPECT_TRUE(parse({"--trace", "true"}).get_bool("trace"));
  EXPECT_TRUE(parse({"--trace", "1"}).get_bool("trace"));
  EXPECT_FALSE(parse({"--trace", "false"}).get_bool("trace"));
  EXPECT_FALSE(parse({"--trace", "no"}).get_bool("trace"));
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  const auto args = parse({"--trace", "--snps", "10"});
  EXPECT_TRUE(args.get_bool("trace"));
  EXPECT_EQ(args.get_int("snps", 0), 10);
}

TEST(Cli, Positional) {
  const auto args = parse({"input.txt", "--snps", "5", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, DoubleParsing) {
  const auto args = parse({"--rate", "0.75"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.75);
}

TEST(Cli, BadNumberThrows) {
  EXPECT_THROW(parse({"--snps", "abc"}).get_int("snps", 0), ConfigError);
  EXPECT_THROW(parse({"--rate", "x"}).get_double("rate", 0.0), ConfigError);
  EXPECT_THROW(parse({"--flag", "maybe"}).get_bool("flag"), ConfigError);
}

TEST(Cli, UnusedFlagsAreReported) {
  const auto args = parse({"--known", "1", "--typo", "2"});
  args.get_int("known", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, HasMarksQueried) {
  const auto args = parse({"--present"});
  EXPECT_TRUE(args.has("present"));
  EXPECT_FALSE(args.has("absent"));
  EXPECT_TRUE(args.unused().empty());
}

TEST(Cli, BareDashesThrow) {
  EXPECT_THROW(parse({"--"}), ConfigError);
}

}  // namespace
}  // namespace ldga
