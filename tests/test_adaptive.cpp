#include "ga/adaptive.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::ga {
namespace {

AdaptiveRateController paper_mutation_controller() {
  // The paper's setting: three mutation operators, G = 0.9, δ = 0.01.
  return AdaptiveRateController({"snp", "reduction", "augmentation"}, 0.9,
                                0.01);
}

double rate_sum(const AdaptiveRateController& ctrl) {
  double sum = 0.0;
  for (std::uint32_t op = 0; op < ctrl.operator_count(); ++op) {
    sum += ctrl.rate(op);
  }
  return sum;
}

TEST(AdaptiveRates, InitialRatesAreEqualShares) {
  const auto ctrl = paper_mutation_controller();
  for (std::uint32_t op = 0; op < 3; ++op) {
    EXPECT_NEAR(ctrl.rate(op), 0.3, 1e-12);
  }
}

TEST(AdaptiveRates, Validation) {
  EXPECT_THROW(AdaptiveRateController({}, 0.9, 0.01), ConfigError);
  EXPECT_THROW(AdaptiveRateController({"a"}, 0.0, 0.0), ConfigError);
  EXPECT_THROW(AdaptiveRateController({"a"}, 1.5, 0.0), ConfigError);
  EXPECT_THROW(AdaptiveRateController({"a", "b"}, 0.1, 0.06), ConfigError);
  EXPECT_NO_THROW(AdaptiveRateController({"a", "b"}, 0.1, 0.05));
}

TEST(AdaptiveRates, ProfitableOperatorGainsRate) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 0.5);
  ctrl.record(0, 0.3);
  ctrl.record(1, 0.01);
  ctrl.record(2, 0.0);
  ctrl.end_generation();
  EXPECT_GT(ctrl.rate(0), 0.5);
  EXPECT_LT(ctrl.rate(1), 0.1);
  EXPECT_NEAR(ctrl.rate(2), 0.01, 1e-12);  // floor δ
}

TEST(AdaptiveRates, SumInvariantHoldsUnderRandomUse) {
  // The paper's invariant: Σ rate_i == G after every generation.
  auto ctrl = paper_mutation_controller();
  Rng rng(42);
  for (int generation = 0; generation < 200; ++generation) {
    const int applications = static_cast<int>(rng.below(20));
    for (int a = 0; a < applications; ++a) {
      ctrl.record(static_cast<std::uint32_t>(rng.below(3)),
                  rng.uniform(-0.5, 1.0));
    }
    ctrl.end_generation();
    EXPECT_NEAR(rate_sum(ctrl), 0.9, 1e-9) << "generation " << generation;
    for (std::uint32_t op = 0; op < 3; ++op) {
      EXPECT_GE(ctrl.rate(op), 0.01 - 1e-12);
    }
  }
}

TEST(AdaptiveRates, NegativeProgressIsClampedToZero) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, -100.0);
  ctrl.record(1, 0.2);
  ctrl.end_generation();
  EXPECT_NEAR(ctrl.rate(0), 0.01, 1e-12);
  EXPECT_NEAR(ctrl.rate(1), 0.9 - 3 * 0.01 + 0.01, 1e-12);
}

TEST(AdaptiveRates, SilentGenerationKeepsRates) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 1.0);
  ctrl.end_generation();
  const double r0 = ctrl.rate(0);
  // No applications at all.
  ctrl.end_generation();
  EXPECT_DOUBLE_EQ(ctrl.rate(0), r0);
  // Applications but zero progress everywhere.
  ctrl.record(1, 0.0);
  ctrl.record(2, -1.0);
  ctrl.end_generation();
  EXPECT_DOUBLE_EQ(ctrl.rate(0), r0);
}

TEST(AdaptiveRates, ProfitIsMeanNotSumOfProgress) {
  // Operator 0: many low-progress applications; operator 1: one high.
  // Mean progress decides: op 1 must end with the higher rate.
  auto ctrl = AdaptiveRateController({"a", "b"}, 0.8, 0.05);
  for (int i = 0; i < 10; ++i) ctrl.record(0, 0.1);
  ctrl.record(1, 0.5);
  ctrl.end_generation();
  EXPECT_GT(ctrl.rate(1), ctrl.rate(0));
  // profit_a = 0.1/0.6, profit_b = 0.5/0.6; spread = 0.8 - 0.1 = 0.7.
  EXPECT_NEAR(ctrl.rate(0), (0.1 / 0.6) * 0.7 + 0.05, 1e-9);
  EXPECT_NEAR(ctrl.rate(1), (0.5 / 0.6) * 0.7 + 0.05, 1e-9);
}

TEST(AdaptiveRates, FrozenControllerNeverMoves) {
  auto ctrl = paper_mutation_controller();
  ctrl.freeze();
  for (int g = 0; g < 10; ++g) {
    ctrl.record(0, 1.0);
    ctrl.end_generation();
  }
  for (std::uint32_t op = 0; op < 3; ++op) {
    EXPECT_NEAR(ctrl.rate(op), 0.3, 1e-12);
  }
}

TEST(AdaptiveRates, SampleFollowsRates) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 1.0);  // op 0 takes nearly everything
  ctrl.end_generation();
  Rng rng(7);
  int picked0 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (ctrl.sample(rng.uniform()) == 0) ++picked0;
  }
  EXPECT_NEAR(picked0 / static_cast<double>(n), ctrl.rate(0) / 0.9, 0.02);
}

TEST(AdaptiveRates, SampleBoundaryInput) {
  const auto ctrl = paper_mutation_controller();
  EXPECT_EQ(ctrl.sample(0.0), 0u);
  EXPECT_EQ(ctrl.sample(0.999999), 2u);
}

SharedRateController paper_shared_controller(std::uint32_t sources) {
  return SharedRateController({"snp", "reduction", "augmentation"}, 0.9,
                              0.01, sources);
}

TEST(SharedRates, StartsAtEqualSharesAndKeepsTheSumInvariant) {
  auto ctrl = paper_shared_controller(3);
  auto snap = ctrl.snapshot();
  ASSERT_EQ(snap.rates.size(), 3u);
  for (const double rate : snap.rates) EXPECT_NEAR(rate, 0.3, 1e-12);

  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    RateDelta delta(3);
    const int records = static_cast<int>(rng.below(8));
    for (int r = 0; r < records; ++r) {
      delta.record(static_cast<std::uint32_t>(rng.below(3)),
                   rng.uniform(-0.5, 1.0));
    }
    ctrl.merge(static_cast<std::uint32_t>(rng.below(3)), delta);
    snap = ctrl.snapshot();
    const double sum =
        std::accumulate(snap.rates.begin(), snap.rates.end(), 0.0);
    EXPECT_NEAR(sum, 0.9, 1e-9) << "round " << round;
    for (const double rate : snap.rates) EXPECT_GE(rate, 0.01 - 1e-12);
  }
}

TEST(SharedRates, MergeOrderCannotPerturbTheRates) {
  // The async engine's merge-safety contract: rates are a pure function
  // of per-source cumulative totals, reduced in fixed source order —
  // so ANY interleaving of island publications yields bit-identical
  // rates (EXPECT_EQ on doubles, not EXPECT_NEAR). Each island's own
  // deltas stay in program order (that is what the engine guarantees);
  // the interleaving across islands is adversarially shuffled.
  constexpr std::uint32_t kSources = 4;
  constexpr std::uint32_t kDeltasPerSource = 6;

  // One fixed per-source publication schedule, generated once.
  std::vector<std::vector<RateDelta>> schedule(kSources);
  Rng gen(424242);
  for (auto& deltas : schedule) {
    for (std::uint32_t d = 0; d < kDeltasPerSource; ++d) {
      RateDelta delta(3);
      const int records = 1 + static_cast<int>(gen.below(5));
      for (int r = 0; r < records; ++r) {
        delta.record(static_cast<std::uint32_t>(gen.below(3)),
                     gen.uniform(0.0, 1.0));
      }
      deltas.push_back(delta);
    }
  }

  auto run_interleaving = [&](Rng& rng) {
    auto ctrl = paper_shared_controller(kSources);
    std::vector<std::uint32_t> next(kSources, 0);
    std::uint32_t remaining = kSources * kDeltasPerSource;
    while (remaining > 0) {
      const auto source = static_cast<std::uint32_t>(rng.below(kSources));
      if (next[source] == kDeltasPerSource) continue;
      ctrl.merge(source, schedule[source][next[source]++]);
      --remaining;
    }
    return ctrl.snapshot().rates;
  };

  Rng rng(1);
  const std::vector<double> reference = run_interleaving(rng);
  ASSERT_EQ(reference.size(), 3u);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> rates = run_interleaving(rng);
    for (std::size_t op = 0; op < 3; ++op) {
      EXPECT_EQ(rates[op], reference[op])
          << "trial " << trial << " op " << op
          << ": merge interleaving perturbed the rates";
    }
  }
}

TEST(SharedRates, SplitAndBatchedDeltasAgree) {
  // Publishing one big delta or the same records split across two
  // deltas lands on the same totals up to floating-point regrouping
  // (the bit-exactness guarantee is about cross-source interleavings —
  // see MergeOrderCannotPerturbTheRates — not about how one source
  // batches its own records).
  auto big = paper_shared_controller(2);
  auto split = paper_shared_controller(2);

  RateDelta all(3);
  RateDelta first(3), second(3);
  Rng rng(99);
  for (int r = 0; r < 40; ++r) {
    const auto op = static_cast<std::uint32_t>(rng.below(3));
    const double progress = rng.uniform(0.0, 2.0);
    all.record(op, progress);
    (r % 2 == 0 ? first : second).record(op, progress);
  }
  big.merge(0, all);
  split.merge(0, first);
  split.merge(0, second);

  const auto a = big.snapshot().rates;
  const auto b = split.snapshot().rates;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t op = 0; op < a.size(); ++op) {
    EXPECT_NEAR(a[op], b[op], 1e-12);
  }
}

TEST(SharedRates, FrozenControllerNeverMoves) {
  auto ctrl = paper_shared_controller(2);
  ctrl.freeze();
  RateDelta delta(3);
  delta.record(0, 5.0);
  ctrl.merge(0, delta);
  for (const double rate : ctrl.snapshot().rates) {
    EXPECT_NEAR(rate, 0.3, 1e-12);
  }
}

TEST(SharedRates, VersionMovesOnlyOnRealMerges) {
  auto ctrl = paper_shared_controller(2);
  const std::uint64_t v0 = ctrl.version();
  RateDelta delta(3);
  delta.record(1, 0.4);
  ctrl.merge(0, delta);
  EXPECT_GT(ctrl.version(), v0);
}

TEST(SharedRates, LaneRestoreRoundTripsExactly) {
  // Island-consistent checkpoints persist the per-source lanes, not the
  // reduced rates — restore must reproduce the rates bit-exactly.
  auto ctrl = paper_shared_controller(3);
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    RateDelta delta(3);
    delta.record(static_cast<std::uint32_t>(rng.below(3)),
                 rng.uniform(0.0, 1.0));
    ctrl.merge(static_cast<std::uint32_t>(rng.below(3)), delta);
  }

  auto restored = paper_shared_controller(3);
  restored.restore(ctrl.lane_progress(), ctrl.lane_counts());
  const auto a = ctrl.snapshot().rates;
  const auto b = restored.snapshot().rates;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t op = 0; op < a.size(); ++op) EXPECT_EQ(a[op], b[op]);
  EXPECT_EQ(restored.total_applications(), ctrl.total_applications());
}

TEST(SharedRates, RestoreRejectsShapeMismatches) {
  auto ctrl = paper_shared_controller(2);
  EXPECT_THROW(ctrl.restore({{0.0, 0.0, 0.0}}, {{0, 0, 0}}), ConfigError);
}

TEST(RateSnapshotSampling, FollowsTheMergedRates) {
  auto ctrl = paper_shared_controller(1);
  RateDelta delta(3);
  delta.record(0, 1.0);  // op 0 takes nearly everything
  ctrl.merge(0, delta);
  const RateSnapshot snap = ctrl.snapshot();
  Rng rng(7);
  int picked0 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (snap.sample(rng.uniform()) == 0) ++picked0;
  }
  EXPECT_NEAR(picked0 / static_cast<double>(n), snap.rates[0] / 0.9, 0.02);
  EXPECT_EQ(snap.sample(0.0), 0u);
  EXPECT_EQ(snap.sample(0.999999), 2u);
}

TEST(AdaptiveRates, LifetimeApplicationCounts) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 0.1);
  ctrl.record(0, 0.1);
  ctrl.record(2, 0.1);
  ctrl.end_generation();
  ctrl.record(0, 0.1);
  EXPECT_EQ(ctrl.applications(0), 3u);
  EXPECT_EQ(ctrl.applications(1), 0u);
  EXPECT_EQ(ctrl.applications(2), 1u);
}

}  // namespace
}  // namespace ldga::ga
