#include "ga/adaptive.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::ga {
namespace {

AdaptiveRateController paper_mutation_controller() {
  // The paper's setting: three mutation operators, G = 0.9, δ = 0.01.
  return AdaptiveRateController({"snp", "reduction", "augmentation"}, 0.9,
                                0.01);
}

double rate_sum(const AdaptiveRateController& ctrl) {
  double sum = 0.0;
  for (std::uint32_t op = 0; op < ctrl.operator_count(); ++op) {
    sum += ctrl.rate(op);
  }
  return sum;
}

TEST(AdaptiveRates, InitialRatesAreEqualShares) {
  const auto ctrl = paper_mutation_controller();
  for (std::uint32_t op = 0; op < 3; ++op) {
    EXPECT_NEAR(ctrl.rate(op), 0.3, 1e-12);
  }
}

TEST(AdaptiveRates, Validation) {
  EXPECT_THROW(AdaptiveRateController({}, 0.9, 0.01), ConfigError);
  EXPECT_THROW(AdaptiveRateController({"a"}, 0.0, 0.0), ConfigError);
  EXPECT_THROW(AdaptiveRateController({"a"}, 1.5, 0.0), ConfigError);
  EXPECT_THROW(AdaptiveRateController({"a", "b"}, 0.1, 0.06), ConfigError);
  EXPECT_NO_THROW(AdaptiveRateController({"a", "b"}, 0.1, 0.05));
}

TEST(AdaptiveRates, ProfitableOperatorGainsRate) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 0.5);
  ctrl.record(0, 0.3);
  ctrl.record(1, 0.01);
  ctrl.record(2, 0.0);
  ctrl.end_generation();
  EXPECT_GT(ctrl.rate(0), 0.5);
  EXPECT_LT(ctrl.rate(1), 0.1);
  EXPECT_NEAR(ctrl.rate(2), 0.01, 1e-12);  // floor δ
}

TEST(AdaptiveRates, SumInvariantHoldsUnderRandomUse) {
  // The paper's invariant: Σ rate_i == G after every generation.
  auto ctrl = paper_mutation_controller();
  Rng rng(42);
  for (int generation = 0; generation < 200; ++generation) {
    const int applications = static_cast<int>(rng.below(20));
    for (int a = 0; a < applications; ++a) {
      ctrl.record(static_cast<std::uint32_t>(rng.below(3)),
                  rng.uniform(-0.5, 1.0));
    }
    ctrl.end_generation();
    EXPECT_NEAR(rate_sum(ctrl), 0.9, 1e-9) << "generation " << generation;
    for (std::uint32_t op = 0; op < 3; ++op) {
      EXPECT_GE(ctrl.rate(op), 0.01 - 1e-12);
    }
  }
}

TEST(AdaptiveRates, NegativeProgressIsClampedToZero) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, -100.0);
  ctrl.record(1, 0.2);
  ctrl.end_generation();
  EXPECT_NEAR(ctrl.rate(0), 0.01, 1e-12);
  EXPECT_NEAR(ctrl.rate(1), 0.9 - 3 * 0.01 + 0.01, 1e-12);
}

TEST(AdaptiveRates, SilentGenerationKeepsRates) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 1.0);
  ctrl.end_generation();
  const double r0 = ctrl.rate(0);
  // No applications at all.
  ctrl.end_generation();
  EXPECT_DOUBLE_EQ(ctrl.rate(0), r0);
  // Applications but zero progress everywhere.
  ctrl.record(1, 0.0);
  ctrl.record(2, -1.0);
  ctrl.end_generation();
  EXPECT_DOUBLE_EQ(ctrl.rate(0), r0);
}

TEST(AdaptiveRates, ProfitIsMeanNotSumOfProgress) {
  // Operator 0: many low-progress applications; operator 1: one high.
  // Mean progress decides: op 1 must end with the higher rate.
  auto ctrl = AdaptiveRateController({"a", "b"}, 0.8, 0.05);
  for (int i = 0; i < 10; ++i) ctrl.record(0, 0.1);
  ctrl.record(1, 0.5);
  ctrl.end_generation();
  EXPECT_GT(ctrl.rate(1), ctrl.rate(0));
  // profit_a = 0.1/0.6, profit_b = 0.5/0.6; spread = 0.8 - 0.1 = 0.7.
  EXPECT_NEAR(ctrl.rate(0), (0.1 / 0.6) * 0.7 + 0.05, 1e-9);
  EXPECT_NEAR(ctrl.rate(1), (0.5 / 0.6) * 0.7 + 0.05, 1e-9);
}

TEST(AdaptiveRates, FrozenControllerNeverMoves) {
  auto ctrl = paper_mutation_controller();
  ctrl.freeze();
  for (int g = 0; g < 10; ++g) {
    ctrl.record(0, 1.0);
    ctrl.end_generation();
  }
  for (std::uint32_t op = 0; op < 3; ++op) {
    EXPECT_NEAR(ctrl.rate(op), 0.3, 1e-12);
  }
}

TEST(AdaptiveRates, SampleFollowsRates) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 1.0);  // op 0 takes nearly everything
  ctrl.end_generation();
  Rng rng(7);
  int picked0 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (ctrl.sample(rng.uniform()) == 0) ++picked0;
  }
  EXPECT_NEAR(picked0 / static_cast<double>(n), ctrl.rate(0) / 0.9, 0.02);
}

TEST(AdaptiveRates, SampleBoundaryInput) {
  const auto ctrl = paper_mutation_controller();
  EXPECT_EQ(ctrl.sample(0.0), 0u);
  EXPECT_EQ(ctrl.sample(0.999999), 2u);
}

TEST(AdaptiveRates, LifetimeApplicationCounts) {
  auto ctrl = paper_mutation_controller();
  ctrl.record(0, 0.1);
  ctrl.record(0, 0.1);
  ctrl.record(2, 0.1);
  ctrl.end_generation();
  ctrl.record(0, 0.1);
  EXPECT_EQ(ctrl.applications(0), 3u);
  EXPECT_EQ(ctrl.applications(1), 0u);
  EXPECT_EQ(ctrl.applications(2), 1u);
}

}  // namespace
}  // namespace ldga::ga
