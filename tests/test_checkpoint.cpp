#include "ga/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <vector>

#include "ga/engine.hpp"
#include "parallel/message.hpp"
#include "util/error.hpp"

namespace ldga::ga {
namespace {

using genomics::SnpIndex;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ldga_" + name;
}

GaCheckpoint sample_checkpoint() {
  GaCheckpoint cp;
  cp.fingerprint = 0xfeedULL;
  cp.generation = 17;
  cp.evaluations = 4242;
  cp.immigrant_events = 3;
  cp.best_signature = 12.75;
  cp.since_improvement = 5;
  cp.since_immigrants = 2;
  cp.rng_state = {1, 2, 3, 4};
  cp.mutation_rates = {0.5, 0.3, 0.1};
  cp.mutation_applications = {10, 20, 30};
  cp.crossover_rates = {0.6, 0.3};
  cp.crossover_applications = {7, 8};
  for (std::uint32_t s = 0; s < 2; ++s) {
    std::vector<HaplotypeIndividual> sub;
    for (std::uint32_t i = 0; i < 3; ++i) {
      HaplotypeIndividual member{
          std::vector<SnpIndex>{i, static_cast<SnpIndex>(i + s + 1)}};
      member.set_fitness(1.5 * i + s);
      sub.push_back(std::move(member));
    }
    cp.members.push_back(std::move(sub));
  }
  return cp;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {(std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  const std::string path = temp_path("roundtrip.ckpt");
  const GaCheckpoint original = sample_checkpoint();
  save_checkpoint(path, original);
  ASSERT_TRUE(checkpoint_exists(path));

  const GaCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.fingerprint, original.fingerprint);
  EXPECT_EQ(loaded.generation, original.generation);
  EXPECT_EQ(loaded.evaluations, original.evaluations);
  EXPECT_EQ(loaded.immigrant_events, original.immigrant_events);
  EXPECT_DOUBLE_EQ(loaded.best_signature, original.best_signature);
  EXPECT_EQ(loaded.since_improvement, original.since_improvement);
  EXPECT_EQ(loaded.since_immigrants, original.since_immigrants);
  EXPECT_EQ(loaded.rng_state, original.rng_state);
  EXPECT_EQ(loaded.mutation_rates, original.mutation_rates);
  EXPECT_EQ(loaded.mutation_applications, original.mutation_applications);
  EXPECT_EQ(loaded.crossover_rates, original.crossover_rates);
  EXPECT_EQ(loaded.crossover_applications, original.crossover_applications);
  ASSERT_EQ(loaded.members.size(), original.members.size());
  for (std::size_t s = 0; s < original.members.size(); ++s) {
    ASSERT_EQ(loaded.members[s].size(), original.members[s].size());
    for (std::size_t i = 0; i < original.members[s].size(); ++i) {
      EXPECT_TRUE(loaded.members[s][i].same_snps(original.members[s][i]));
      EXPECT_DOUBLE_EQ(loaded.members[s][i].fitness(),
                       original.members[s][i].fitness());
    }
  }
}

TEST(Checkpoint, OverwriteKeepsLatestSnapshot) {
  const std::string path = temp_path("overwrite.ckpt");
  GaCheckpoint cp = sample_checkpoint();
  save_checkpoint(path, cp);
  cp.generation = 99;
  save_checkpoint(path, cp);
  EXPECT_EQ(load_checkpoint(path).generation, 99u);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_FALSE(checkpoint_exists(temp_path("nope.ckpt")));
  EXPECT_THROW(load_checkpoint(temp_path("nope.ckpt")), CheckpointError);
}

TEST(Checkpoint, WrongMagicIsRejected) {
  const std::string path = temp_path("magic.ckpt");
  save_checkpoint(path, sample_checkpoint());
  auto bytes = read_bytes(path);
  bytes[0] ^= 0xff;
  write_bytes(path, bytes);
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
}

TEST(Checkpoint, UnsupportedVersionIsRejected) {
  const std::string path = temp_path("version.ckpt");
  // A well-formed prefix with a future format version.
  parallel::Packer packer;
  packer.pack(std::uint64_t{0x4c444741434b5031ULL});  // the magic word
  packer.pack(std::uint32_t{GaCheckpoint::kVersion + 1});
  write_bytes(path, std::move(packer).take());
  try {
    load_checkpoint(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("not supported"),
              std::string::npos);
  }
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  const std::string path = temp_path("truncated.ckpt");
  save_checkpoint(path, sample_checkpoint());
  auto bytes = read_bytes(path);
  bytes.resize(bytes.size() / 2);
  write_bytes(path, bytes);
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
}

TEST(Checkpoint, TruncationIsCaughtByTheChecksumFirst) {
  // Chop a handful of bytes off the tail — the kind of partial image a
  // crash mid-write leaves behind. The CRC-32 trailer must reject it
  // before any field is interpreted.
  const std::string path = temp_path("crash_truncated.ckpt");
  save_checkpoint(path, sample_checkpoint());
  auto bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 7u);
  // Shrink-only (resize's grow path trips GCC 12 -Wstringop-overflow
  // under the sanitizer presets).
  for (int i = 0; i < 7; ++i) bytes.pop_back();
  write_bytes(path, bytes);
  try {
    load_checkpoint(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos);
  }
}

TEST(Checkpoint, EveryFlippedBitIsDetected) {
  // Flip one bit at a sample of offsets across the image (header,
  // middle, trailer): the load must never deliver silently-corrupt GA
  // state.
  const std::string path = temp_path("bitflip.ckpt");
  save_checkpoint(path, sample_checkpoint());
  const auto clean = read_bytes(path);
  for (std::size_t offset = 0; offset < clean.size();
       offset += clean.size() / 17 + 1) {
    auto bytes = clean;
    bytes[offset] ^= 0x40u;
    write_bytes(path, bytes);
    EXPECT_THROW(load_checkpoint(path), CheckpointError)
        << "flip at offset " << offset;
  }
}

TEST(Checkpoint, TinyFileIsRejectedNotMisread) {
  const std::string path = temp_path("tiny.ckpt");
  write_bytes(path, {0x01, 0x02});  // shorter than the CRC trailer
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
}

TEST(Checkpoint, SaveLeavesNoTempFileBehind) {
  // The crash-safe write goes through path.tmp + atomic rename; after a
  // successful save only the final name may exist.
  const std::string path = temp_path("atomic.ckpt");
  save_checkpoint(path, sample_checkpoint());
  EXPECT_TRUE(checkpoint_exists(path));
  EXPECT_FALSE(checkpoint_exists(path + ".tmp"));
}

TEST(Checkpoint, FailedOverwriteKeepsThePreviousSnapshotIntact) {
  // Rename is atomic: a reader must always see either the old complete
  // snapshot or the new complete snapshot, never a mixture. Simulate
  // the "old snapshot present" half by loading after a plain overwrite.
  const std::string path = temp_path("previous.ckpt");
  GaCheckpoint cp = sample_checkpoint();
  cp.generation = 7;
  save_checkpoint(path, cp);
  cp.generation = 8;
  save_checkpoint(path, cp);
  EXPECT_EQ(load_checkpoint(path).generation, 8u);
  EXPECT_FALSE(checkpoint_exists(path + ".tmp"));
}

TEST(Checkpoint, TrailingGarbageIsRejected) {
  const std::string path = temp_path("trailing.ckpt");
  save_checkpoint(path, sample_checkpoint());
  auto bytes = read_bytes(path);
  bytes.push_back(0xab);
  write_bytes(path, bytes);
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
}

TEST(Checkpoint, PolicyValidation) {
  CheckpointPolicy policy;
  EXPECT_FALSE(policy.enabled());
  EXPECT_NO_THROW(policy.validate());

  policy.path = temp_path("policy.ckpt");
  policy.every = 0;
  EXPECT_THROW(policy.validate(), ConfigError);

  policy.every = 5;
  EXPECT_NO_THROW(policy.validate());

  policy.path.clear();
  policy.resume = true;  // resume without a path is meaningless
  EXPECT_THROW(policy.validate(), ConfigError);
}

TEST(Checkpoint, FingerprintSeparatesTrajectoryShapingSettings) {
  GaConfig config;
  const std::uint64_t base = checkpoint_fingerprint(config, 100);

  EXPECT_EQ(checkpoint_fingerprint(config, 100), base);
  EXPECT_NE(checkpoint_fingerprint(config, 101), base);

  GaConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  EXPECT_NE(checkpoint_fingerprint(reseeded, 100), base);

  GaConfig resized = config;
  resized.population_size += 10;
  EXPECT_NE(checkpoint_fingerprint(resized, 100), base);

  GaConfig rescheme = config;
  rescheme.schemes.random_immigrants = false;
  EXPECT_NE(checkpoint_fingerprint(rescheme, 100), base);

  // Run-length budgets are deliberately not part of the fingerprint:
  // resuming with a larger budget is the normal use of a checkpoint.
  GaConfig longer = config;
  longer.max_generations += 500;
  longer.max_evaluations = 123456;
  EXPECT_EQ(checkpoint_fingerprint(longer, 100), base);

  // Execution-backend choice lives outside GaConfig entirely (the
  // engine takes an EvaluationBackend), so the trajectory — and hence
  // the fingerprint — is backend-independent by construction.
}

IslandCheckpoint sample_island_checkpoint() {
  IslandCheckpoint cp;
  cp.fingerprint = 0xbeefULL;
  cp.total_steps = 640;
  cp.evaluations = 512;
  cp.last_improvement_step = 600;
  cp.immigrant_events = 2;
  cp.mutation_lane_progress = {{0.5, 0.25, 0.0}, {1.0, 0.0, 0.125}};
  cp.mutation_lane_counts = {{4, 2, 0}, {8, 0, 1}};
  cp.crossover_lane_progress = {{0.75, 0.5}, {0.0, 0.25}};
  cp.crossover_lane_counts = {{3, 2}, {0, 1}};
  for (std::uint32_t s = 0; s < 2; ++s) {
    IslandCheckpoint::IslandState island;
    island.steps = 300 + s;
    island.immigrant_mark = 200 + s;
    island.rng_state = {s + 1, s + 2, s + 3, s + 4};
    for (std::uint32_t i = 0; i < 3; ++i) {
      HaplotypeIndividual member{
          std::vector<SnpIndex>{i, static_cast<SnpIndex>(i + s + 1)}};
      member.set_fitness(0.5 * i + s);
      island.members.push_back(std::move(member));
    }
    cp.islands.push_back(std::move(island));
  }
  return cp;
}

TEST(IslandCheckpoint, RoundTripPreservesEveryField) {
  const std::string path = temp_path("island_roundtrip.ckpt");
  const IslandCheckpoint original = sample_island_checkpoint();
  save_island_checkpoint(path, original);
  ASSERT_TRUE(checkpoint_exists(path));

  const IslandCheckpoint loaded = load_island_checkpoint(path);
  EXPECT_EQ(loaded.fingerprint, original.fingerprint);
  EXPECT_EQ(loaded.total_steps, original.total_steps);
  EXPECT_EQ(loaded.evaluations, original.evaluations);
  EXPECT_EQ(loaded.last_improvement_step, original.last_improvement_step);
  EXPECT_EQ(loaded.immigrant_events, original.immigrant_events);
  EXPECT_EQ(loaded.mutation_lane_progress, original.mutation_lane_progress);
  EXPECT_EQ(loaded.mutation_lane_counts, original.mutation_lane_counts);
  EXPECT_EQ(loaded.crossover_lane_progress,
            original.crossover_lane_progress);
  EXPECT_EQ(loaded.crossover_lane_counts, original.crossover_lane_counts);
  ASSERT_EQ(loaded.islands.size(), original.islands.size());
  for (std::size_t s = 0; s < original.islands.size(); ++s) {
    const auto& a = loaded.islands[s];
    const auto& b = original.islands[s];
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.immigrant_mark, b.immigrant_mark);
    EXPECT_EQ(a.rng_state, b.rng_state);
    ASSERT_EQ(a.members.size(), b.members.size());
    for (std::size_t i = 0; i < b.members.size(); ++i) {
      EXPECT_TRUE(a.members[i].same_snps(b.members[i]));
      EXPECT_DOUBLE_EQ(a.members[i].fitness(), b.members[i].fitness());
    }
  }
}

TEST(IslandCheckpoint, TheTwoFormatsCannotBeConfused) {
  // Distinct magic words: a sync loader refuses an island snapshot and
  // vice versa, instead of misreading fields.
  const std::string sync_path = temp_path("confusion_sync.ckpt");
  const std::string island_path = temp_path("confusion_island.ckpt");
  save_checkpoint(sync_path, sample_checkpoint());
  save_island_checkpoint(island_path, sample_island_checkpoint());
  EXPECT_THROW(load_island_checkpoint(sync_path), CheckpointError);
  EXPECT_THROW(load_checkpoint(island_path), CheckpointError);
}

TEST(IslandCheckpoint, CorruptionAndTruncationAreRejected) {
  const std::string path = temp_path("island_corrupt.ckpt");
  save_island_checkpoint(path, sample_island_checkpoint());
  auto bytes = read_bytes(path);
  bytes[bytes.size() / 2] ^= 0x10u;
  write_bytes(path, bytes);
  EXPECT_THROW(load_island_checkpoint(path), CheckpointError);

  save_island_checkpoint(path, sample_island_checkpoint());
  bytes = read_bytes(path);
  for (int i = 0; i < 5; ++i) bytes.pop_back();
  write_bytes(path, bytes);
  EXPECT_THROW(load_island_checkpoint(path), CheckpointError);

  EXPECT_THROW(load_island_checkpoint(temp_path("island_nope.ckpt")),
               CheckpointError);
}

TEST(IslandCheckpoint, OverwriteKeepsLatestSnapshot) {
  const std::string path = temp_path("island_overwrite.ckpt");
  IslandCheckpoint cp = sample_island_checkpoint();
  save_island_checkpoint(path, cp);
  cp.total_steps = 999;
  save_island_checkpoint(path, cp);
  EXPECT_EQ(load_island_checkpoint(path).total_steps, 999u);
  EXPECT_FALSE(checkpoint_exists(path + ".tmp"));
}

}  // namespace
}  // namespace ldga::ga
