// Chaos acceptance for the socket transport (ISSUE 6): a GA run whose
// evaluation farm lives in forked worker processes, under injected
// kills, disconnects, corrupt frames, dropped replies, throws, delays,
// and stale duplicates, must walk the exact trajectory of the serial
// reference — fault tolerance may cost time, never correctness.
//
// Set LDGA_CHAOS_SOAK=1 (scripts/check.sh --transport=socket, CI chaos
// job) to repeat the runs across several injector seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "ga/engine.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/farm_policy.hpp"
#include "parallel/master_slave.hpp"
#include "parallel/socket_transport.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"

namespace ldga {
namespace {

using parallel::FaultInjector;
using parallel::MasterSlaveFarm;
using parallel::SocketTransportConfig;

int soak_repetitions() {
  const char* soak = std::getenv("LDGA_CHAOS_SOAK");
  return (soak != nullptr && soak[0] != '\0' && soak[0] != '0') ? 3 : 1;
}

/// The full menu of transport faults on deterministic schedules, plus
/// probabilistic throws and delays, every generation.
FaultInjector::Config chaos_faults(std::uint64_t seed) {
  FaultInjector::Config faults;
  faults.seed = seed;
  faults.throw_probability = 0.1;
  faults.delay_probability = 0.05;
  faults.stale_on_tasks = {0};
  faults.kill_on_tasks = {1};
  faults.disconnect_on_tasks = {2};
  faults.corrupt_on_tasks = {3};
  faults.drop_on_tasks = {5};
  return faults;
}

/// Policy with every recovery mechanism armed: retries, quarantine with
/// respawn, per-task deadlines (the only way a dropped reply resolves),
/// and fast respawn backoff so the test stays quick.
parallel::FarmPolicy chaos_policy() {
  parallel::FarmPolicy policy;
  policy.max_task_retries = 8;
  policy.quarantine_after = 3;
  policy.respawn_quarantined = true;
  policy.task_deadline = std::chrono::milliseconds(250);
  policy.respawn_backoff = std::chrono::milliseconds(5);
  policy.respawn_backoff_cap = std::chrono::milliseconds(100);
  return policy;
}

class ChaosFamily
    : public ::testing::TestWithParam<SocketTransportConfig::Family> {};

TEST_P(ChaosFamily, FarmOverSocketsUnderChaosMatchesPlainResults) {
  // Transport-level sanity before the full GA: a plain numeric farm over
  // forked workers, with every fault kind injected, still returns the
  // exact task-ordered results.
  for (int rep = 0; rep < soak_repetitions(); ++rep) {
    auto injector =
        std::make_shared<FaultInjector>(chaos_faults(1000 + static_cast<std::uint64_t>(rep)));
    SocketTransportConfig socket;
    socket.family = GetParam();
    socket.heartbeat_interval = std::chrono::milliseconds(50);
    MasterSlaveFarm<double, double> farm(
        3, [](const double& x) { return x * x + 0.25; }, chaos_policy(),
        injector, parallel::socket_transport_factory(socket));
    for (int phase = 0; phase < 3; ++phase) {
      std::vector<double> tasks(12);
      std::iota(tasks.begin(), tasks.end(), static_cast<double>(phase));
      const auto results = farm.run(tasks);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_DOUBLE_EQ(results[i], tasks[i] * tasks[i] + 0.25)
            << "rep " << rep << " phase " << phase << " task " << i;
      }
    }
    // Every scheduled transport fault must actually have fired.
    EXPECT_GT(injector->injected_kills(), 0u);
    EXPECT_GT(injector->injected_disconnects(), 0u);
    EXPECT_GT(injector->injected_corrupts(), 0u);
    EXPECT_GT(injector->injected_drops(), 0u);
    const auto& stats = farm.stats();
    EXPECT_GT(stats.worker_losses, 0u);
    EXPECT_GT(stats.corrupt_frames, 0u);
    EXPECT_GT(stats.respawns, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ChaosFamily,
                         ::testing::Values(
                             SocketTransportConfig::Family::kUnix,
                             SocketTransportConfig::Family::kTcp));

TEST(TransportChaos, GaOverSocketFarmUnderChaosIsBitIdenticalToSerial) {
  // The Table-2-style acceptance run: 10 GA generations with the
  // evaluation farm in forked processes over Unix sockets, chaos
  // injected throughout. Results must be bit-identical to the serial
  // in-process reference — same best-per-size haplotypes, same
  // fitnesses, same generation count.
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 321);

  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 4;
  config.population_size = 30;
  config.min_subpopulation = 5;
  config.crossovers_per_generation = 6;
  config.mutations_per_generation = 10;
  config.stagnation_generations = 15;
  config.random_immigrant_stagnation = 6;
  config.max_generations = 10;
  config.seed = 5;

  const stats::HaplotypeEvaluator serial_eval(synthetic.dataset);
  const ga::GaResult rs = ga::GaEngine(serial_eval, config).run();

  for (int rep = 0; rep < soak_repetitions(); ++rep) {
    auto injector =
        std::make_shared<FaultInjector>(chaos_faults(2004 + static_cast<std::uint64_t>(rep)));

    stats::BackendOptions options;
    options.workers = 3;
    options.farm_policy = chaos_policy();
    options.fault_injector = injector;
    options.transport = stats::FarmTransport::kSocket;
    options.socket.heartbeat_interval = std::chrono::milliseconds(50);

    const stats::HaplotypeEvaluator farm_eval(synthetic.dataset);
    ga::GaEngine chaotic(farm_eval, config,
                         stats::make_farm_backend(farm_eval, options));
    const ga::GaResult rf = chaotic.run();

    ASSERT_EQ(rf.best_by_size.size(), rs.best_by_size.size());
    for (std::size_t i = 0; i < rs.best_by_size.size(); ++i) {
      EXPECT_TRUE(rf.best_by_size[i].same_snps(rs.best_by_size[i]))
          << "rep " << rep << " size slot " << i;
      EXPECT_DOUBLE_EQ(rf.best_by_size[i].fitness(),
                       rs.best_by_size[i].fitness())
          << "rep " << rep << " size slot " << i;
    }
    EXPECT_EQ(rf.generations, rs.generations);

    // The run was genuinely chaotic, not a quiet pass.
    EXPECT_GT(injector->injected_kills(), 0u);
    EXPECT_GT(injector->injected_corrupts(), 0u);
    EXPECT_GT(rf.farm_stats.worker_losses, 0u);
    EXPECT_GT(rf.farm_stats.respawns, 0u);
    EXPECT_GT(rf.farm_stats.retries, 0u);
  }
}

}  // namespace
}  // namespace ldga
