#include "ga/telemetry_writer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "test_support.hpp"

namespace ldga::ga {
namespace {

GenerationInfo sample_info(std::uint32_t generation) {
  GenerationInfo info;
  info.generation = generation;
  info.best_by_size = {1.5, 2.5};
  info.rates.mutation = {0.5, 0.2, 0.2};
  info.rates.crossover = {0.6, 0.3};
  info.evaluations = 100 * generation;
  info.immigrants_triggered = generation % 2 == 0;
  info.cache_hits = 10 * generation;
  info.cache_misses = generation;
  info.cache_evictions = 0;
  info.stage_timings.pattern_build_seconds = 0.125;
  info.stage_timings.em_seconds = 0.25;
  info.stage_timings.clump_seconds = 0.5;
  info.gen_cache_hits = 9;
  info.gen_cache_misses = 3;
  info.gen_pattern_entry_reuses = 8;
  info.gen_pattern_entry_builds = 8;
  info.gen_warm_starts = 4;
  info.gen_warm_fallbacks = 0;
  info.mc_replicates_run = 100 * generation;
  info.mc_replicates_saved = 50 * generation;
  info.em_batch_runs = 2 * generation;
  info.em_batch_lanes = 12 * generation;
  info.gen_em_batch_runs = 2;
  info.gen_em_batch_lanes = 12;
  info.mc_batched_replicates = 100 * generation;
  return info;
}

TEST(TelemetryWriter, HeaderMatchesShape) {
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  writer.record(sample_info(1));
  const std::string text = out.str();
  EXPECT_NE(text.find("generation,best_size_0,best_size_1,"
                      "mutation_rate_0,mutation_rate_1,mutation_rate_2,"
                      "crossover_rate_0,crossover_rate_1,"
                      "evaluations,immigrants,"
                      "cache_hits,cache_misses,cache_evictions,"
                      "pattern_build_seconds,em_seconds,clump_seconds,"
                      "cache_hit_ratio,pattern_entry_reuses,pattern_entry_builds,"
                      "pattern_entry_reuse_ratio,warm_starts,warm_fallbacks,"
                      "warm_hit_ratio,mc_replicates_run,"
                      "mc_replicates_saved,em_batch_runs,em_batch_lanes,"
                      "em_batch_mean_lanes,mc_batched_replicates"),
            std::string::npos);
}

TEST(TelemetryWriter, OneRowPerRecord) {
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  for (std::uint32_t g = 1; g <= 5; ++g) writer.record(sample_info(g));
  EXPECT_EQ(writer.rows_written(), 5u);
  // header + 5 rows
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(TelemetryWriter, RowValuesRoundTrip) {
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  writer.record(sample_info(3));
  const std::string text = out.str();
  EXPECT_NE(
      text.find("3,1.5,2.5,0.5,0.2,0.2,0.6,0.3,300,0,30,3,0,0.125,0.25,0.5,"
                "0.75,8,8,0.5,4,0,1,300,150,6,36,6,300"),
      std::string::npos);
  writer.record(sample_info(4));
  EXPECT_NE(out.str().find(
                "4,1.5,2.5,0.5,0.2,0.2,0.6,0.3,400,1,40,4,0,0.125,0.25,0.5,"
                "0.75,8,8,0.5,4,0,1,400,200,8,48,6,400"),
            std::string::npos);
}

TEST(TelemetryWriter, ZeroTrafficRatiosAreZeroNotNan) {
  // A generation with no incremental traffic (all gen_* counters zero,
  // e.g. the pattern cache is disabled) must report 0 ratios, never
  // NaN from a 0/0 division.
  auto info = sample_info(2);
  info.gen_cache_hits = 0;
  info.gen_cache_misses = 0;
  info.gen_pattern_entry_reuses = 0;
  info.gen_pattern_entry_builds = 0;
  info.gen_warm_starts = 0;
  info.gen_warm_fallbacks = 0;
  info.mc_replicates_run = 0;
  info.mc_replicates_saved = 0;
  info.em_batch_runs = 0;
  info.em_batch_lanes = 0;
  info.gen_em_batch_runs = 0;
  info.gen_em_batch_lanes = 0;
  info.mc_batched_replicates = 0;
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  writer.record(info);
  EXPECT_NE(out.str().find("0.125,0.25,0.5,0,0,0,0,0,0,0,0,0,0,0,0,0\n"),
            std::string::npos);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

TEST(TelemetryWriter, IntegratesWithEngine) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 31337);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  GaConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.population_size = 16;
  config.min_subpopulation = 6;
  config.crossovers_per_generation = 3;
  config.mutations_per_generation = 6;
  config.stagnation_generations = 8;
  config.max_generations = 20;
  config.seed = 2;
  GaEngine engine(evaluator, config);
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  engine.set_generation_callback(writer.callback());
  const GaResult result = engine.run();
  EXPECT_EQ(writer.rows_written(), result.generations);
}

IslandEvent sample_event(IslandEvent::Kind kind) {
  IslandEvent event;
  event.kind = kind;
  event.island = 1;
  event.haplotype_size = 3;
  event.step = 42;
  event.wall_seconds = 0.5;
  event.best_fitness = 2.5;
  event.worst_fitness = 0.25;
  event.in_flight = 4;
  event.rate_version = 7;
  event.evaluations = 120;
  return event;
}

TEST(IslandEventWriter, HeaderAndRowsRoundTrip) {
  std::ostringstream out;
  IslandEventCsvWriter writer(out);
  writer.record(sample_event(IslandEvent::Kind::kImprovement));
  writer.record(sample_event(IslandEvent::Kind::kMigrationOut));
  EXPECT_EQ(writer.rows_written(), 2u);

  const std::string text = out.str();
  EXPECT_NE(text.find("wall_seconds,event,island,haplotype_size,step,"
                      "best_fitness,worst_fitness,in_flight,rate_version,"
                      "evaluations"),
            std::string::npos);
  EXPECT_NE(text.find("0.5,improvement,1,3,42,2.5,0.25,4,7,120"),
            std::string::npos);
  EXPECT_NE(text.find("0.5,migration_out,1,3,42,2.5,0.25,4,7,120"),
            std::string::npos);
  // header + 2 rows
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(IslandEventWriter, EveryKindHasAStableName) {
  using Kind = IslandEvent::Kind;
  for (const Kind kind :
       {Kind::kInitialized, Kind::kImprovement, Kind::kMigrationOut,
        Kind::kMigrationIn, Kind::kImmigrants, Kind::kCheckpoint}) {
    EXPECT_STRNE(to_string(kind), "unknown");
  }
  std::ostringstream out;
  IslandEventCsvWriter writer(out);
  writer.record(sample_event(Kind::kCheckpoint));
  EXPECT_NE(out.str().find(",checkpoint,"), std::string::npos);
}

}  // namespace
}  // namespace ldga::ga
