#include "ga/telemetry_writer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "test_support.hpp"

namespace ldga::ga {
namespace {

GenerationInfo sample_info(std::uint32_t generation) {
  GenerationInfo info;
  info.generation = generation;
  info.best_by_size = {1.5, 2.5};
  info.rates.mutation = {0.5, 0.2, 0.2};
  info.rates.crossover = {0.6, 0.3};
  info.evaluations = 100 * generation;
  info.immigrants_triggered = generation % 2 == 0;
  info.cache_hits = 10 * generation;
  info.cache_misses = generation;
  info.cache_evictions = 0;
  info.stage_timings.pattern_build_seconds = 0.125;
  info.stage_timings.em_seconds = 0.25;
  info.stage_timings.clump_seconds = 0.5;
  return info;
}

TEST(TelemetryWriter, HeaderMatchesShape) {
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  writer.record(sample_info(1));
  const std::string text = out.str();
  EXPECT_NE(text.find("generation,best_size_0,best_size_1,"
                      "mutation_rate_0,mutation_rate_1,mutation_rate_2,"
                      "crossover_rate_0,crossover_rate_1,"
                      "evaluations,immigrants,"
                      "cache_hits,cache_misses,cache_evictions,"
                      "pattern_build_seconds,em_seconds,clump_seconds"),
            std::string::npos);
}

TEST(TelemetryWriter, OneRowPerRecord) {
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  for (std::uint32_t g = 1; g <= 5; ++g) writer.record(sample_info(g));
  EXPECT_EQ(writer.rows_written(), 5u);
  // header + 5 rows
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(TelemetryWriter, RowValuesRoundTrip) {
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  writer.record(sample_info(3));
  const std::string text = out.str();
  EXPECT_NE(
      text.find("3,1.5,2.5,0.5,0.2,0.2,0.6,0.3,300,0,30,3,0,0.125,0.25,0.5"),
      std::string::npos);
  writer.record(sample_info(4));
  EXPECT_NE(out.str().find(
                "4,1.5,2.5,0.5,0.2,0.2,0.6,0.3,400,1,40,4,0,0.125,0.25,0.5"),
            std::string::npos);
}

TEST(TelemetryWriter, IntegratesWithEngine) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 31337);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  GaConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.population_size = 16;
  config.min_subpopulation = 6;
  config.crossovers_per_generation = 3;
  config.mutations_per_generation = 6;
  config.stagnation_generations = 8;
  config.max_generations = 20;
  config.seed = 2;
  GaEngine engine(evaluator, config);
  std::ostringstream out;
  TelemetryCsvWriter writer(out);
  engine.set_generation_callback(writer.callback());
  const GaResult result = engine.run();
  EXPECT_EQ(writer.rows_written(), result.generations);
}

}  // namespace
}  // namespace ldga::ga
