#include "analysis/greedy_constructive.hpp"

#include <gtest/gtest.h>

#include "analysis/enumeration.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::analysis {
namespace {

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const auto synthetic = ldga::testing::small_synthetic(10, 2, 47);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  return evaluator;
}

TEST(Greedy, ConfigValidation) {
  GreedyConfig config;
  config.min_size = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.beam_width = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Greedy, ProducesOneBestPerSize) {
  GreedyConfig config;
  config.min_size = 2;
  config.max_size = 4;
  const ga::FeasibilityFilter filter;
  const auto result = greedy_construct(shared_evaluator(), config, filter);
  ASSERT_EQ(result.best_by_size.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.best_by_size[i].size(), 2u + i);
    EXPECT_TRUE(result.best_by_size[i].evaluated());
  }
  EXPECT_GT(result.evaluations, 0u);
}

TEST(Greedy, SeedLevelIsTheExactOptimum) {
  GreedyConfig config;
  config.min_size = 2;
  config.max_size = 3;
  const ga::FeasibilityFilter filter;
  const auto result = greedy_construct(shared_evaluator(), config, filter);
  const auto exact = enumerate_all(shared_evaluator(), 2);
  EXPECT_EQ(result.best_by_size[0].snps(), exact.best.front().snps);
  EXPECT_NEAR(result.best_by_size[0].fitness(), exact.best.front().fitness,
              1e-9);
}

TEST(Greedy, ChildrenExtendBeamMembers) {
  GreedyConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.beam_width = 2;
  const ga::FeasibilityFilter filter;
  const auto result = greedy_construct(shared_evaluator(), config, filter);
  // The size-3 winner must contain a size-2 beam member as a subset —
  // that is the defining property (and weakness) of construction.
  const auto exact2 = enumerate_all(shared_evaluator(), 2,
                                    EnumerationConfig{2, 50'000'000, 0});
  const auto& winner = result.best_by_size[1].snps();
  bool extends_beam = false;
  for (const auto& seed : exact2.best) {
    const bool contained = std::includes(winner.begin(), winner.end(),
                                         seed.snps.begin(),
                                         seed.snps.end());
    extends_beam |= contained;
  }
  EXPECT_TRUE(extends_beam);
}

TEST(Greedy, WiderBeamNeverDoesWorse) {
  const ga::FeasibilityFilter filter;
  GreedyConfig narrow;
  narrow.min_size = 2;
  narrow.max_size = 4;
  narrow.beam_width = 1;
  GreedyConfig wide = narrow;
  wide.beam_width = 8;
  const auto narrow_result =
      greedy_construct(shared_evaluator(), narrow, filter);
  const auto wide_result = greedy_construct(shared_evaluator(), wide, filter);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_GE(wide_result.best_by_size[i].fitness(),
              narrow_result.best_by_size[i].fitness() - 1e-9);
  }
}

TEST(Greedy, CanMissTheTrueOptimum) {
  // The §3 argument. This is probabilistic over landscapes; we only
  // assert greedy <= exact (trivially true) and record whether a gap
  // exists; the bench demonstrates the gap at paper scale.
  GreedyConfig config;
  config.min_size = 2;
  config.max_size = 4;
  const ga::FeasibilityFilter filter;
  const auto greedy = greedy_construct(shared_evaluator(), config, filter);
  const auto exact = enumerate_all(shared_evaluator(), 4);
  EXPECT_LE(greedy.best_by_size[2].fitness(),
            exact.best.front().fitness + 1e-9);
}

}  // namespace
}  // namespace ldga::analysis
