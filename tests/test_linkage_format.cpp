#include "genomics/linkage_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::genomics {
namespace {

TEST(LinkageFormat, ParsesMinimalPair) {
  std::istringstream map(
      "1 rs1 0 1000\n"
      "1 rs2 0 25000\n");
  std::istringstream ped(
      "fam1 ind1 0 0 1 2 1 1 1 2\n"
      "fam2 ind2 0 0 2 1 2 2 0 0\n"
      "fam3 ind3 0 0 0 0 1 2 2 2\n");
  const Dataset dataset = read_linkage(ped, map);
  EXPECT_EQ(dataset.snp_count(), 2u);
  EXPECT_EQ(dataset.individual_count(), 3u);
  EXPECT_EQ(dataset.panel().name(0), "rs1");
  EXPECT_DOUBLE_EQ(dataset.panel().position_kb(0), 1.0);
  EXPECT_DOUBLE_EQ(dataset.panel().position_kb(1), 25.0);

  EXPECT_EQ(dataset.status(0), Status::Affected);
  EXPECT_EQ(dataset.status(1), Status::Unaffected);
  EXPECT_EQ(dataset.status(2), Status::Unknown);

  EXPECT_EQ(dataset.genotypes().at(0, 0), Genotype::HomOne);
  EXPECT_EQ(dataset.genotypes().at(0, 1), Genotype::Het);
  EXPECT_EQ(dataset.genotypes().at(1, 0), Genotype::HomTwo);
  EXPECT_EQ(dataset.genotypes().at(1, 1), Genotype::Missing);
  EXPECT_EQ(dataset.genotypes().at(2, 1), Genotype::HomTwo);
}

TEST(LinkageFormat, AcceptsMinusNinePhenotype) {
  std::istringstream map("1 rs1 0 100\n");
  std::istringstream ped("f i 0 0 1 -9 1 1\n");
  EXPECT_EQ(read_linkage(ped, map).status(0), Status::Unknown);
}

TEST(LinkageFormat, SortsMarkersByPosition) {
  std::istringstream map(
      "1 late 0 90000\n"
      "1 early 0 1000\n");
  std::istringstream ped("f i 0 0 1 2 2 2 1 1\n");
  const Dataset dataset = read_linkage(ped, map);
  EXPECT_EQ(dataset.panel().name(0), "early");
  EXPECT_EQ(dataset.panel().name(1), "late");
  // Genotype columns must follow the markers: 'late' was 2 2.
  EXPECT_EQ(dataset.genotypes().at(0, 1), Genotype::HomTwo);
  EXPECT_EQ(dataset.genotypes().at(0, 0), Genotype::HomOne);
}

TEST(LinkageFormat, RoundTripsASyntheticCohort) {
  const auto synthetic = ldga::testing::small_synthetic(9, 2, 2222);
  std::stringstream ped, map;
  write_linkage(ped, map, synthetic.dataset);
  const Dataset reloaded = read_linkage(ped, map);
  ASSERT_EQ(reloaded.snp_count(), synthetic.dataset.snp_count());
  ASSERT_EQ(reloaded.individual_count(),
            synthetic.dataset.individual_count());
  for (std::uint32_t i = 0; i < reloaded.individual_count(); ++i) {
    EXPECT_EQ(reloaded.status(i), synthetic.dataset.status(i));
    for (SnpIndex s = 0; s < reloaded.snp_count(); ++s) {
      EXPECT_EQ(reloaded.genotypes().at(i, s),
                synthetic.dataset.genotypes().at(i, s));
    }
  }
}

TEST(LinkageFormat, RejectsMalformedInput) {
  {
    std::istringstream map("1 rs1 0\n");  // 3 columns
    std::istringstream ped("f i 0 0 1 2 1 1\n");
    EXPECT_THROW(read_linkage(ped, map), DataError);
  }
  {
    std::istringstream map("1 rs1 0 100\n");
    std::istringstream ped("f i 0 0 1 2 1\n");  // odd allele column
    EXPECT_THROW(read_linkage(ped, map), DataError);
  }
  {
    std::istringstream map("1 rs1 0 100\n");
    std::istringstream ped("f i 0 0 1 7 1 1\n");  // bad phenotype
    EXPECT_THROW(read_linkage(ped, map), DataError);
  }
  {
    std::istringstream map("1 rs1 0 100\n");
    std::istringstream ped("f i 0 0 1 2 3 1\n");  // bad allele
    EXPECT_THROW(read_linkage(ped, map), DataError);
  }
  {
    std::istringstream map("");
    std::istringstream ped("f i 0 0 1 2 1 1\n");
    EXPECT_THROW(read_linkage(ped, map), DataError);
  }
  {
    std::istringstream map("1 rs1 0 100\n");
    std::istringstream ped("");
    EXPECT_THROW(read_linkage(ped, map), DataError);
  }
}

TEST(LinkageFormat, MissingFilesThrow) {
  EXPECT_THROW(load_linkage("/no/such.ped", "/no/such.map"), DataError);
}

TEST(LinkageFormat, HalfMissingGenotypeIsMissing) {
  std::istringstream map("1 rs1 0 100\n");
  std::istringstream ped("f i 0 0 1 2 1 0\n");
  EXPECT_EQ(read_linkage(ped, map).genotypes().at(0, 0),
            Genotype::Missing);
}

}  // namespace
}  // namespace ldga::genomics
