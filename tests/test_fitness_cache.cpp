#include "stats/fitness_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

std::vector<SnpIndex> key(std::initializer_list<SnpIndex> snps) {
  return snps;
}

TEST(FitnessCache, FindAfterInsertAndMissBefore) {
  FitnessCache cache(64, 4);
  EXPECT_FALSE(cache.find(key({1, 2, 3})).has_value());
  cache.insert(key({1, 2, 3}), 7.5);
  const auto hit = cache.find(key({1, 2, 3}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 7.5);
  // A different key with shared prefix stays distinct.
  EXPECT_FALSE(cache.find(key({1, 2})).has_value());
  EXPECT_FALSE(cache.find(key({1, 2, 4})).has_value());
}

TEST(FitnessCache, InsertUpdatesInPlace) {
  FitnessCache cache(8, 1);
  cache.insert(key({5}), 1.0);
  cache.insert(key({5}), 2.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.find(key({5})), 2.0);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(FitnessCache, CapacityBoundIsHonored) {
  const std::uint64_t capacity = 24;
  FitnessCache cache(capacity, 4);
  for (SnpIndex i = 0; i < 500; ++i) {
    cache.insert(key({i}), static_cast<double>(i));
    EXPECT_LE(cache.size(), capacity);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 500u);
  EXPECT_EQ(stats.evictions, 500u - stats.entries);
  EXPECT_LE(stats.entries, capacity);
  EXPECT_GT(stats.entries, 0u);
}

TEST(FitnessCache, EvictionIsFifoWithinShard) {
  // One shard makes the FIFO order directly observable.
  FitnessCache cache(3, 1);
  cache.insert(key({0}), 0.0);
  cache.insert(key({1}), 1.0);
  cache.insert(key({2}), 2.0);
  cache.insert(key({3}), 3.0);  // evicts {0}, the oldest
  EXPECT_FALSE(cache.find(key({0})).has_value());
  EXPECT_TRUE(cache.find(key({1})).has_value());
  EXPECT_TRUE(cache.find(key({2})).has_value());
  EXPECT_TRUE(cache.find(key({3})).has_value());
  cache.insert(key({4}), 4.0);  // evicts {1}
  EXPECT_FALSE(cache.find(key({1})).has_value());
  EXPECT_TRUE(cache.find(key({2})).has_value());
}

TEST(FitnessCache, UnboundedCacheNeverEvicts) {
  FitnessCache cache(0, 8);
  for (SnpIndex i = 0; i < 1000; ++i) {
    cache.insert(key({i, static_cast<SnpIndex>(i + 1)}),
                 static_cast<double>(i));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (SnpIndex i = 0; i < 1000; ++i) {
    EXPECT_TRUE(
        cache.find(key({i, static_cast<SnpIndex>(i + 1)})).has_value());
  }
}

TEST(FitnessCache, StatsCountHitsAndMisses) {
  FitnessCache cache(16, 2);
  cache.insert(key({1}), 1.0);
  (void)cache.find(key({1}));  // hit
  (void)cache.find(key({1}));  // hit
  (void)cache.find(key({2}));  // miss
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 16u);
  EXPECT_EQ(stats.shards, 2u);
}

TEST(FitnessCache, ShardCountIsClampedToCapacity) {
  // Fewer entries than shards: shards are clamped so every shard can
  // hold at least one entry and the total never exceeds the bound.
  FitnessCache cache(3, 16);
  EXPECT_LE(cache.shard_count(), 3u);
  for (SnpIndex i = 0; i < 100; ++i) {
    cache.insert(key({i}), static_cast<double>(i));
    EXPECT_LE(cache.size(), 3u);
  }
}

TEST(FitnessCache, ClearEmptiesAllShards) {
  FitnessCache cache(0, 4);
  for (SnpIndex i = 0; i < 50; ++i) cache.insert(key({i}), 1.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(key({7})).has_value());
}

TEST(FitnessCache, ConcurrentInsertAndFindStayConsistent) {
  FitnessCache cache(256, 8);
  constexpr std::uint32_t kThreads = 8;
  constexpr SnpIndex kKeys = 64;
  // Every thread inserts the same key->value mapping while reading
  // randomly; any hit must return the one true value for its key.
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint32_t round = 0; round < 200; ++round) {
        const SnpIndex k =
            static_cast<SnpIndex>((t * 131 + round * 17) % kKeys);
        cache.insert(key({k, static_cast<SnpIndex>(k + 1)}),
                     static_cast<double>(k) * 0.5);
        const SnpIndex probe =
            static_cast<SnpIndex>((t + round * 31) % kKeys);
        const auto found =
            cache.find(key({probe, static_cast<SnpIndex>(probe + 1)}));
        if (found.has_value()) {
          EXPECT_DOUBLE_EQ(*found, static_cast<double>(probe) * 0.5);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 200u);
  // Insertions count new entries only; every one of the kKeys distinct
  // keys lands exactly once, later writes update in place.
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kKeys));
  EXPECT_LE(stats.entries, 256u);
}

TEST(FitnessCache, ConcurrentMixedTrafficWithEvictionStaysConsistent) {
  // Eviction stress: the key universe (512) is far larger than the
  // bound (48), so shards churn constantly while other threads read
  // and re-insert. Run under the TSan CI mode (scripts/check.sh
  // thread) this exercises the find/insert/evict lock paths together;
  // the invariants below must hold under any interleaving:
  //   - a hit always returns the one true value for its key,
  //   - the capacity bound is never exceeded,
  //   - the counters balance exactly (finds = hits + misses,
  //     entries = insertions - evictions).
  FitnessCache cache(48, 4);
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kOpsPerThread = 3999;  // divisible by 3
  constexpr SnpIndex kKeys = 512;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      // Deterministic per-thread mixed stream: 1/3 inserts (forcing
      // evictions), 2/3 lookups over a sliding window of hot keys.
      std::uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (std::uint32_t op = 0; op < kOpsPerThread; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto k = static_cast<SnpIndex>((state >> 33) % kKeys);
        const std::vector<SnpIndex> key = {k, static_cast<SnpIndex>(k + 1)};
        if (op % 3 == 0) {
          cache.insert(key, static_cast<double>(k) * 0.25);
        } else {
          const auto found = cache.find(key);
          if (found.has_value()) {
            EXPECT_DOUBLE_EQ(*found, static_cast<double>(k) * 0.25);
          }
        }
        EXPECT_LE(cache.size(), 48u);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  const std::uint64_t finds =
      static_cast<std::uint64_t>(kThreads) * (kOpsPerThread - kOpsPerThread / 3);
  EXPECT_EQ(stats.hits + stats.misses, finds);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, stats.insertions - stats.evictions);
  EXPECT_LE(stats.entries, 48u);
  // The churn must not corrupt steady-state behaviour: a fresh
  // insert-then-find on a quiet cache still round-trips.
  cache.insert(std::vector<SnpIndex>{1000, 1001}, 7.5);
  const auto found = cache.find(std::vector<SnpIndex>{1000, 1001});
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(*found, 7.5);
}

}  // namespace
}  // namespace ldga::stats
