#include "stats/fitness_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

std::vector<SnpIndex> key(std::initializer_list<SnpIndex> snps) {
  return snps;
}

TEST(FitnessCache, FindAfterInsertAndMissBefore) {
  FitnessCache cache(64, 4);
  EXPECT_FALSE(cache.find(key({1, 2, 3})).has_value());
  cache.insert(key({1, 2, 3}), 7.5);
  const auto hit = cache.find(key({1, 2, 3}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 7.5);
  // A different key with shared prefix stays distinct.
  EXPECT_FALSE(cache.find(key({1, 2})).has_value());
  EXPECT_FALSE(cache.find(key({1, 2, 4})).has_value());
}

TEST(FitnessCache, InsertUpdatesInPlace) {
  FitnessCache cache(8, 1);
  cache.insert(key({5}), 1.0);
  cache.insert(key({5}), 2.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.find(key({5})), 2.0);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(FitnessCache, CapacityBoundIsHonored) {
  const std::uint64_t capacity = 24;
  FitnessCache cache(capacity, 4);
  for (SnpIndex i = 0; i < 500; ++i) {
    cache.insert(key({i}), static_cast<double>(i));
    EXPECT_LE(cache.size(), capacity);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 500u);
  EXPECT_EQ(stats.evictions, 500u - stats.entries);
  EXPECT_LE(stats.entries, capacity);
  EXPECT_GT(stats.entries, 0u);
}

TEST(FitnessCache, EvictionIsFifoWithinShard) {
  // One shard makes the FIFO order directly observable.
  FitnessCache cache(3, 1);
  cache.insert(key({0}), 0.0);
  cache.insert(key({1}), 1.0);
  cache.insert(key({2}), 2.0);
  cache.insert(key({3}), 3.0);  // evicts {0}, the oldest
  EXPECT_FALSE(cache.find(key({0})).has_value());
  EXPECT_TRUE(cache.find(key({1})).has_value());
  EXPECT_TRUE(cache.find(key({2})).has_value());
  EXPECT_TRUE(cache.find(key({3})).has_value());
  cache.insert(key({4}), 4.0);  // evicts {1}
  EXPECT_FALSE(cache.find(key({1})).has_value());
  EXPECT_TRUE(cache.find(key({2})).has_value());
}

TEST(FitnessCache, UnboundedCacheNeverEvicts) {
  FitnessCache cache(0, 8);
  for (SnpIndex i = 0; i < 1000; ++i) {
    cache.insert(key({i, static_cast<SnpIndex>(i + 1)}),
                 static_cast<double>(i));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (SnpIndex i = 0; i < 1000; ++i) {
    EXPECT_TRUE(
        cache.find(key({i, static_cast<SnpIndex>(i + 1)})).has_value());
  }
}

TEST(FitnessCache, StatsCountHitsAndMisses) {
  FitnessCache cache(16, 2);
  cache.insert(key({1}), 1.0);
  (void)cache.find(key({1}));  // hit
  (void)cache.find(key({1}));  // hit
  (void)cache.find(key({2}));  // miss
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 16u);
  EXPECT_EQ(stats.shards, 2u);
}

TEST(FitnessCache, ShardCountIsClampedToCapacity) {
  // Fewer entries than shards: shards are clamped so every shard can
  // hold at least one entry and the total never exceeds the bound.
  FitnessCache cache(3, 16);
  EXPECT_LE(cache.shard_count(), 3u);
  for (SnpIndex i = 0; i < 100; ++i) {
    cache.insert(key({i}), static_cast<double>(i));
    EXPECT_LE(cache.size(), 3u);
  }
}

TEST(FitnessCache, ClearEmptiesAllShards) {
  FitnessCache cache(0, 4);
  for (SnpIndex i = 0; i < 50; ++i) cache.insert(key({i}), 1.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(key({7})).has_value());
}

TEST(FitnessCache, ConcurrentInsertAndFindStayConsistent) {
  FitnessCache cache(256, 8);
  constexpr std::uint32_t kThreads = 8;
  constexpr SnpIndex kKeys = 64;
  // Every thread inserts the same key->value mapping while reading
  // randomly; any hit must return the one true value for its key.
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint32_t round = 0; round < 200; ++round) {
        const SnpIndex k =
            static_cast<SnpIndex>((t * 131 + round * 17) % kKeys);
        cache.insert(key({k, static_cast<SnpIndex>(k + 1)}),
                     static_cast<double>(k) * 0.5);
        const SnpIndex probe =
            static_cast<SnpIndex>((t + round * 31) % kKeys);
        const auto found =
            cache.find(key({probe, static_cast<SnpIndex>(probe + 1)}));
        if (found.has_value()) {
          EXPECT_DOUBLE_EQ(*found, static_cast<double>(probe) * 0.5);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 200u);
  // Insertions count new entries only; every one of the kKeys distinct
  // keys lands exactly once, later writes update in place.
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kKeys));
  EXPECT_LE(stats.entries, 256u);
}

}  // namespace
}  // namespace ldga::stats
