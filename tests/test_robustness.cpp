#include "analysis/robustness.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ldga::analysis {
namespace {

using genomics::SnpIndex;

TEST(Jaccard, IdenticalSetsAreOne) {
  const std::vector<SnpIndex> a{1, 5, 9};
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, a), 1.0);
}

TEST(Jaccard, DisjointSetsAreZero) {
  const std::vector<SnpIndex> a{1, 2};
  const std::vector<SnpIndex> b{3, 4};
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  const std::vector<SnpIndex> a{1, 2, 3};
  const std::vector<SnpIndex> b{2, 3, 4, 5};
  // Intersection 2, union 5.
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), 0.4);
}

TEST(Jaccard, EmptySets) {
  const std::vector<SnpIndex> empty;
  const std::vector<SnpIndex> a{1};
  EXPECT_DOUBLE_EQ(jaccard_similarity(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity(empty, a), 0.0);
}

TEST(Jaccard, SymmetricProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = rng.sample_without_replacement(20, 4);
    const auto b = rng.sample_without_replacement(20, 6);
    EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), jaccard_similarity(b, a));
    const double j = jaccard_similarity(a, b);
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0);
  }
}

TEST(Robustness, ReportShapeAndBounds) {
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 2025);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.population_size = 20;
  config.min_subpopulation = 8;
  config.crossovers_per_generation = 4;
  config.mutations_per_generation = 8;
  config.stagnation_generations = 10;
  config.max_generations = 30;
  config.seed = 1;
  const ga::FeasibilityFilter filter;
  const auto report = measure_robustness(evaluator, config, 3, filter);
  ASSERT_EQ(report.runs.size(), 3u);
  ASSERT_EQ(report.mean_jaccard_by_size.size(), 2u);
  ASSERT_EQ(report.fitness_cv_by_size.size(), 2u);
  for (const double j : report.mean_jaccard_by_size) {
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0);
  }
  for (const double cv : report.fitness_cv_by_size) EXPECT_GE(cv, 0.0);
}

TEST(Robustness, StrongSignalMakesRunsAgree) {
  // With a strong planted pair on a small panel the size-2 winner is
  // the same across runs: Jaccard 1 and CV 0.
  genomics::SyntheticConfig data_config;
  data_config.snp_count = 10;
  data_config.affected_count = 60;
  data_config.unaffected_count = 60;
  data_config.unknown_count = 0;
  data_config.active_snps = {2, 7};
  data_config.disease.relative_risk = 10.0;
  Rng rng(77);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 3;
  config.population_size = 24;
  config.min_subpopulation = 10;
  config.stagnation_generations = 20;
  config.max_generations = 100;
  config.seed = 5;
  const ga::FeasibilityFilter filter;
  const auto report = measure_robustness(evaluator, config, 3, filter);
  EXPECT_DOUBLE_EQ(report.mean_jaccard_by_size[0], 1.0);
  EXPECT_NEAR(report.fitness_cv_by_size[0], 0.0, 1e-12);
}

}  // namespace
}  // namespace ldga::analysis
