#include "parallel/virtual_machine.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "parallel/frame.hpp"
#include "parallel/transport_error.hpp"
#include "util/error.hpp"

namespace ldga::parallel {
namespace {

TEST(VirtualMachine, MasterIsTaskZero) {
  VirtualMachine vm;
  EXPECT_EQ(vm.master_context().id(), kMasterTask);
  EXPECT_EQ(vm.task_count(), 1u);
}

TEST(VirtualMachine, SpawnAssignsSequentialIds) {
  VirtualMachine vm;
  const TaskId a = vm.spawn([](TaskContext&) {});
  const TaskId b = vm.spawn([](TaskContext&) {});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(vm.task_count(), 3u);
}

TEST(VirtualMachine, PingPong) {
  VirtualMachine vm;
  const TaskId echo = vm.spawn([](TaskContext& self) {
    Message m = self.receive(kMasterTask, 1);
    Unpacker unpacker = m.unpacker();
    const auto value = unpacker.unpack<std::int32_t>();
    Packer reply;
    reply.pack(value * 2);
    self.send(kMasterTask, 2, std::move(reply));
  });

  TaskContext master = vm.master_context();
  Packer request;
  request.pack<std::int32_t>(21);
  master.send(echo, 1, std::move(request));
  Message reply = master.receive(echo, 2);
  Unpacker unpacker = reply.unpacker();
  EXPECT_EQ(unpacker.unpack<std::int32_t>(), 42);
  EXPECT_EQ(reply.source, echo);
}

TEST(VirtualMachine, TasksTalkToEachOther) {
  VirtualMachine vm;
  // Task 1 forwards whatever it gets to task 2; task 2 reports to master.
  const TaskId forwarder = vm.spawn([](TaskContext& self) {
    Message m = self.receive(kMasterTask);
    self.send(2, m.tag, Packer{});
  });
  const TaskId sink = vm.spawn([](TaskContext& self) {
    Message m = self.receive(1);
    Packer done;
    done.pack<std::int32_t>(m.tag);
    self.send(kMasterTask, 99, std::move(done));
  });
  (void)sink;

  TaskContext master = vm.master_context();
  master.send(forwarder, 7, Packer{});
  Message result = master.receive(kAnySource, 99);
  Unpacker unpacker = result.unpacker();
  EXPECT_EQ(unpacker.unpack<std::int32_t>(), 7);
}

TEST(VirtualMachine, SendToUnknownTaskThrows) {
  VirtualMachine vm;
  TaskContext master = vm.master_context();
  EXPECT_THROW(master.send(5, 1, Packer{}), ParallelError);
  EXPECT_THROW(master.send(-2, 1, Packer{}), ParallelError);
}

TEST(VirtualMachine, HaltUnblocksWaitingTasks) {
  VirtualMachine vm;
  std::atomic<bool> unblocked{false};
  vm.spawn([&unblocked](TaskContext& self) {
    try {
      self.receive();  // nothing ever arrives
    } catch (const ParallelError&) {
      unblocked = true;
    }
  });
  vm.halt();
  EXPECT_TRUE(unblocked.load());
}

TEST(VirtualMachine, SpawnAfterHaltThrows) {
  VirtualMachine vm;
  vm.halt();
  EXPECT_THROW(vm.spawn([](TaskContext&) {}), ParallelError);
}

TEST(VirtualMachine, DestructorJoinsWithoutDeadlock) {
  // Tasks blocked in receive must be released by the destructor.
  std::atomic<int> released{0};
  {
    VirtualMachine vm;
    for (int i = 0; i < 4; ++i) {
      vm.spawn([&released](TaskContext& self) {
        try {
          self.receive();
        } catch (const ParallelError&) {
          ++released;
        }
      });
    }
  }
  EXPECT_EQ(released.load(), 4);
}

TEST(VirtualMachine, SendAfterHaltIsTypedTransportClosed) {
  VirtualMachine vm;
  const TaskId worker = vm.spawn([](TaskContext& self) {
    try {
      self.receive();
    } catch (const ParallelError&) {
    }
  });
  TaskContext master = vm.master_context();
  vm.halt();
  EXPECT_THROW(master.send(worker, 1, Packer{}), TransportClosed);
}

TEST(VirtualMachine, SendToRetiredTaskIsTypedTransportClosed) {
  VirtualMachine vm;
  const TaskId worker = vm.spawn([](TaskContext& self) {
    try {
      self.receive();
    } catch (const ParallelError&) {
    }
  });
  vm.close_mailbox(worker);
  TaskContext master = vm.master_context();
  EXPECT_THROW(master.send(worker, 1, Packer{}), TransportClosed);
  vm.halt();
}

TEST(VirtualMachine, CorruptSealedPayloadIsATypedWireError) {
  // Even in-process, every payload is version+CRC sealed; a damaged
  // buffer must surface as WireProtocolError naming the sender.
  VirtualMachine vm;
  const TaskId saboteur = vm.spawn([](TaskContext& self) {
    Packer payload;
    payload.pack<std::int32_t>(7);
    auto sealed = seal_payload(std::move(payload).take());
    sealed.back() ^= 0x01u;
    self.send_raw(kMasterTask, 5, std::move(sealed));
  });
  TaskContext master = vm.master_context();
  try {
    (void)master.receive(kAnySource, 5);
    FAIL() << "expected WireProtocolError";
  } catch (const WireProtocolError& error) {
    EXPECT_EQ(error.source(), saboteur);
    EXPECT_EQ(error.tag(), 5);
  }
}

TEST(VirtualMachine, ProbeAndTryReceiveFromContext) {
  VirtualMachine vm;
  TaskContext master = vm.master_context();
  EXPECT_FALSE(master.probe());
  EXPECT_FALSE(master.try_receive().has_value());

  const TaskId sender = vm.spawn([](TaskContext& self) {
    Packer p;
    p.pack<std::int32_t>(1);
    self.send(kMasterTask, 3, std::move(p));
  });
  (void)sender;
  // Blocking receive to synchronize, then verify probe sees nothing.
  Message m = master.receive(kAnySource, 3);
  EXPECT_EQ(m.tag, 3);
  EXPECT_FALSE(master.probe());
}

}  // namespace
}  // namespace ldga::parallel
