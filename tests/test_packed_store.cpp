#include "genomics/packed_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "genomics/dataset_io.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/synthetic.hpp"
#include "test_support.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace ldga::genomics {
namespace {

std::string temp_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("ldga_store_") + tag + "_" +
           std::to_string(::getpid()) + ".pgs"))
      .string();
}

struct PathGuard {
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { std::remove(path.c_str()); }
  std::string path;
};

Dataset sample_dataset() {
  return ldga::testing::small_synthetic(17, 2, 99).dataset;
}

/// Patches `bytes` into the file at `offset`.
void patch_file(const std::string& path, std::uint64_t offset,
                std::span<const std::uint8_t> bytes) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

TEST(PackedStore, RoundTripsEveryGenotypeAndMetadata) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("roundtrip"));
  write_packed_store(guard.path, dataset);

  const PackedGenotypeStore store = PackedGenotypeStore::open(guard.path);
  ASSERT_EQ(store.individual_count(), dataset.individual_count());
  ASSERT_EQ(store.snp_count(), dataset.snp_count());
  EXPECT_EQ(store.statuses(), dataset.statuses());
  for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
    EXPECT_EQ(store.panel().name(s), dataset.panel().name(s));
    EXPECT_EQ(store.panel().position_kb(s), dataset.panel().position_kb(s));
    for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
      ASSERT_EQ(store.at(i, s), dataset.genotypes().at(i, s))
          << "individual " << i << " snp " << s;
    }
  }
}

TEST(PackedStore, PlanesMatchInMemoryPackingBitForBit) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("planes"));
  write_packed_store(guard.path, dataset);

  const PackedGenotypeStore store = PackedGenotypeStore::open(guard.path);
  const PackedGenotypeMatrix reference(dataset.genotypes());
  ASSERT_EQ(store.words_per_snp(), reference.words_per_snp());
  for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
    const auto lo_s = store.low_plane(s);
    const auto lo_r = reference.low_plane(s);
    const auto hi_s = store.high_plane(s);
    const auto hi_r = reference.high_plane(s);
    for (std::uint32_t w = 0; w < store.words_per_snp(); ++w) {
      ASSERT_EQ(lo_s[w], lo_r[w]);
      ASSERT_EQ(hi_s[w], hi_r[w]);
    }
  }
}

TEST(PackedStore, ToDatasetEqualsSource) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("todataset"));
  write_packed_store(guard.path, dataset);

  const Dataset decoded = PackedGenotypeStore::open(guard.path).to_dataset();
  decoded.validate();
  ASSERT_EQ(decoded.snp_count(), dataset.snp_count());
  for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
    for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
      ASSERT_EQ(decoded.genotypes().at(i, s), dataset.genotypes().at(i, s));
    }
  }
}

TEST(PackedStore, RejectsMissingAndGarbageFiles) {
  EXPECT_THROW(PackedGenotypeStore::open("/nonexistent/no.pgs"), DataError);

  PathGuard guard(temp_path("garbage"));
  std::ofstream(guard.path) << "definitely not a packed store, "
                            << std::string(100, 'x');
  EXPECT_THROW(PackedGenotypeStore::open(guard.path), DataError);
}

TEST(PackedStore, RejectsTruncatedFiles) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("truncated"));
  write_packed_store(guard.path, dataset);

  const auto full = std::filesystem::file_size(guard.path);
  std::filesystem::resize_file(guard.path, full - 16);
  try {
    PackedGenotypeStore::open(guard.path);
    FAIL() << "truncated store was accepted";
  } catch (const DataError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated"),
              std::string::npos);
  }

  // Even a header-only stub must be rejected.
  std::filesystem::resize_file(guard.path, 32);
  EXPECT_THROW(PackedGenotypeStore::open(guard.path), DataError);
}

TEST(PackedStore, RejectsVersionMismatch) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("version"));
  write_packed_store(guard.path, dataset);

  // Bump the version field and re-seal the header so only the version
  // check can fire.
  std::vector<std::uint8_t> header(64);
  {
    std::ifstream in(guard.path, std::ios::binary);
    in.read(reinterpret_cast<char*>(header.data()), 64);
  }
  const std::uint32_t bumped = PackedGenotypeStore::kVersion + 7;
  std::memcpy(header.data() + 8, &bumped, 4);
  const std::uint32_t seal = util::crc32({header.data(), 56});
  std::memcpy(header.data() + 56, &seal, 4);
  patch_file(guard.path, 0, header);

  try {
    PackedGenotypeStore::open(guard.path);
    FAIL() << "version-mismatched store was accepted";
  } catch (const DataError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(PackedStore, RejectsHeaderAndPayloadCorruption) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("corrupt"));
  write_packed_store(guard.path, dataset);

  // Flip a byte inside the plane data: payload CRC catches it...
  const std::uint8_t flip[1] = {0xFF};
  patch_file(guard.path, 4096 + 8, flip);
  EXPECT_THROW(PackedGenotypeStore::open(guard.path), DataError);

  // ...unless the caller opts out of the payload pass.
  PackedGenotypeStore::OpenOptions trusting;
  trusting.verify_checksum = false;
  EXPECT_NO_THROW(PackedGenotypeStore::open(guard.path, trusting));

  // A damaged header is always rejected (the seal is unconditional).
  patch_file(guard.path, 16, flip);
  EXPECT_THROW(PackedGenotypeStore::open(guard.path, trusting), DataError);
}

TEST(PackedStore, AbandonedWriterPublishesNothing) {
  PathGuard guard(temp_path("abandoned"));
  {
    PackedStoreWriter writer(guard.path,
                             {Status::Affected, Status::Unaffected});
    SnpInfo info{"snp1", 0.0};
    const std::vector<Genotype> column{Genotype::Het, Genotype::HomOne};
    writer.add_snp(info, column);
    // No finish(): destruction must clean up the tmp file.
  }
  EXPECT_FALSE(std::filesystem::exists(guard.path));
  EXPECT_FALSE(std::filesystem::exists(guard.path + ".tmp"));
}

TEST(PackedStore, WriterRejectsShapeErrors) {
  EXPECT_THROW(PackedStoreWriter("x.pgs", {}), DataError);

  PathGuard guard(temp_path("shape"));
  PackedStoreWriter writer(guard.path,
                           {Status::Affected, Status::Unaffected});
  const std::vector<Genotype> wrong{Genotype::Het};
  EXPECT_THROW(writer.add_snp(SnpInfo{"snp1", 0.0}, wrong), DataError);
}

TEST(PackedStore, ChunkedWritesMatchOneShotWrites) {
  const Dataset dataset = sample_dataset();
  PathGuard one(temp_path("oneshot"));
  PathGuard chunked(temp_path("chunked"));
  write_packed_store(one.path, dataset);
  write_packed_store(chunked.path, dataset, /*chunk_snps=*/3);

  const PackedGenotypeStore a = PackedGenotypeStore::open(one.path);
  const PackedGenotypeStore b = PackedGenotypeStore::open(chunked.path);
  ASSERT_EQ(a.snp_count(), b.snp_count());
  EXPECT_EQ(b.chunk_snps(), 3u);
  for (SnpIndex s = 0; s < a.snp_count(); ++s) {
    for (std::uint32_t w = 0; w < a.words_per_snp(); ++w) {
      ASSERT_EQ(a.low_plane(s)[w], b.low_plane(s)[w]);
      ASSERT_EQ(a.high_plane(s)[w], b.high_plane(s)[w]);
    }
  }
}

TEST(PackedStore, DatasetOpenDispatchesOnContent) {
  const Dataset dataset = sample_dataset();

  PathGuard store_guard(temp_path("dispatch"));
  write_packed_store(store_guard.path, dataset);
  const Dataset from_store = Dataset::open(store_guard.path);
  ASSERT_EQ(from_store.snp_count(), dataset.snp_count());
  EXPECT_EQ(from_store.statuses(), dataset.statuses());

  PathGuard text_guard(temp_path("dispatch_text"));
  save_dataset(text_guard.path, dataset);
  const Dataset from_text = Dataset::open(text_guard.path);
  ASSERT_EQ(from_text.snp_count(), dataset.snp_count());
  for (std::uint32_t i = 0; i < dataset.individual_count(); ++i) {
    for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
      ASSERT_EQ(from_store.genotypes().at(i, s),
                dataset.genotypes().at(i, s));
      ASSERT_EQ(from_text.genotypes().at(i, s),
                dataset.genotypes().at(i, s));
    }
  }

  EXPECT_THROW(Dataset::open("/nonexistent/nowhere.txt"), DataError);
}

TEST(PackedStore, SyntheticStoreStreamsChunksWithPlantedSignal) {
  SyntheticStoreConfig config;
  config.cohort.snp_count = 24;
  config.cohort.affected_count = 20;
  config.cohort.unaffected_count = 20;
  config.cohort.unknown_count = 0;
  config.cohort.active_snp_count = 2;
  config.total_snps = 100;
  config.chunk_snps = 32;

  PathGuard guard(temp_path("synthetic"));
  Rng rng(77);
  const SyntheticStoreResult result =
      write_synthetic_store(guard.path, config, rng);
  EXPECT_EQ(result.snps_written, 100u);
  ASSERT_EQ(result.truth.snps.size(), 2u);
  EXPECT_LT(result.truth.snps.back(), 24u);  // signal chunk is global head

  const PackedGenotypeStore store = PackedGenotypeStore::open(guard.path);
  EXPECT_EQ(store.snp_count(), 100u);
  EXPECT_EQ(store.individual_count(), 40u);
  EXPECT_EQ(store.statuses(), result.statuses);
  EXPECT_EQ(store.panel().name(0), "snp0000001");
  EXPECT_EQ(store.panel().name(99), "snp0000100");

  // The signal chunk reproduces generate_synthetic with the same seed.
  Rng reference_rng(77);
  const SyntheticDataset reference =
      generate_synthetic(config.cohort, reference_rng);
  for (std::uint32_t i = 0; i < store.individual_count(); ++i) {
    for (SnpIndex s = 0; s < config.cohort.snp_count; ++s) {
      ASSERT_EQ(store.at(i, s), reference.dataset.genotypes().at(i, s));
    }
  }
}

TEST(GenotypeStoreApi, StoreSlicesMatchInMemorySlices) {
  const Dataset dataset = sample_dataset();
  PathGuard guard(temp_path("slices"));
  write_packed_store(guard.path, dataset);
  const PackedGenotypeStore store = PackedGenotypeStore::open(guard.path);
  const PackedGenotypeMatrix memory(dataset.genotypes());

  const std::vector<std::uint32_t> some_rows{0, 3, 5, 8, 13};
  const auto from_store = store.slice(4, 9, some_rows);
  const auto from_memory = memory.slice(4, 9, some_rows);
  ASSERT_EQ(from_store.snp_count(), from_memory.snp_count());
  ASSERT_EQ(from_store.individual_count(), from_memory.individual_count());
  for (SnpIndex s = 0; s < from_store.snp_count(); ++s) {
    for (std::uint32_t w = 0; w < from_store.words_per_snp(); ++w) {
      ASSERT_EQ(from_store.low_plane(s)[w], from_memory.low_plane(s)[w]);
      ASSERT_EQ(from_store.high_plane(s)[w], from_memory.high_plane(s)[w]);
    }
  }

  // Locus counts agree through the virtual interface too.
  for (SnpIndex s = 0; s < store.snp_count(); ++s) {
    const LocusCounts a = store.locus_counts(s);
    const LocusCounts b = memory.locus_counts(s);
    ASSERT_EQ(a.hom_one, b.hom_one);
    ASSERT_EQ(a.het, b.het);
    ASSERT_EQ(a.hom_two, b.hom_two);
    ASSERT_EQ(a.missing, b.missing);
  }
}

}  // namespace
}  // namespace ldga::genomics
