#include "stats/phase_reconstruction.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_support.hpp"

namespace ldga::stats {
namespace {

using genomics::Genotype;
using genomics::GenotypeMatrix;
using genomics::SnpIndex;

GenotypeMatrix matrix_from_rows(
    const std::vector<std::vector<Genotype>>& rows) {
  GenotypeMatrix matrix(static_cast<std::uint32_t>(rows.size()),
                        static_cast<std::uint32_t>(rows[0].size()));
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    for (SnpIndex s = 0; s < rows[i].size(); ++s) {
      matrix.set(i, s, rows[i][s]);
    }
  }
  return matrix;
}

TEST(PhaseReconstruction, HomozygotesAreUnambiguous) {
  const auto matrix = matrix_from_rows({
      {Genotype::HomTwo, Genotype::HomOne},
  });
  const std::vector<std::uint32_t> ids{0};
  const std::vector<double> uniform(4, 0.25);
  const auto phased = reconstruct_phases(
      matrix, std::vector<SnpIndex>{0, 1}, ids, uniform);
  ASSERT_EQ(phased.size(), 1u);
  EXPECT_EQ(phased[0].first, 0b01u);   // allele 2 at locus 0 only
  EXPECT_EQ(phased[0].second, 0b01u);
  EXPECT_FALSE(phased[0].ambiguous);
  EXPECT_DOUBLE_EQ(phased[0].posterior, 1.0);
}

TEST(PhaseReconstruction, DoubleHetFollowsFrequencies) {
  const auto matrix = matrix_from_rows({
      {Genotype::Het, Genotype::Het},
  });
  const std::vector<std::uint32_t> ids{0};
  // Cis haplotypes (00 and 11) dominate: resolution must be cis.
  const std::vector<double> cis_heavy{0.45, 0.05, 0.05, 0.45};
  const auto phased = reconstruct_phases(
      matrix, std::vector<SnpIndex>{0, 1}, ids, cis_heavy);
  ASSERT_EQ(phased.size(), 1u);
  EXPECT_TRUE(phased[0].ambiguous);
  const bool is_cis =
      (phased[0].first == 0b00u && phased[0].second == 0b11u) ||
      (phased[0].first == 0b11u && phased[0].second == 0b00u);
  EXPECT_TRUE(is_cis);
  // Posterior of cis = 2*0.45*0.45 / (2*0.45*0.45 + 2*0.05*0.05).
  EXPECT_NEAR(phased[0].posterior, 0.405 / (0.405 + 0.005), 1e-9);
}

TEST(PhaseReconstruction, TransHeavyFrequenciesFlipTheCall) {
  const auto matrix = matrix_from_rows({
      {Genotype::Het, Genotype::Het},
  });
  const std::vector<std::uint32_t> ids{0};
  const std::vector<double> trans_heavy{0.05, 0.45, 0.45, 0.05};
  const auto phased = reconstruct_phases(
      matrix, std::vector<SnpIndex>{0, 1}, ids, trans_heavy);
  const bool is_trans =
      (phased[0].first == 0b01u && phased[0].second == 0b10u) ||
      (phased[0].first == 0b10u && phased[0].second == 0b01u);
  EXPECT_TRUE(is_trans);
}

TEST(PhaseReconstruction, MissingLocusImputedToLikeliest) {
  const auto matrix = matrix_from_rows({
      {Genotype::HomTwo, Genotype::Missing},
  });
  const std::vector<std::uint32_t> ids{0};
  // Haplotype 11 (alleles 2,2) overwhelmingly likely.
  const std::vector<double> freqs{0.05, 0.05, 0.05, 0.85};
  const auto phased = reconstruct_phases(
      matrix, std::vector<SnpIndex>{0, 1}, ids, freqs);
  EXPECT_EQ(phased[0].first, 0b11u);
  EXPECT_EQ(phased[0].second, 0b11u);
  EXPECT_TRUE(phased[0].ambiguous);
}

TEST(PhaseReconstruction, ZeroFrequencyModelFallsBackUniform) {
  const auto matrix = matrix_from_rows({
      {Genotype::Het},
  });
  const std::vector<std::uint32_t> ids{0};
  const std::vector<double> zero{0.0, 0.0};
  const auto phased =
      reconstruct_phases(matrix, std::vector<SnpIndex>{0}, ids, zero);
  EXPECT_GT(phased[0].posterior, 0.0);
}

TEST(PhaseReconstruction, IntegratesWithEmOutput) {
  // Reconstruct everyone's phase under the EM-estimated model; the
  // best-guess posteriors must be valid probabilities and carried
  // counts must total 2n.
  const auto synthetic = ldga::testing::small_synthetic(8, 2, 909);
  const auto& matrix = synthetic.dataset.genotypes();
  std::vector<std::uint32_t> ids(matrix.individual_count());
  std::iota(ids.begin(), ids.end(), 0);
  const std::vector<SnpIndex> snps{1, 3, 6};
  const auto table = GenotypePatternTable::build(matrix, snps, ids);
  const auto em = estimate_haplotype_frequencies(table);
  const auto phased =
      reconstruct_phases(matrix, snps, ids, em.frequencies);
  ASSERT_EQ(phased.size(), ids.size());
  std::uint32_t carried_total = 0;
  for (HaplotypeCode h = 0; h < 8; ++h) {
    carried_total += count_carried(phased, h);
  }
  EXPECT_EQ(carried_total, 2 * ids.size());
  for (const auto& p : phased) {
    EXPECT_GT(p.posterior, 0.0);
    EXPECT_LE(p.posterior, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace ldga::stats
