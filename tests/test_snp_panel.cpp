#include "genomics/snp_panel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ldga::genomics {
namespace {

TEST(SnpPanel, UniformPanelNamesAndPositions) {
  const SnpPanel panel = SnpPanel::uniform(3, 5.0);
  ASSERT_EQ(panel.size(), 3u);
  EXPECT_EQ(panel.name(0), "snp0001");
  EXPECT_EQ(panel.name(2), "snp0003");
  EXPECT_DOUBLE_EQ(panel.position_kb(0), 0.0);
  EXPECT_DOUBLE_EQ(panel.position_kb(2), 10.0);
}

TEST(SnpPanel, DistanceIsSymmetricAndNonNegative) {
  const SnpPanel panel = SnpPanel::uniform(5, 2.5);
  EXPECT_DOUBLE_EQ(panel.distance_kb(1, 4), 7.5);
  EXPECT_DOUBLE_EQ(panel.distance_kb(4, 1), 7.5);
  EXPECT_DOUBLE_EQ(panel.distance_kb(2, 2), 0.0);
}

TEST(SnpPanel, IndexOfFindsMarkers) {
  const SnpPanel panel = SnpPanel::uniform(4);
  EXPECT_EQ(panel.index_of("snp0002"), 1u);
  EXPECT_THROW(panel.index_of("nope"), DataError);
}

TEST(SnpPanel, RejectsDecreasingPositions) {
  std::vector<SnpInfo> snps{{"a", 10.0}, {"b", 5.0}};
  EXPECT_THROW(SnpPanel{std::move(snps)}, DataError);
}

TEST(SnpPanel, AcceptsEqualPositions) {
  std::vector<SnpInfo> snps{{"a", 10.0}, {"b", 10.0}};
  const SnpPanel panel(std::move(snps));
  EXPECT_DOUBLE_EQ(panel.distance_kb(0, 1), 0.0);
}

TEST(SnpPanel, EmptyPanel) {
  const SnpPanel panel;
  EXPECT_TRUE(panel.empty());
  EXPECT_EQ(panel.size(), 0u);
}

TEST(SnpPanel, OutOfRangeInfoDies) {
  const SnpPanel panel = SnpPanel::uniform(2);
  EXPECT_DEATH(panel.info(2), "precondition");
}

}  // namespace
}  // namespace ldga::genomics
