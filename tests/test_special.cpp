#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ldga::stats {
namespace {

TEST(GammaFunctions, PAndQSumToOne) {
  for (const double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (const double x : {0.0, 0.1, 1.0, 5.0, 25.0, 100.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaFunctions, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(a, 0) = 0, Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(3.0, 0.0), 1.0);
}

TEST(GammaFunctions, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.5) {
    const double p = gamma_p(3.5, x);
    EXPECT_GT(p, previous - 1e-15);
    previous = p;
  }
}

TEST(ChiSquareSf, TextbookCriticalValues) {
  // Classic 5% critical values.
  EXPECT_NEAR(chi_square_sf(3.841, 1.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(5.991, 2.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(7.815, 3.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(11.070, 5.0), 0.05, 2e-4);
  // 1% critical values.
  EXPECT_NEAR(chi_square_sf(6.635, 1.0), 0.01, 1e-4);
  EXPECT_NEAR(chi_square_sf(15.086, 5.0), 0.01, 1e-4);
}

TEST(ChiSquareSf, DfTwoIsExponential) {
  // For df = 2 the chi-square sf is exactly exp(-x/2).
  for (const double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(chi_square_sf(x, 2.0), std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquareSf, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_sf(-1.0, 3.0), 1.0);
  EXPECT_LT(chi_square_sf(1000.0, 3.0), 1e-100);
}

// --- inverse survival function property sweep ---------------------------

class ChiSquareInverse : public ::testing::TestWithParam<double> {};

TEST_P(ChiSquareInverse, RoundTripsWithSf) {
  const double df = GetParam();
  for (const double p : {0.9, 0.5, 0.1, 0.05, 0.01, 0.001}) {
    const double x = chi_square_isf(p, df);
    EXPECT_NEAR(chi_square_sf(x, df), p, 1e-8)
        << "df=" << df << " p=" << p;
  }
}

TEST_P(ChiSquareInverse, MonotoneInP) {
  const double df = GetParam();
  EXPECT_GT(chi_square_isf(0.01, df), chi_square_isf(0.05, df));
  EXPECT_GT(chi_square_isf(0.05, df), chi_square_isf(0.5, df));
}

INSTANTIATE_TEST_SUITE_P(Dfs, ChiSquareInverse,
                         ::testing::Values(1.0, 2.0, 3.0, 7.0, 15.0, 63.0));

}  // namespace
}  // namespace ldga::stats
