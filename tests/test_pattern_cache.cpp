// Exactness of the incremental construction routes (pattern_cache.hpp)
// and behaviour of the subset-keyed cache itself. The load-bearing
// property: whatever route builds a child's tables — fresh DFS,
// one-locus extension, one-locus projection, or a full cache hit — the
// resulting pattern tables and downstream EM/LRT results are
// bit-for-bit identical to the reference pipeline.
#include "stats/pattern_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "genomics/dataset.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/synthetic.hpp"
#include "stats/eh_diall.hpp"
#include "stats/em_haplotype.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

/// Deterministic cohort with missing genotypes — both missing policies
/// must diverge for the policy-dependent routes to be exercised.
genomics::SyntheticDataset missing_cohort(std::uint32_t snps = 24,
                                          double missing_rate = 0.06,
                                          std::uint64_t seed = 77) {
  genomics::SyntheticConfig config;
  config.snp_count = snps;
  config.affected_count = 50;
  config.unaffected_count = 50;
  config.unknown_count = 0;
  config.active_snp_count = 3;
  config.missing_rate = missing_rate;
  Rng rng(seed);
  return genomics::generate_synthetic(config, rng);
}

std::vector<SnpIndex> random_sorted_set(std::uint32_t snp_count,
                                        std::uint32_t k, Rng& rng) {
  std::vector<SnpIndex> all(snp_count);
  for (std::uint32_t s = 0; s < snp_count; ++s) all[s] = s;
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(rng.below(snp_count - i));
    std::swap(all[i], all[j]);
  }
  std::vector<SnpIndex> set(all.begin(), all.begin() + k);
  std::sort(set.begin(), set.end());
  return set;
}

void expect_same_table(const GenotypePatternTable& got,
                       const GenotypePatternTable& want) {
  ASSERT_EQ(got.locus_count(), want.locus_count());
  EXPECT_EQ(got.total_individuals(), want.total_individuals());
  EXPECT_EQ(got.excluded_missing(), want.excluded_missing());
  ASSERT_EQ(got.patterns().size(), want.patterns().size());
  for (std::size_t i = 0; i < want.patterns().size(); ++i) {
    const GenotypePattern& g = got.patterns()[i];
    const GenotypePattern& w = want.patterns()[i];
    EXPECT_EQ(g.hom_two_mask, w.hom_two_mask) << "pattern " << i;
    EXPECT_EQ(g.het_mask, w.het_mask) << "pattern " << i;
    EXPECT_EQ(g.missing_mask, w.missing_mask) << "pattern " << i;
    EXPECT_EQ(g.count, w.count) << "pattern " << i;
  }
}

void expect_same_em(const EmResult& got, const EmResult& want) {
  ASSERT_EQ(got.frequencies.size(), want.frequencies.size());
  for (std::size_t h = 0; h < want.frequencies.size(); ++h) {
    EXPECT_EQ(got.frequencies[h], want.frequencies[h]) << "haplotype " << h;
  }
  EXPECT_EQ(got.log_likelihood, want.log_likelihood);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
}

TEST(MaskRemap, ExpandAndCompactAreInverse) {
  for (std::uint32_t pos = 0; pos < 8; ++pos) {
    for (std::uint32_t mask = 0; mask < 128; ++mask) {
      const std::uint32_t expanded = expand_mask_bit(mask, pos);
      EXPECT_EQ(expanded & (1u << pos), 0u);
      EXPECT_EQ(compact_mask_bit(expanded, pos), mask);
    }
  }
  EXPECT_EQ(expand_mask_bit(0b1011u, 1), 0b10101u);
  EXPECT_EQ(compact_mask_bit(0b10111u, 2), 0b1011u);
}

TEST(GroupPatterns, FreshBuildMatchesBuildPacked) {
  const auto sim = missing_cohort();
  const auto affected =
      sim.dataset.individuals_with(genomics::Status::Affected);
  const genomics::PackedGenotypeMatrix group(sim.dataset.genotypes(),
                                             affected);
  Rng rng(11);
  for (const MissingPolicy policy :
       {MissingPolicy::CompleteCase, MissingPolicy::Marginalize}) {
    for (std::uint32_t k = 1; k <= 8; ++k) {
      const auto snps =
          random_sorted_set(sim.dataset.snp_count(), k, rng);
      const GroupPatterns built = build_group_patterns(group, snps, policy);
      expect_same_table(
          built.table,
          GenotypePatternTable::build_packed(group, snps, policy));
      // Carrier rows partition the included individuals: disjoint and
      // popcounts matching each pattern's count.
      std::vector<std::uint64_t> seen(built.words, 0);
      for (std::size_t p = 0; p < built.table.patterns().size(); ++p) {
        std::uint32_t bits = 0;
        const auto row = built.row(p);
        for (std::uint32_t w = 0; w < built.words; ++w) {
          EXPECT_EQ(seen[w] & row[w], 0u);
          seen[w] |= row[w];
          bits += static_cast<std::uint32_t>(std::popcount(row[w]));
        }
        EXPECT_EQ(static_cast<double>(bits), built.table.patterns()[p].count);
      }
    }
  }
}

TEST(GroupPatterns, ExtensionMatchesFreshBuild) {
  const auto sim = missing_cohort();
  const auto unaffected =
      sim.dataset.individuals_with(genomics::Status::Unaffected);
  const genomics::PackedGenotypeMatrix group(sim.dataset.genotypes(),
                                             unaffected);
  const std::uint32_t snp_count = sim.dataset.snp_count();
  Rng rng(22);
  for (const MissingPolicy policy :
       {MissingPolicy::CompleteCase, MissingPolicy::Marginalize}) {
    for (std::uint32_t k = 1; k <= 7; ++k) {
      auto child = random_sorted_set(snp_count, k + 1, rng);
      // Drop one random locus to form the parent; extend it back.
      const std::uint32_t drop = static_cast<std::uint32_t>(
          rng.below(child.size()));
      const SnpIndex added = child[drop];
      std::vector<SnpIndex> parent_snps = child;
      parent_snps.erase(parent_snps.begin() + drop);
      const GroupPatterns parent =
          build_group_patterns(group, parent_snps, policy);
      const GroupPatterns extended =
          extend_group_patterns(parent, parent_snps, group, added, policy);
      const GroupPatterns fresh = build_group_patterns(group, child, policy);
      expect_same_table(extended.table, fresh.table);
      ASSERT_EQ(extended.carriers, fresh.carriers);
    }
  }
}

TEST(GroupPatterns, ProjectionMatchesFreshBuild) {
  const auto sim = missing_cohort();
  const auto affected =
      sim.dataset.individuals_with(genomics::Status::Affected);
  const genomics::PackedGenotypeMatrix group(sim.dataset.genotypes(),
                                             affected);
  const std::uint32_t snp_count = sim.dataset.snp_count();
  Rng rng(33);
  for (std::uint32_t k = 2; k <= 8; ++k) {
    const auto parent_snps = random_sorted_set(snp_count, k, rng);
    const GroupPatterns parent = build_group_patterns(
        group, parent_snps, MissingPolicy::Marginalize);
    for (const SnpIndex dropped : parent_snps) {
      std::vector<SnpIndex> child = parent_snps;
      child.erase(std::find(child.begin(), child.end(), dropped));
      const auto projected = project_group_patterns(
          parent, parent_snps, dropped, MissingPolicy::Marginalize);
      ASSERT_TRUE(projected.has_value());
      const GroupPatterns fresh =
          build_group_patterns(group, child, MissingPolicy::Marginalize);
      expect_same_table(projected->table, fresh.table);
      ASSERT_EQ(projected->carriers, fresh.carriers);
    }
  }
}

TEST(GroupPatterns, CompleteCaseProjectionGatesOnExclusions) {
  const auto sim = missing_cohort(16, 0.15, 5);
  const auto affected =
      sim.dataset.individuals_with(genomics::Status::Affected);
  const genomics::PackedGenotypeMatrix group(sim.dataset.genotypes(),
                                             affected);
  Rng rng(44);
  bool saw_refusal = false;
  bool saw_exact = false;
  for (std::uint32_t round = 0; round < 30; ++round) {
    const auto parent_snps =
        random_sorted_set(sim.dataset.snp_count(), 4, rng);
    const GroupPatterns parent = build_group_patterns(
        group, parent_snps, MissingPolicy::CompleteCase);
    const SnpIndex dropped = parent_snps[rng.below(parent_snps.size())];
    const auto projected = project_group_patterns(
        parent, parent_snps, dropped, MissingPolicy::CompleteCase);
    if (parent.table.excluded_missing() > 0) {
      // Not reconstructible: the parent no longer knows which loci its
      // excluded individuals were missing at.
      EXPECT_FALSE(projected.has_value());
      saw_refusal = true;
    } else {
      ASSERT_TRUE(projected.has_value());
      std::vector<SnpIndex> child = parent_snps;
      child.erase(std::find(child.begin(), child.end(), dropped));
      expect_same_table(projected->table,
                        build_group_patterns(group, child,
                                             MissingPolicy::CompleteCase)
                            .table);
      saw_exact = true;
    }
  }
  EXPECT_TRUE(saw_refusal);
  // A heavily-missing cohort rarely yields an exclusion-free parent, so
  // the exact branch is exercised on a fully-typed cohort instead.
  const auto clean = missing_cohort(16, 0.0, 6);
  const auto clean_affected =
      clean.dataset.individuals_with(genomics::Status::Affected);
  const genomics::PackedGenotypeMatrix clean_group(clean.dataset.genotypes(),
                                                   clean_affected);
  for (std::uint32_t round = 0; round < 10; ++round) {
    const auto parent_snps =
        random_sorted_set(clean.dataset.snp_count(), 4, rng);
    const GroupPatterns parent = build_group_patterns(
        clean_group, parent_snps, MissingPolicy::CompleteCase);
    ASSERT_EQ(parent.table.excluded_missing(), 0u);
    const SnpIndex dropped = parent_snps[rng.below(parent_snps.size())];
    const auto projected = project_group_patterns(
        parent, parent_snps, dropped, MissingPolicy::CompleteCase);
    ASSERT_TRUE(projected.has_value());
    std::vector<SnpIndex> child = parent_snps;
    child.erase(std::find(child.begin(), child.end(), dropped));
    expect_same_table(projected->table,
                      build_group_patterns(clean_group, child,
                                           MissingPolicy::CompleteCase)
                          .table);
    saw_exact = true;
  }
  EXPECT_TRUE(saw_exact);
}

TEST(PatternTableCacheTest, InsertFindPeekAndFifoEviction) {
  PatternTableCache cache(/*capacity=*/2, /*shards=*/1);
  const auto entry = [](std::vector<SnpIndex> key) {
    auto tables = std::make_shared<CandidateTables>();
    tables->key = std::move(key);
    return tables;
  };
  cache.insert(entry({0, 1}));
  cache.insert(entry({0, 2}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(std::vector<SnpIndex>{0, 1}), nullptr);

  cache.insert(entry({0, 3}));  // evicts the FIFO head {0, 1}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(std::vector<SnpIndex>{0, 1}), nullptr);
  EXPECT_NE(cache.peek(std::vector<SnpIndex>{0, 2}), nullptr);
  EXPECT_NE(cache.find(std::vector<SnpIndex>{0, 3}), nullptr);

  const PatternCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  // peek() is invisible to the hit/miss counters.
  EXPECT_EQ(stats.entry_reuses, 2u);
  EXPECT_EQ(stats.entry_builds, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PatternTableCacheTest, ReinsertionRefreshesInsteadOfDuplicating) {
  PatternTableCache cache(/*capacity=*/2, /*shards=*/1);
  auto a = std::make_shared<CandidateTables>();
  a->key = {1, 2};
  cache.insert(a);
  auto b = std::make_shared<CandidateTables>();
  b->key = {1, 2};
  b->pooled_warm_started = true;
  cache.insert(b);  // same key: refresh in place, no new FIFO slot
  EXPECT_EQ(cache.size(), 1u);
  const auto found = cache.peek(std::vector<SnpIndex>{1, 2});
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->pooled_warm_started);
}

TEST(PatternTableCacheTest, ProvenanceHintsReplacePerBatch) {
  PatternTableCache cache(8, 2);
  using Hint = std::pair<std::vector<SnpIndex>, std::vector<SnpIndex>>;
  const std::vector<Hint> first{{{1, 2, 3}, {1, 2}}, {{4, 5}, {4, 5, 6}}};
  cache.note_provenance_batch(first);
  EXPECT_EQ(cache.hint_for(std::vector<SnpIndex>{1, 2, 3}),
            (std::vector<SnpIndex>{1, 2}));
  EXPECT_EQ(cache.hint_for(std::vector<SnpIndex>{4, 5}),
            (std::vector<SnpIndex>{4, 5, 6}));
  EXPECT_TRUE(cache.hint_for(std::vector<SnpIndex>{7, 8}).empty());

  const std::vector<Hint> second{{{7, 8}, {7}}};
  cache.note_provenance_batch(second);
  EXPECT_TRUE(cache.hint_for(std::vector<SnpIndex>{1, 2, 3}).empty());
  EXPECT_EQ(cache.hint_for(std::vector<SnpIndex>{7, 8}),
            (std::vector<SnpIndex>{7}));
  EXPECT_EQ(cache.stats().provenance_hints, 3u);
}

TEST(IncrementalConfigTest, RejectsZeroShards) {
  IncrementalConfig config;
  config.pattern_cache_shards = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

/// The pipeline-level property the cache must uphold: with the cache on
/// (and warm starts off) every EhDiall analysis — fresh, extended,
/// projected, or a repeat hit — is bit-for-bit the reference result,
/// across candidate sizes up to kMaxEmLoci and both missing policies.
TEST(IncrementalPipeline, BitExactAcrossSizesAndPolicies) {
  const auto sim = missing_cohort(kMaxEmLoci + 4, 0.02, 99);
  for (const MissingPolicy policy :
       {MissingPolicy::CompleteCase, MissingPolicy::Marginalize}) {
    EmConfig em;
    em.missing = policy;
    // The property compares two runs of the *same* EM configuration, so
    // a looser tolerance loses nothing — it just keeps the large-k
    // analyses (2^k frequency expansions) affordable for a unit test.
    em.tolerance = 1e-5;
    em.max_iterations = 60;
    const EhDiall reference(sim.dataset, em);
    const auto cache = std::make_shared<PatternTableCache>(256, 4);
    const EhDiall incremental(sim.dataset, em, true, false, cache);
    ASSERT_EQ(incremental.pattern_cache(), cache);

    Rng rng(1000 + static_cast<std::uint64_t>(policy));
    for (std::uint32_t k = 2; k <= kMaxEmLoci; ++k) {
      auto snps =
          random_sorted_set(sim.dataset.snp_count(), k, rng);
      // A chain of neighbours around each set exercises extension,
      // projection and replacement against the cached ancestor. Past
      // mid size the neighbour variants stop adding route coverage and
      // only multiply the 2^k analysis cost, so large k keeps just the
      // base set and its repeat (fresh build + full cache hit).
      std::vector<std::vector<SnpIndex>> family{snps};
      if (k > 2 && k <= 12) {
        auto reduced = snps;
        reduced.erase(reduced.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(reduced.size())));
        family.push_back(std::move(reduced));
      }
      if (k <= 12) {
        auto replaced = snps;
        for (SnpIndex candidate = 0; candidate < sim.dataset.snp_count();
             ++candidate) {
          if (!std::binary_search(replaced.begin(), replaced.end(),
                                  candidate)) {
            replaced[rng.below(replaced.size())] = candidate;
            std::sort(replaced.begin(), replaced.end());
            family.push_back(std::move(replaced));
            break;
          }
        }
      }
      family.push_back(snps);  // repeat: full cache hit

      for (const auto& set : family) {
        const EhDiallResult want = reference.analyze(set);
        const EhDiallResult got = incremental.analyze(set);
        expect_same_em(got.affected, want.affected);
        expect_same_em(got.unaffected, want.unaffected);
        expect_same_em(got.pooled, want.pooled);
        EXPECT_EQ(got.lrt, want.lrt);
        EXPECT_EQ(got.affected_individuals, want.affected_individuals);
        EXPECT_EQ(got.unaffected_individuals, want.unaffected_individuals);
      }
    }
    const PatternCacheStats stats = cache->stats();
    EXPECT_GT(stats.entry_reuses, 0u);
    EXPECT_GT(stats.extended + stats.projected, 0u);
    EXPECT_GT(stats.fresh, 0u);
  }
}

/// Warm starts change ulps but must converge to a usable solution (or
/// fall back to the exact cold run), and the counters must move.
TEST(IncrementalPipeline, ParentWarmStartsStayCloseAndCount) {
  const auto sim = missing_cohort();
  EmConfig em;
  const EhDiall reference(sim.dataset, em);
  const auto cache = std::make_shared<PatternTableCache>(64, 2);
  const EhDiall warm(sim.dataset, em, true, false, cache,
                     /*warm_start_parents=*/true);

  const std::vector<SnpIndex> parent{2, 5, 9};
  const std::vector<SnpIndex> child{2, 5, 9, 13};
  (void)warm.analyze(parent);
  using Hint = std::pair<std::vector<SnpIndex>, std::vector<SnpIndex>>;
  const std::vector<Hint> hints{{child, parent}};
  cache->note_provenance_batch(hints);

  const EhDiallResult got = warm.analyze(child);
  const EhDiallResult want = reference.analyze(child);
  const PatternCacheStats stats = cache->stats();
  EXPECT_GT(stats.warm_starts + stats.warm_fallbacks, 0u);
  EXPECT_NEAR(got.lrt, want.lrt, 1e-5);
  ASSERT_EQ(got.pooled.frequencies.size(), want.pooled.frequencies.size());
  for (std::size_t h = 0; h < want.pooled.frequencies.size(); ++h) {
    EXPECT_NEAR(got.pooled.frequencies[h], want.pooled.frequencies[h], 1e-6);
  }
}

TEST(FromPatterns, RejectsUnsortedPatterns) {
  std::vector<GenotypePattern> unsorted{{2, 0, 0, 3.0}, {1, 0, 0, 2.0}};
  EXPECT_TRUE(GenotypePatternTable::pattern_order(unsorted[1], unsorted[0]));
  EXPECT_DEATH((void)GenotypePatternTable::from_patterns(
                   2, 5.0, 0, std::move(unsorted)),
               "precondition");
}

}  // namespace
}  // namespace ldga::stats
