#include "stats/contingency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/special.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace ldga::stats {
namespace {

ContingencyTable example_2x3() {
  // Row totals 50/50, column totals 30/40/30, grand 100.
  ContingencyTable t(2, 3);
  t.set(0, 0, 20);
  t.set(0, 1, 20);
  t.set(0, 2, 10);
  t.set(1, 0, 10);
  t.set(1, 1, 20);
  t.set(1, 2, 20);
  return t;
}

TEST(ContingencyTable, Totals) {
  const auto t = example_2x3();
  EXPECT_DOUBLE_EQ(t.row_total(0), 50.0);
  EXPECT_DOUBLE_EQ(t.row_total(1), 50.0);
  EXPECT_DOUBLE_EQ(t.col_total(0), 30.0);
  EXPECT_DOUBLE_EQ(t.col_total(1), 40.0);
  EXPECT_DOUBLE_EQ(t.col_total(2), 30.0);
  EXPECT_DOUBLE_EQ(t.grand_total(), 100.0);
}

TEST(ContingencyTable, ExpectedUnderIndependence) {
  const auto t = example_2x3();
  EXPECT_DOUBLE_EQ(t.expected(0, 0), 15.0);
  EXPECT_DOUBLE_EQ(t.expected(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(t.expected(1, 2), 15.0);
}

TEST(ContingencyTable, PearsonChiSquareByHand) {
  const auto t = example_2x3();
  // chi2 = sum (o-e)^2/e = 25/15*4 + 0 = 6.6667 with cells (20,15)x2,
  // (10,15)x2, (20,20)x2.
  const auto chi = t.pearson_chi_square();
  EXPECT_NEAR(chi.statistic, 4 * (25.0 / 15.0), 1e-9);
  EXPECT_EQ(chi.df, 2u);
  EXPECT_NEAR(chi.p_value, chi_square_sf(chi.statistic, 2.0), 1e-12);
}

TEST(ContingencyTable, IndependentTableHasZeroStatistic) {
  ContingencyTable t(2, 2);
  t.set(0, 0, 10);
  t.set(0, 1, 30);
  t.set(1, 0, 20);
  t.set(1, 1, 60);
  const auto chi = t.pearson_chi_square();
  EXPECT_NEAR(chi.statistic, 0.0, 1e-9);
  EXPECT_NEAR(chi.p_value, 1.0, 1e-9);
}

TEST(ContingencyTable, EmptyColumnsReduceDf) {
  ContingencyTable t(2, 4);
  t.set(0, 0, 10);
  t.set(0, 2, 5);
  t.set(1, 0, 5);
  t.set(1, 2, 10);
  // Columns 1 and 3 are empty: effective table is 2x2 -> df 1.
  EXPECT_EQ(t.pearson_chi_square().df, 1u);
}

TEST(ContingencyTable, DegenerateTableGivesZero) {
  ContingencyTable t(2, 2);
  t.set(0, 0, 5);
  t.set(0, 1, 5);  // row 1 all zero
  const auto chi = t.pearson_chi_square();
  EXPECT_DOUBLE_EQ(chi.statistic, 0.0);
  EXPECT_EQ(chi.df, 0u);
}

TEST(ContingencyTable, ClumpColumnsKeepsAndAggregates) {
  const auto t = example_2x3();
  const auto clumped = t.clump_columns({1});
  ASSERT_EQ(clumped.cols(), 2u);
  EXPECT_DOUBLE_EQ(clumped.at(0, 0), 20.0);   // kept column 1
  EXPECT_DOUBLE_EQ(clumped.at(0, 1), 30.0);   // rest: cols 0+2
  EXPECT_DOUBLE_EQ(clumped.at(1, 1), 30.0);
  EXPECT_DOUBLE_EQ(clumped.grand_total(), 100.0);
}

TEST(ContingencyTable, CollapseToTwo) {
  const auto t = example_2x3();
  const auto two = t.collapse_to_two({0, 2});
  ASSERT_EQ(two.cols(), 2u);
  EXPECT_DOUBLE_EQ(two.at(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(two.at(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(two.at(1, 0), 30.0);
  EXPECT_DOUBLE_EQ(two.at(1, 1), 20.0);
}

TEST(ContingencyTable, DropEmptyColumns) {
  ContingencyTable t(2, 3);
  t.set(0, 0, 1);
  t.set(1, 2, 2);
  const auto dropped = t.drop_empty_columns();
  EXPECT_EQ(dropped.cols(), 2u);
  EXPECT_DOUBLE_EQ(dropped.grand_total(), 3.0);
}

TEST(ContingencyTable, DropAllEmptyKeepsShapeValid) {
  ContingencyTable t(2, 3);
  const auto dropped = t.drop_empty_columns();
  EXPECT_EQ(dropped.cols(), 1u);
}

TEST(ContingencyTable, SampleNullPreservesMarginalsExactly) {
  const auto t = example_2x3();
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto null = t.sample_null(rng);
    for (std::uint32_t r = 0; r < 2; ++r) {
      EXPECT_DOUBLE_EQ(null.row_total(r), t.row_total(r));
    }
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(null.col_total(c), t.col_total(c));
    }
  }
}

TEST(ContingencyTable, SampleNullStatisticIsUsuallySmall) {
  // For a strongly associated observed table, null resamples should
  // rarely reach the observed statistic.
  ContingencyTable t(2, 2);
  t.set(0, 0, 40);
  t.set(0, 1, 10);
  t.set(1, 0, 10);
  t.set(1, 1, 40);
  const double observed = t.pearson_chi_square().statistic;
  Rng rng(7);
  int reached = 0;
  for (int trial = 0; trial < 400; ++trial) {
    if (t.sample_null(rng).pearson_chi_square().statistic >= observed) {
      ++reached;
    }
  }
  EXPECT_LT(reached, 4);
}

TEST(ContingencyTable, SampleNullRoundsFractionalCounts) {
  ContingencyTable t(2, 2);
  t.set(0, 0, 10.4);
  t.set(0, 1, 9.6);
  t.set(1, 0, 5.2);
  t.set(1, 1, 14.8);
  Rng rng(3);
  const auto null = t.sample_null(rng);
  EXPECT_DOUBLE_EQ(null.grand_total(), 40.0);
  EXPECT_DOUBLE_EQ(null.row_total(0), 20.0);
}

TEST(ContingencyTable, NullResamplesAreCalibrated) {
  // p-values of null resamples, scored against the analytic chi-square,
  // should be roughly uniform: their mean near 0.5 and a reasonable
  // share below 0.2. This ties sample_null and chi_square_sf together.
  ContingencyTable t(2, 3);
  t.set(0, 0, 40);
  t.set(0, 1, 35);
  t.set(0, 2, 25);
  t.set(1, 0, 38);
  t.set(1, 1, 36);
  t.set(1, 2, 26);
  Rng rng(99);
  RunningStats p_values;
  int below_02 = 0;
  const int trials = 600;
  for (int trial = 0; trial < trials; ++trial) {
    const auto chi = t.sample_null(rng).pearson_chi_square();
    p_values.add(chi.p_value);
    if (chi.p_value < 0.2) ++below_02;
  }
  EXPECT_NEAR(p_values.mean(), 0.5, 0.08);
  EXPECT_NEAR(below_02 / static_cast<double>(trials), 0.2, 0.08);
}

TEST(ContingencyTable, OutOfRangeDies) {
  const ContingencyTable t(2, 2);
  EXPECT_DEATH(t.at(2, 0), "precondition");
  EXPECT_DEATH(t.at(0, 2), "precondition");
}

}  // namespace
}  // namespace ldga::stats
