#include "stats/permutation.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::stats {
namespace {

using genomics::SnpIndex;

TEST(Permutation, ConfigValidation) {
  PermutationConfig config;
  config.permutations = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Permutation, PlantedSignalGetsSmallPValue) {
  const auto synthetic = ldga::testing::small_synthetic(12, 2, 515);
  PermutationConfig config;
  config.permutations = 99;
  config.seed = 3;
  const auto result = permutation_test(synthetic.dataset,
                                       synthetic.truth.snps, {}, config);
  EXPECT_GT(result.observed, result.permutation_mean);
  EXPECT_LE(result.p_value, 0.05 + 1e-12);
}

TEST(Permutation, NullSetGetsLargePValue) {
  // A pure-null cohort: no SNP set should look significant on average.
  genomics::SyntheticConfig data_config;
  data_config.snp_count = 10;
  data_config.affected_count = 40;
  data_config.unaffected_count = 40;
  data_config.unknown_count = 0;
  data_config.active_snp_count = 0;
  Rng rng(21);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);

  PermutationConfig config;
  config.permutations = 99;
  config.seed = 4;
  const auto result = permutation_test(
      synthetic.dataset, std::vector<SnpIndex>{1, 5}, {}, config);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(Permutation, DeterministicForSeed) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 616);
  PermutationConfig config;
  config.permutations = 50;
  config.seed = 9;
  const auto a = permutation_test(synthetic.dataset,
                                  std::vector<SnpIndex>{0, 3}, {}, config);
  const auto b = permutation_test(synthetic.dataset,
                                  std::vector<SnpIndex>{0, 3}, {}, config);
  EXPECT_EQ(a.ge_count, b.ge_count);
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
}

TEST(Permutation, WorkerCountDoesNotChangeResults) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 717);
  PermutationConfig serial;
  serial.permutations = 60;
  serial.seed = 11;
  serial.workers = 1;
  PermutationConfig parallel_config = serial;
  parallel_config.workers = 4;
  const auto a = permutation_test(synthetic.dataset,
                                  std::vector<SnpIndex>{2, 7}, {}, serial);
  const auto b = permutation_test(
      synthetic.dataset, std::vector<SnpIndex>{2, 7}, {}, parallel_config);
  EXPECT_EQ(a.ge_count, b.ge_count);
  EXPECT_DOUBLE_EQ(a.permutation_mean, b.permutation_mean);
}

TEST(Permutation, PValueBounds) {
  const auto synthetic = ldga::testing::small_synthetic(10, 2, 818);
  PermutationConfig config;
  config.permutations = 19;
  const auto result = permutation_test(synthetic.dataset,
                                       std::vector<SnpIndex>{0, 1}, {},
                                       config);
  EXPECT_GE(result.p_value, 1.0 / 20.0 - 1e-12);
  EXPECT_LE(result.p_value, 1.0);
  EXPECT_GE(result.permutation_max, result.permutation_mean);
}

}  // namespace
}  // namespace ldga::stats
