#include "stats/evaluation_service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "parallel/fault_injection.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"

namespace ldga::stats {
namespace {

class EvaluationServiceTest : public ::testing::Test {
 protected:
  EvaluationServiceTest()
      : synthetic_(ldga::testing::small_synthetic(12, 2, 4242)),
        evaluator_(synthetic_.dataset),
        service_(evaluator_, make_serial_backend(evaluator_)) {}

  genomics::SyntheticDataset synthetic_;
  HaplotypeEvaluator evaluator_;
  EvaluationService service_;
};

TEST_F(EvaluationServiceTest, EvaluationCountEqualsUniqueCandidates) {
  // 9 tasks, 5 distinct candidates; the backend must run the pipeline
  // exactly once per distinct candidate.
  const std::vector<Candidate> batch = {
      {0, 1}, {2, 3}, {0, 1}, {4, 5, 6}, {2, 3},
      {0, 1}, {7, 8}, {4, 5, 6}, {9, 10, 11}};
  const auto results = service_.evaluate(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(evaluator_.evaluation_count(), 5u);

  const auto& stats = service_.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.candidates, 9u);
  EXPECT_EQ(stats.duplicates, 4u);
  EXPECT_EQ(stats.dispatched, 5u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST_F(EvaluationServiceTest, DuplicatePositionsGetTheFirstOccurrenceValue) {
  const std::vector<Candidate> batch = {
      {0, 1}, {2, 3}, {0, 1}, {4, 5, 6}, {2, 3}, {0, 1}};
  const auto results = service_.evaluate(batch);
  EXPECT_EQ(results[2], results[0]);
  EXPECT_EQ(results[5], results[0]);
  EXPECT_EQ(results[4], results[1]);
  // And every position matches an independent evaluator exactly.
  const HaplotypeEvaluator reference(synthetic_.dataset);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i], reference.fitness(batch[i])) << "task " << i;
  }
}

TEST_F(EvaluationServiceTest, RepeatBatchIsAnsweredFromTheCache) {
  const std::vector<Candidate> batch = {{0, 1}, {2, 3}, {4, 5, 6}};
  const auto first = service_.evaluate(batch);
  const auto before = service_.stats();
  EXPECT_EQ(before.dispatched, 3u);

  const auto second = service_.evaluate(batch);
  EXPECT_EQ(second, first);
  const auto& after = service_.stats();
  EXPECT_EQ(after.batches, 2u);
  EXPECT_EQ(after.cache_hits, before.cache_hits + 3u);
  EXPECT_EQ(after.dispatched, before.dispatched);  // nothing re-dispatched
  EXPECT_EQ(evaluator_.evaluation_count(), 3u);    // pipeline ran 3x total
}

TEST_F(EvaluationServiceTest, MixedBatchSplitsHitsDuplicatesAndMisses) {
  service_.evaluate(std::vector<Candidate>{{0, 1}, {2, 3}});
  // {0,1} is a cross-generation cache hit, {7,8} appears twice (one
  // dispatch + one duplicate), {4,5} is a fresh miss.
  const std::vector<Candidate> batch = {{0, 1}, {7, 8}, {4, 5}, {7, 8}};
  const auto results = service_.evaluate(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(results[1], results[3]);

  const auto& stats = service_.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.candidates, 6u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.dispatched, 4u);  // {0,1}, {2,3}, then {7,8}, {4,5}
  EXPECT_EQ(evaluator_.evaluation_count(), 4u);
}

TEST_F(EvaluationServiceTest, EmptyBatchIsANoOp) {
  const auto results = service_.evaluate(std::vector<Candidate>{});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(service_.stats().batches, 1u);
  EXPECT_EQ(service_.stats().candidates, 0u);
  EXPECT_EQ(evaluator_.evaluation_count(), 0u);
}

TEST_F(EvaluationServiceTest, AccountingHoldsAcrossBackends) {
  // The probe-once / compute-once contract is backend-independent:
  // each distinct candidate costs exactly one pipeline run no matter
  // which backend executes it.
  const std::vector<Candidate> batch = {
      {0, 1}, {2, 3}, {0, 1}, {4, 5, 6}, {2, 3}, {7, 9}, {0, 1}};
  const auto serial = service_.evaluate(batch);

  const auto pooled_synthetic = ldga::testing::small_synthetic(12, 2, 4242);
  HaplotypeEvaluator pooled_evaluator(pooled_synthetic.dataset);
  BackendOptions options;
  options.workers = 3;
  EvaluationService pooled(pooled_evaluator,
                           make_thread_pool_backend(pooled_evaluator, options));
  const auto threaded = pooled.evaluate(batch);

  EXPECT_EQ(threaded, serial);
  EXPECT_EQ(pooled_evaluator.evaluation_count(), 4u);
  EXPECT_EQ(evaluator_.evaluation_count(), 4u);
  EXPECT_EQ(pooled.stats().dispatched, service_.stats().dispatched);
}

TEST_F(EvaluationServiceTest, ProvenanceHintsCountOnlyDispatchedDerivedChildren) {
  // Warm {0,1} into the fitness cache so it resolves as a hit below.
  service_.evaluate(std::vector<Candidate>{{0, 1}});

  // Of the five tasks only {0,1,2} yields a hint: {2,3} has no known
  // parent, the second {0,1,2} is an in-batch duplicate, {4,5} equals
  // its parent (no derivation), and {0,1} is a cache hit that never
  // reaches a worker.
  const std::vector<Candidate> batch = {
      {0, 1, 2}, {2, 3}, {0, 1, 2}, {4, 5}, {0, 1}};
  const std::vector<Candidate> parents = {
      {0, 1}, {}, {0, 1}, {4, 5}, {0, 1}};
  const auto results = service_.evaluate(batch, parents);
  ASSERT_EQ(results.size(), batch.size());

  const auto& stats = service_.stats();
  EXPECT_EQ(stats.hints, 1u);
  EXPECT_EQ(stats.dispatched, 1u + 3u);  // {0,1}, then the three misses
  EXPECT_EQ(evaluator_.incremental_stats().provenance_hints, 1u);

  // Provenance is an optimization hint, never a semantic input: every
  // position still matches an independent evaluator exactly.
  const HaplotypeEvaluator reference(synthetic_.dataset);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i], reference.fitness(batch[i])) << "task " << i;
  }
}

TEST_F(EvaluationServiceTest, ProvenanceOverloadDegradesToPlainEvaluate) {
  // The one-argument path forwards with empty provenance — identical
  // results, no hints registered.
  const std::vector<Candidate> batch = {{0, 1}, {2, 3, 4}, {5, 6}};
  const auto plain = service_.evaluate(batch);
  EXPECT_EQ(service_.stats().hints, 0u);
  EXPECT_EQ(evaluator_.incremental_stats().provenance_hints, 0u);

  const auto sibling = ldga::testing::small_synthetic(12, 2, 4242);
  HaplotypeEvaluator evaluator(sibling.dataset);
  EvaluationService withParents(evaluator, make_serial_backend(evaluator));
  std::vector<Candidate> parents = {{0, 1, 7}, {2, 4}, {5, 6, 9}};
  const auto hinted = withParents.evaluate(batch, parents);
  EXPECT_EQ(hinted, plain);
  EXPECT_EQ(withParents.stats().hints, 3u);
}

TEST_F(EvaluationServiceTest, BatchedDispatchIsBitIdenticalAcrossBackends) {
  // Mixed sizes with duplicates: the service dedups, size-sorts, and —
  // with the default config — routes the misses through
  // fitness_and_cache_batch (grouped SoA EM, batched CLUMP
  // replicates). With batch_kernels off the same service runs the
  // historical per-candidate loop. Batching is a scheduling decision,
  // never arithmetic: both routes must agree bit for bit on every
  // backend, including when a FaultInjector forces the retry ladder
  // through first-attempt failures.
  const std::vector<Candidate> batch = {
      {0, 1}, {4, 5, 6}, {2, 3},    {0, 1},    {1, 2, 3, 4}, {9, 10},
      {7, 8}, {2, 3},    {5, 7, 9}, {0, 2, 4}, {3, 11},      {1, 6, 8, 11}};

  EvaluatorConfig unbatched_config;
  unbatched_config.batch_kernels = false;
  const HaplotypeEvaluator reference(synthetic_.dataset, unbatched_config);
  std::vector<double> expected;
  for (const auto& snps : batch) expected.push_back(reference.fitness(snps));

  using Factory = std::shared_ptr<EvaluationBackend> (*)(
      const HaplotypeEvaluator&, BackendOptions);
  struct BackendCase {
    const char* label;
    Factory make;
    bool batches;  // farm workers evaluate per task — no batched runs
  };
  const BackendCase cases[] = {
      {"serial", &make_serial_backend, true},
      {"thread_pool", &make_thread_pool_backend, true},
      {"farm", &make_farm_backend, false}};
  for (const auto& test_case : cases) {
    for (const bool faulted : {false, true}) {
      HaplotypeEvaluator evaluator(synthetic_.dataset);  // batched default
      ASSERT_TRUE(evaluator.batch_dispatch_eligible());
      BackendOptions options;
      options.workers = 3;
      if (faulted) {
        parallel::FaultInjector::Config fault_config;
        fault_config.throw_on_tasks = {0, 2, 4};
        options.fault_injector =
            std::make_shared<parallel::FaultInjector>(fault_config);
        options.farm_policy.max_task_retries = 2;
      }
      EvaluationService service(evaluator, test_case.make(evaluator, options));
      const auto results = service.evaluate(batch);
      ASSERT_EQ(results.size(), batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(results[i], expected[i])
            << test_case.label << (faulted ? " faulted" : "") << " task " << i;
      }
      if (test_case.batches) {
        // The batched path really ran: grouped EM lanes were recorded.
        EXPECT_GT(evaluator.em_batch_lanes(), 0u) << test_case.label;
        EXPECT_GE(evaluator.em_batch_lanes(), evaluator.em_batch_runs());
      }
      if (faulted) {
        EXPECT_EQ(options.fault_injector->injected_throws(), 3u)
            << test_case.label;
      }
    }
  }
}

TEST_F(EvaluationServiceTest, MismatchedProvenanceLengthIsAPrecondition) {
  const std::vector<Candidate> batch = {{0, 1}, {2, 3}};
  const std::vector<Candidate> parents = {{0, 1}};
  EXPECT_DEATH(service_.evaluate(batch, parents), "precondition");
}

}  // namespace
}  // namespace ldga::stats
