#include "ga/constraints.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ldga::ga {
namespace {

/// Builds LD and frequency tables from the tiny dataset.
struct Tables {
  genomics::Dataset dataset = ldga::testing::tiny_dataset();
  genomics::LdMatrix ld = genomics::LdMatrix::compute(dataset);
  genomics::AlleleFrequencyTable freqs =
      genomics::AlleleFrequencyTable::estimate(dataset);
};

TEST(FeasibilityFilter, DefaultAcceptsEverything) {
  const FeasibilityFilter filter;
  EXPECT_FALSE(filter.enabled());
  EXPECT_TRUE(filter.pair_feasible(0, 1));
  EXPECT_TRUE(filter.feasible(std::vector<SnpIndex>{0, 1, 2}));
  EXPECT_TRUE(filter.addition_feasible(std::vector<SnpIndex>{0}, 1));
}

TEST(FeasibilityFilter, PermissiveConfigIsDisabled) {
  const Tables tables;
  ConstraintConfig config;  // defaults: T_d = 1, T_f = 0
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  EXPECT_FALSE(filter.enabled());
}

TEST(FeasibilityFilter, DPrimeThresholdFiltersTightPairs) {
  const Tables tables;
  ConstraintConfig config;
  config.max_pairwise_d_prime = 0.0;  // nothing passes unless D' == 0
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  EXPECT_TRUE(filter.enabled());
  bool any_rejected = false;
  for (SnpIndex a = 0; a < 4; ++a) {
    for (SnpIndex b = a + 1; b < 4; ++b) {
      if (!filter.pair_feasible(a, b)) any_rejected = true;
    }
  }
  EXPECT_TRUE(any_rejected);
}

TEST(FeasibilityFilter, FrequencyGapThreshold) {
  const Tables tables;
  ConstraintConfig config;
  config.min_frequency_gap = 2.0;  // impossible: gap <= 0.5
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  for (SnpIndex a = 0; a < 4; ++a) {
    for (SnpIndex b = a + 1; b < 4; ++b) {
      EXPECT_FALSE(filter.pair_feasible(a, b));
    }
  }
}

TEST(FeasibilityFilter, SetFeasibilityRequiresAllPairs) {
  const Tables tables;
  ConstraintConfig config;
  config.max_pairwise_d_prime = 0.999;
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  // Find an infeasible pair, then check any superset is infeasible.
  for (SnpIndex a = 0; a < 4; ++a) {
    for (SnpIndex b = a + 1; b < 4; ++b) {
      if (!filter.pair_feasible(a, b)) {
        for (SnpIndex c = 0; c < 4; ++c) {
          if (c == a || c == b) continue;
          EXPECT_FALSE(filter.feasible(
              HaplotypeIndividual({a, b, c}).snps()));
        }
      }
    }
  }
}

TEST(FeasibilityFilter, AdditionRejectsDuplicates) {
  const Tables tables;
  ConstraintConfig config;
  config.max_pairwise_d_prime = 0.9999;
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  EXPECT_FALSE(filter.addition_feasible(std::vector<SnpIndex>{1, 2}, 2));
}

TEST(FeasibilityFilter, RandomFeasibleSatisfiesFilterWhenPossible) {
  const Tables tables;
  ConstraintConfig config;
  config.max_pairwise_d_prime = 0.95;
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  Rng rng(3);
  int feasible = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto individual = filter.random_feasible(4, 2, rng);
    EXPECT_EQ(individual.size(), 2u);
    if (filter.feasible(individual.snps())) ++feasible;
  }
  // With only C(4,2)=6 pairs some may be infeasible, but feasible draws
  // must dominate when feasible pairs exist.
  EXPECT_GT(feasible, 15);
}

TEST(FeasibilityFilter, RandomFeasibleFallsBackWhenImpossible) {
  const Tables tables;
  ConstraintConfig config;
  config.min_frequency_gap = 2.0;  // nothing is feasible
  const FeasibilityFilter filter(tables.ld, tables.freqs, config);
  Rng rng(4);
  const auto individual = filter.random_feasible(4, 2, rng, 10);
  EXPECT_EQ(individual.size(), 2u);  // best-effort result, not a hang
}

}  // namespace
}  // namespace ldga::ga
