#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace ldga::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, FuturePropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(10, 20, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 10 && i < 20 ? 1 : 0);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&touched](std::size_t) { touched = true; });
  pool.parallel_for(7, 3, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 3, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++done;
      });
    }
  }
  // Queue is drained before workers exit.
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, ZeroThreadsDies) {
  EXPECT_DEATH(ThreadPool(0), "precondition");
}

}  // namespace
}  // namespace ldga::parallel
