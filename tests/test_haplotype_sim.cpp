#include "genomics/haplotype_sim.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ldga::genomics {
namespace {

TEST(HaplotypeSimConfig, ValidatesFields) {
  HaplotypeSimConfig config;
  config.founder_count = 1;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.maf_min = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.maf_min = 0.4;
  config.maf_max = 0.2;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.maf_max = 0.7;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.switch_rate_per_kb = -0.1;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  config.mutation_rate = 0.6;
  EXPECT_THROW(config.validate(), ConfigError);

  config = {};
  EXPECT_NO_THROW(config.validate());
}

TEST(HaplotypeSimulator, SamplesHaveFullLength) {
  const SnpPanel panel = SnpPanel::uniform(17);
  Rng rng(1);
  const HaplotypeSimulator simulator(panel, {}, rng);
  const Haplotype h = simulator.sample(rng);
  EXPECT_EQ(h.size(), 17u);
  for (const Allele a : h) {
    EXPECT_TRUE(a == Allele::One || a == Allele::Two);
  }
}

TEST(HaplotypeSimulator, DeterministicForFixedSeed) {
  const SnpPanel panel = SnpPanel::uniform(20);
  Rng rng1(9), rng2(9);
  const HaplotypeSimulator sim1(panel, {}, rng1);
  const HaplotypeSimulator sim2(panel, {}, rng2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sim1.sample(rng1), sim2.sample(rng2));
  }
}

TEST(HaplotypeSimulator, FounderPoolHasConfiguredSize) {
  const SnpPanel panel = SnpPanel::uniform(5);
  HaplotypeSimConfig config;
  config.founder_count = 7;
  Rng rng(2);
  const HaplotypeSimulator simulator(panel, config, rng);
  EXPECT_EQ(simulator.founders().size(), 7u);
  EXPECT_EQ(simulator.site_frequencies().size(), 5u);
}

TEST(HaplotypeSimulator, SiteFrequenciesRespectMafRange) {
  const SnpPanel panel = SnpPanel::uniform(200);
  HaplotypeSimConfig config;
  config.maf_min = 0.2;
  config.maf_max = 0.4;
  Rng rng(3);
  const HaplotypeSimulator simulator(panel, config, rng);
  for (const double f : simulator.site_frequencies()) {
    const double maf = f < 0.5 ? f : 1.0 - f;
    EXPECT_GE(maf, 0.2 - 1e-12);
    EXPECT_LE(maf, 0.4 + 1e-12);
  }
}

TEST(HaplotypeSimulator, ZeroSwitchRateCopiesWholeFounders) {
  // With no recombination and no mutation every sampled haplotype must
  // be one of the founders verbatim.
  const SnpPanel panel = SnpPanel::uniform(30);
  HaplotypeSimConfig config;
  config.switch_rate_per_kb = 0.0;
  config.mutation_rate = 0.0;
  Rng rng(4);
  const HaplotypeSimulator simulator(panel, config, rng);
  for (int i = 0; i < 20; ++i) {
    const Haplotype h = simulator.sample(rng);
    bool is_founder = false;
    for (const auto& founder : simulator.founders()) {
      if (founder == h) {
        is_founder = true;
        break;
      }
    }
    EXPECT_TRUE(is_founder);
  }
}

TEST(HaplotypeSimulator, HighSwitchRateBreaksUpFounders) {
  // With a very high switch rate most samples should match no founder.
  const SnpPanel panel = SnpPanel::uniform(30, 100.0);
  HaplotypeSimConfig config;
  config.switch_rate_per_kb = 1.0;  // switch virtually every marker
  config.mutation_rate = 0.0;
  Rng rng(5);
  const HaplotypeSimulator simulator(panel, config, rng);
  int founder_copies = 0;
  for (int i = 0; i < 50; ++i) {
    const Haplotype h = simulator.sample(rng);
    for (const auto& founder : simulator.founders()) {
      if (founder == h) {
        ++founder_copies;
        break;
      }
    }
  }
  EXPECT_LT(founder_copies, 10);
}

}  // namespace
}  // namespace ldga::genomics
