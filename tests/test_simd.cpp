// Runtime-dispatched SIMD kernels (util/simd.hpp): every vector level
// available on the host must reproduce the scalar reference — bit for
// bit for the integer kernels (which are always on) and to 1e-9 for
// the flag-gated floating-point kernels. Tail handling gets its own
// sweep: the cohort word counts the evaluator actually produces are
// rarely multiples of the vector width, and the per-word bit counts
// 0, 1, 63, 64 sit exactly on the carry edges of the nibble-LUT and
// vpopcnt paths.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "genomics/packed_genotype.hpp"
#include "stats/eval_scratch.hpp"
#include "stats/evaluator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ldga::util {
namespace {

/// Every level the host can run, always headed by scalar.
std::vector<SimdLevel> levels() { return simd_available_levels(); }

/// Word sizes straddling the 256- and 512-bit strides (4- and 8-word
/// blocks) plus the empty and single-word edges.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 11, 15, 16, 17, 31, 32, 33, 63, 64, 65, 67};

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

/// Words whose popcounts sit on the edge cases 0, 1, 63, 64 — and a
/// 65-bit count split across two words.
std::vector<std::uint64_t> edge_words() {
  return {0,
          1,
          std::uint64_t{1} << 63,
          ~std::uint64_t{0},
          ~std::uint64_t{0} >> 1,
          ~(std::uint64_t{1} << 31),
          ~std::uint64_t{0},
          1};
}

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  const auto available = levels();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.front(), SimdLevel::kScalar);
  EXPECT_NE(simd().popcount_words, nullptr);
  EXPECT_NE(simd().combine_planes_count, nullptr);
}

TEST(SimdDispatch, ForceLevelRoundTrip) {
  for (const SimdLevel level : levels()) {
    simd_force_level(level);
    EXPECT_EQ(simd_level(), level);
    EXPECT_EQ(&simd(), &simd_kernels_for(level));
  }
  simd_force_level(std::nullopt);
  // Back on the environment-derived default (LDGA_SIMD may pin a level
  // below the detected one in the CI matrix), table and level agree.
  EXPECT_EQ(&simd(), &simd_kernels_for(simd_level()));
}

TEST(SimdDispatch, UnavailableLevelThrows) {
  const auto available = levels();
  for (const SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kAvx512,
                                SimdLevel::kNeon}) {
    bool have = false;
    for (const SimdLevel a : available) have = have || a == level;
    if (!have) {
      EXPECT_THROW(simd_force_level(level), ConfigError);
      EXPECT_THROW(simd_kernels_for(level), ConfigError);
    }
  }
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2,
                                SimdLevel::kAvx512, SimdLevel::kNeon}) {
    const auto parsed = simd_level_from_name(simd_level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(simd_level_from_name("sse9").has_value());
}

TEST(SimdKernelsTest, PopcountTails) {
  const SimdKernels& scalar = simd_kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : levels()) {
    const SimdKernels& kernels = simd_kernels_for(level);
    for (const std::size_t n : kSizes) {
      const auto words = random_words(n, 11 + n);
      EXPECT_EQ(kernels.popcount_words(words.data(), n),
                scalar.popcount_words(words.data(), n))
          << simd_level_name(level) << " n=" << n;
    }
    const auto edges = edge_words();
    for (std::size_t n = 0; n <= edges.size(); ++n) {
      EXPECT_EQ(kernels.popcount_words(edges.data(), n),
                scalar.popcount_words(edges.data(), n))
          << simd_level_name(level) << " edge n=" << n;
    }
  }
}

TEST(SimdKernelsTest, CombinePlanesTails) {
  const SimdKernels& scalar = simd_kernels_for(SimdLevel::kScalar);
  constexpr std::uint64_t kKeep = 0;
  constexpr std::uint64_t kFlip = ~std::uint64_t{0};
  for (const SimdLevel level : levels()) {
    const SimdKernels& kernels = simd_kernels_for(level);
    for (const std::size_t n : kSizes) {
      const auto parent = random_words(n, 3 * n + 1);
      const auto lo = random_words(n, 3 * n + 2);
      const auto hi = random_words(n, 3 * n + 3);
      std::vector<std::uint64_t> out_ref(n), out_vec(n);
      for (const std::uint64_t fl : {kKeep, kFlip}) {
        for (const std::uint64_t fh : {kKeep, kFlip}) {
          const std::uint64_t any_ref = scalar.combine_planes(
              parent.data(), lo.data(), hi.data(), fl, fh, n,
              out_ref.data());
          const std::uint64_t any_vec = kernels.combine_planes(
              parent.data(), lo.data(), hi.data(), fl, fh, n,
              out_vec.data());
          EXPECT_EQ(any_vec, any_ref)
              << simd_level_name(level) << " n=" << n;
          EXPECT_EQ(out_vec, out_ref) << simd_level_name(level) << " n=" << n;

          const std::uint64_t count_ref = scalar.combine_planes_count(
              parent.data(), lo.data(), hi.data(), fl, fh, n,
              out_ref.data());
          const std::uint64_t count_vec = kernels.combine_planes_count(
              parent.data(), lo.data(), hi.data(), fl, fh, n,
              out_vec.data());
          EXPECT_EQ(count_vec, count_ref)
              << simd_level_name(level) << " n=" << n;
          EXPECT_EQ(count_ref,
                    scalar.popcount_words(out_ref.data(), n));
          EXPECT_EQ(out_vec, out_ref) << simd_level_name(level) << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, CombinePlanesCountPruningSignal) {
  // An all-zero intersection must return exactly 0 (the DFS prunes on
  // it); a single surviving bit in the tail word must return 1.
  for (const SimdLevel level : levels()) {
    const SimdKernels& kernels = simd_kernels_for(level);
    const std::size_t n = 13;
    std::vector<std::uint64_t> parent(n, 0), lo(n, ~std::uint64_t{0}),
        hi(n, ~std::uint64_t{0}), out(n, ~std::uint64_t{0});
    EXPECT_EQ(kernels.combine_planes_count(parent.data(), lo.data(),
                                           hi.data(), 0, 0, n, out.data()),
              0u)
        << simd_level_name(level);
    for (const std::uint64_t w : out) EXPECT_EQ(w, 0u);
    parent[n - 1] = std::uint64_t{1} << 63;
    EXPECT_EQ(kernels.combine_planes_count(parent.data(), lo.data(),
                                           hi.data(), 0, 0, n, out.data()),
              1u)
        << simd_level_name(level);
  }
}

TEST(SimdKernelsTest, PlaneCountsTails) {
  const SimdKernels& scalar = simd_kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : levels()) {
    const SimdKernels& kernels = simd_kernels_for(level);
    for (const std::size_t n : kSizes) {
      const auto lo = random_words(n, 5 * n + 1);
      const auto hi = random_words(n, 5 * n + 2);
      std::uint64_t ref[3], vec[3];
      scalar.plane_counts(lo.data(), hi.data(), n, ref);
      kernels.plane_counts(lo.data(), hi.data(), n, vec);
      EXPECT_EQ(vec[0], ref[0]) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(vec[1], ref[1]) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(vec[2], ref[2]) << simd_level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, FloatKernelsMatchScalarTo1e9) {
  const SimdKernels& scalar = simd_kernels_for(SimdLevel::kScalar);
  Rng rng(404);
  const std::size_t support = 97;
  std::vector<double> freq(support);
  for (auto& f : freq) f = rng.uniform() + 1e-6;
  for (const SimdLevel level : levels()) {
    const SimdKernels& kernels = simd_kernels_for(level);
    for (const std::size_t n : kSizes) {
      std::vector<std::uint32_t> h1(n), h2(n);
      for (std::size_t t = 0; t < n; ++t) {
        h1[t] = static_cast<std::uint32_t>(rng.below(support));
        h2[t] = static_cast<std::uint32_t>(rng.below(support));
      }
      std::vector<double> ref(n), vec(n);
      const double sum_ref = scalar.weighted_pair_products(
          freq.data(), h1.data(), h2.data(), n, 0.5, ref.data());
      const double sum_vec = kernels.weighted_pair_products(
          freq.data(), h1.data(), h2.data(), n, 0.5, vec.data());
      EXPECT_NEAR(sum_vec, sum_ref, 1e-9 * std::abs(sum_ref) + 1e-300)
          << simd_level_name(level) << " n=" << n;
      for (std::size_t t = 0; t < n; ++t) {
        EXPECT_NEAR(vec[t], ref[t], 1e-12 * std::abs(ref[t]) + 1e-300);
      }
      scalar.scale_values(ref.data(), n, 3.25);
      kernels.scale_values(vec.data(), n, 3.25);
      for (std::size_t t = 0; t < n; ++t) {
        EXPECT_NEAR(vec[t], ref[t], 1e-12 * std::abs(ref[t]) + 1e-300);
      }

      std::vector<double> top(n), bottom(n), cells(n), cols(n);
      for (std::size_t c = 0; c < n; ++c) {
        top[c] = 30.0 * rng.uniform();
        bottom[c] = 30.0 * rng.uniform();
        cells[c] = 20.0 * rng.uniform();
        // Exercise the col_sums <= 0 skip lane on a tail-odd stride.
        cols[c] = (c % 5 == 3) ? 0.0 : cells[c] + 20.0 * rng.uniform();
      }
      double row0 = 0.0, row1 = 0.0, total = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        row0 += top[c];
        row1 += bottom[c];
        total += cells[c] + cols[c];
      }
      if (n == 0) { row0 = row1 = 1.0; }
      if (total <= 0.0) total = 1.0;
      std::vector<double> chi_ref(n), chi_vec(n);
      scalar.chi_columns(top.data(), bottom.data(), n, 0.5, 0.25, row0,
                         row1, chi_ref.data());
      kernels.chi_columns(top.data(), bottom.data(), n, 0.5, 0.25, row0,
                          row1, chi_vec.data());
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_NEAR(chi_vec[c], chi_ref[c],
                    1e-9 * std::abs(chi_ref[c]) + 1e-300)
            << simd_level_name(level) << " n=" << n << " c=" << c;
      }
      const double p_ref = scalar.pearson_row_terms(
          cells.data(), cols.data(), n, row0, total);
      const double p_vec = kernels.pearson_row_terms(
          cells.data(), cols.data(), n, row0, total);
      EXPECT_NEAR(p_vec, p_ref, 1e-9 * std::abs(p_ref) + 1e-300)
          << simd_level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, BatchKernelsMatchPerCandidatePathBitForBit) {
  // The batch kernels carry a stronger contract than the 1e-9 envelope
  // of the per-candidate FP kernels: every lane/replicate must
  // reproduce the per-candidate code path bit for bit at the same
  // dispatch level, so grouping candidates is a pure scheduling
  // decision. batch_weighted_pair_products lanes replay the scalar
  // ascending-t short-fan order (that is the per-candidate path for
  // fans below kSimdMinPairs at every level); batch_chi_columns and
  // batch_pearson_2xn replicates replay this level's own chi_columns /
  // pearson_row_terms. Sweep every batch/replicate count 1–33 against
  // every fan/column count 0–67: the cross covers empty shapes, both
  // vector widths' body/tail boundaries, and odd remainders on both
  // axes. Mismatches are counted with plain compares (tens of millions
  // of lanes) and only reported through ADD_FAILURE, capped per level.
  const SimdKernels& scalar = simd_kernels_for(SimdLevel::kScalar);
  for (const SimdLevel level : levels()) {
    const SimdKernels& kernels = simd_kernels_for(level);
    int failures = 0;
    const auto expect_bits = [&](double got, double want, const char* kernel,
                                 std::size_t batch, std::size_t n,
                                 std::size_t lane, std::size_t t) {
      if (got == want) return true;
      if (++failures <= 8) {
        ADD_FAILURE() << simd_level_name(level) << ' ' << kernel
                      << " batch=" << batch << " n=" << n << " lane=" << lane
                      << " t=" << t << ": got " << got << " want " << want;
      }
      return false;
    };
    for (std::size_t batch = 1; batch <= 33 && failures <= 8; ++batch) {
      for (std::size_t n = 0; n <= 67; ++n) {
        Rng rng(1000003 * batch + n);

        // batch_weighted_pair_products: SoA freq lanes (deliberately
        // padded stride), t-major products, per-lane ascending-t sums.
        const std::size_t support = 19;
        const std::size_t stride = support + batch % 3;
        std::vector<double> freq(batch * stride);
        for (auto& f : freq) f = rng.uniform() + 1e-6;
        std::vector<std::uint32_t> h1(n), h2(n);
        for (std::size_t t = 0; t < n; ++t) {
          h1[t] = static_cast<std::uint32_t>(rng.below(support));
          h2[t] = static_cast<std::uint32_t>(rng.below(support));
        }
        std::vector<double> products(n * batch, -1.0), sums(batch, -1.0);
        kernels.batch_weighted_pair_products(freq.data(), stride, h1.data(),
                                             h2.data(), n, 0.75, batch,
                                             products.data(), sums.data());
        std::vector<double> lane_products(n);
        for (std::size_t b = 0; b < batch; ++b) {
          const double lane_sum = scalar.weighted_pair_products(
              freq.data() + b * stride, h1.data(), h2.data(), n, 0.75,
              lane_products.data());
          expect_bits(sums[b], lane_sum, "batch_weighted sum", batch, n, b, 0);
          for (std::size_t t = 0; t < n; ++t) {
            expect_bits(products[t * batch + b], lane_products[t],
                        "batch_weighted product", batch, n, b, t);
          }
        }

        // batch_chi_columns: replicate-major slab, each replicate
        // bit-identical to a standalone chi_columns call at this level
        // — through both the nullptr (all-zero, scalar fuses the slab)
        // and the per-replicate shift paths.
        const std::size_t reps = batch;
        std::vector<double> top(reps * n), bottom(reps * n);
        for (auto& v : top) v = 30.0 * rng.uniform();
        for (auto& v : bottom) v = 30.0 * rng.uniform();
        const double row0 = 40.0 * static_cast<double>(n + 2);
        const double row1 = 37.5 * static_cast<double>(n + 2);
        std::vector<double> add_top(reps), add_bottom(reps);
        for (std::size_t r = 0; r < reps; ++r) {
          add_top[r] = rng.uniform();
          add_bottom[r] = rng.uniform();
        }
        std::vector<double> out(reps * n, -1.0), ref(n, -1.0);
        kernels.batch_chi_columns(top.data(), bottom.data(), n, reps, nullptr,
                                  nullptr, row0, row1, out.data());
        for (std::size_t r = 0; r < reps; ++r) {
          kernels.chi_columns(top.data() + r * n, bottom.data() + r * n, n,
                              0.0, 0.0, row0, row1, ref.data());
          for (std::size_t c = 0; c < n; ++c) {
            expect_bits(out[r * n + c], ref[c], "batch_chi zero-shift", batch,
                        n, r, c);
          }
        }
        kernels.batch_chi_columns(top.data(), bottom.data(), n, reps,
                                  add_top.data(), add_bottom.data(), row0,
                                  row1, out.data());
        for (std::size_t r = 0; r < reps; ++r) {
          kernels.chi_columns(top.data() + r * n, bottom.data() + r * n, n,
                              add_top[r], add_bottom[r], row0, row1,
                              ref.data());
          for (std::size_t c = 0; c < n; ++c) {
            expect_bits(out[r * n + c], ref[c], "batch_chi shifted", batch, n,
                        r, c);
          }
        }

        // batch_pearson_2xn: shared hoisted marginals (with zero-sum
        // skip columns), both rows' terms per replicate — and each
        // row's contribution dropped when its row sum is non-positive.
        std::vector<double> col_sums(n);
        double total = 0.0;
        for (std::size_t c = 0; c < n; ++c) {
          col_sums[c] = (c % 7 == 5) ? 0.0 : 10.0 + 10.0 * rng.uniform();
          total += col_sums[c];
        }
        if (total <= 0.0) total = 1.0;
        const double row0_sum = 12.5, row1_sum = 9.75;
        std::vector<double> pear(reps, -1.0);
        const auto row_terms = [&](const double* cells, double row_sum) {
          return row_sum > 0.0 ? kernels.pearson_row_terms(
                                     cells, col_sums.data(), n, row_sum, total)
                               : 0.0;
        };
        // Both rows live, then each row dead in turn.
        const double guards[3][2] = {
            {row0_sum, row1_sum}, {0.0, row1_sum}, {row0_sum, 0.0}};
        for (int guard = 0; guard < 3; ++guard) {
          const double r0 = guards[guard][0];
          const double r1 = guards[guard][1];
          kernels.batch_pearson_2xn(top.data(), bottom.data(),
                                    col_sums.data(), n, reps, r0, r1, total,
                                    pear.data());
          for (std::size_t r = 0; r < reps; ++r) {
            const double want = row_terms(top.data() + r * n, r0) +
                                row_terms(bottom.data() + r * n, r1);
            expect_bits(pear[r], want, "batch_pearson", batch, n, r,
                        static_cast<std::size_t>(guard));
          }
        }
      }
    }
    EXPECT_EQ(failures, 0) << simd_level_name(level);
  }
}

// ---------------------------------------------------------------------
// End-to-end dispatch equivalence on the evaluation pipeline itself.
// ---------------------------------------------------------------------

class SimdPipeline : public ::testing::Test {
 protected:
  void TearDown() override { simd_force_level(std::nullopt); }
};

TEST_F(SimdPipeline, PatternTablesBitExactAcrossLevels) {
  // The integer kernels are always on, so the packed DFS must produce
  // identical tables at every dispatch level — same patterns, same
  // counts, same order.
  const auto synthetic = ldga::testing::small_synthetic();
  const genomics::PackedGenotypeMatrix packed(synthetic.dataset.genotypes());
  const std::vector<genomics::SnpIndex> snps{0, 2, 5};

  struct Leaf {
    std::uint32_t hom_two, het, missing, count;
  };
  std::vector<std::vector<Leaf>> per_level;
  for (const SimdLevel level : levels()) {
    simd_force_level(level);
    std::vector<Leaf> leaves;
    packed.for_each_pattern(
        snps, [&](std::uint32_t hom_two, std::uint32_t het,
                  std::uint32_t missing, std::uint32_t count) {
          leaves.push_back({hom_two, het, missing, count});
        });
    per_level.push_back(std::move(leaves));
  }
  for (std::size_t i = 1; i < per_level.size(); ++i) {
    ASSERT_EQ(per_level[i].size(), per_level[0].size());
    for (std::size_t j = 0; j < per_level[0].size(); ++j) {
      EXPECT_EQ(per_level[i][j].hom_two, per_level[0][j].hom_two);
      EXPECT_EQ(per_level[i][j].het, per_level[0][j].het);
      EXPECT_EQ(per_level[i][j].missing, per_level[0][j].missing);
      EXPECT_EQ(per_level[i][j].count, per_level[0][j].count);
    }
  }
}

TEST_F(SimdPipeline, EvaluatorFlagOffIsBitExactAcrossLevels) {
  // With simd_kernels forced off (the scalar reference configuration —
  // the flag defaults on since the candidate-batched path landed),
  // fitness must be bit-for-bit identical at every dispatch level:
  // only integer kernels differ.
  const auto synthetic = ldga::testing::small_synthetic();
  const std::vector<genomics::SnpIndex> snps{1, 3, 4};
  stats::EvaluatorConfig config;
  config.simd_kernels = false;
  std::vector<double> fitness;
  for (const SimdLevel level : levels()) {
    simd_force_level(level);
    stats::HaplotypeEvaluator evaluator(synthetic.dataset, config);
    fitness.push_back(evaluator.fitness(snps));
  }
  for (std::size_t i = 1; i < fitness.size(); ++i) {
    EXPECT_EQ(fitness[i], fitness[0])
        << simd_level_name(levels()[i]);
  }
}

TEST_F(SimdPipeline, EvaluatorFlagOnMatchesScalarTo1e9) {
  const auto synthetic = ldga::testing::small_synthetic();
  const std::vector<genomics::SnpIndex> snps{0, 1, 4};
  stats::EvaluatorConfig reference_config;
  reference_config.simd_kernels = false;  // the scalar reference path
  stats::HaplotypeEvaluator reference(synthetic.dataset, reference_config);
  const double expected = reference.fitness(snps);

  stats::EvaluatorConfig config;
  config.simd_kernels = true;
  for (const SimdLevel level : levels()) {
    simd_force_level(level);
    stats::HaplotypeEvaluator evaluator(synthetic.dataset, config);
    const double got = evaluator.fitness(snps);
    EXPECT_NEAR(got, expected, 1e-9 * std::abs(expected) + 1e-12)
        << simd_level_name(level);
  }
}

TEST_F(SimdPipeline, ScratchReuseIsDeterministic) {
  // One arena reused across differently-sized candidates must yield
  // the same results as a fresh arena per candidate: the kernels treat
  // EvalScratch as capacity only.
  const auto synthetic = ldga::testing::small_synthetic();
  stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  const std::vector<std::vector<genomics::SnpIndex>> candidates{
      {0, 1, 2, 3, 5}, {4}, {0, 5}, {1, 2, 6}, {4}};
  stats::EvalScratch reused;
  for (const auto& snps : candidates) {
    stats::EvalScratch fresh;
    const auto with_reused = evaluator.evaluate_full(snps, reused);
    const auto with_fresh = evaluator.evaluate_full(snps, fresh);
    EXPECT_EQ(with_reused.fitness, with_fresh.fitness);
    EXPECT_EQ(with_reused.lrt, with_fresh.lrt);
    EXPECT_EQ(with_reused.em_iterations_total, with_fresh.em_iterations_total);
  }
}

}  // namespace
}  // namespace ldga::util
