#include "genomics/dataset_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.hpp"
#include "util/error.hpp"

namespace ldga::genomics {
namespace {

Dataset round_trip(const Dataset& dataset) {
  std::stringstream stream;
  write_dataset(stream, dataset);
  return read_dataset(stream);
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  const Dataset original = ldga::testing::tiny_dataset();
  const Dataset copy = round_trip(original);
  ASSERT_EQ(copy.individual_count(), original.individual_count());
  ASSERT_EQ(copy.snp_count(), original.snp_count());
  for (std::uint32_t i = 0; i < original.individual_count(); ++i) {
    EXPECT_EQ(copy.status(i), original.status(i));
    for (SnpIndex s = 0; s < original.snp_count(); ++s) {
      EXPECT_EQ(copy.genotypes().at(i, s), original.genotypes().at(i, s));
    }
  }
  for (SnpIndex s = 0; s < original.snp_count(); ++s) {
    EXPECT_EQ(copy.panel().name(s), original.panel().name(s));
    EXPECT_DOUBLE_EQ(copy.panel().position_kb(s),
                     original.panel().position_kb(s));
  }
}

TEST(DatasetIo, RoundTripWithMissingAndUnknown) {
  auto synthetic = ldga::testing::small_synthetic();
  const Dataset copy = round_trip(synthetic.dataset);
  EXPECT_EQ(copy.count(Status::Affected),
            synthetic.dataset.count(Status::Affected));
}

TEST(DatasetIo, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "snp rs1 0.0\n"
      "snp rs2 12.5  # trailing comment\n"
      "ind i1 A 11 12\n"
      "ind i2 U 22 00\n");
  const Dataset dataset = read_dataset(in);
  EXPECT_EQ(dataset.snp_count(), 2u);
  EXPECT_EQ(dataset.individual_count(), 2u);
  EXPECT_EQ(dataset.genotypes().at(0, 1), Genotype::Het);
  EXPECT_EQ(dataset.genotypes().at(1, 1), Genotype::Missing);
  EXPECT_DOUBLE_EQ(dataset.panel().position_kb(1), 12.5);
}

TEST(DatasetIo, Accepts21AsHet) {
  std::istringstream in("snp rs1 0\nind i1 A 21\n");
  EXPECT_EQ(read_dataset(in).genotypes().at(0, 0), Genotype::Het);
}

TEST(DatasetIo, RejectsBadStatus) {
  std::istringstream in("snp rs1 0\nind i1 X 11\n");
  EXPECT_THROW(read_dataset(in), DataError);
}

TEST(DatasetIo, RejectsBadGenotype) {
  std::istringstream in("snp rs1 0\nind i1 A 13\n");
  EXPECT_THROW(read_dataset(in), DataError);
}

TEST(DatasetIo, RejectsWrongGenotypeCount) {
  std::istringstream in("snp rs1 0\nsnp rs2 1\nind i1 A 11\n");
  EXPECT_THROW(read_dataset(in), DataError);
}

TEST(DatasetIo, RejectsSnpAfterIndividuals) {
  std::istringstream in("snp rs1 0\nind i1 A 11\nsnp rs2 1\n");
  EXPECT_THROW(read_dataset(in), DataError);
}

TEST(DatasetIo, RejectsUnknownRecord) {
  std::istringstream in("marker rs1 0\n");
  EXPECT_THROW(read_dataset(in), DataError);
}

TEST(DatasetIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(read_dataset(in), DataError);
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/path/file.txt"), DataError);
}

TEST(FrequencyTableIo, RoundTrip) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  const auto table = AlleleFrequencyTable::estimate(dataset);
  std::stringstream stream;
  write_frequency_table(stream, dataset.panel(), table);
  const auto reloaded = read_frequency_table(stream, dataset.panel());
  for (SnpIndex s = 0; s < dataset.snp_count(); ++s) {
    EXPECT_NEAR(reloaded.at(s).freq_one, table.at(s).freq_one, 1e-9);
    EXPECT_NEAR(reloaded.at(s).freq_two, table.at(s).freq_two, 1e-9);
  }
}

TEST(FrequencyTableIo, MissingMarkerThrows) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  std::istringstream in("snp0001 0.5 0.5\n");  // others missing
  EXPECT_THROW(read_frequency_table(in, dataset.panel()), DataError);
}

TEST(LdTableIo, RoundTrip) {
  const Dataset dataset = ldga::testing::tiny_dataset();
  const auto matrix = LdMatrix::compute(dataset);
  std::stringstream stream;
  write_ld_table(stream, dataset.panel(), matrix);
  const auto reloaded = read_ld_table(stream, dataset.panel());
  for (SnpIndex a = 0; a + 1 < dataset.snp_count(); ++a) {
    for (SnpIndex b = a + 1; b < dataset.snp_count(); ++b) {
      EXPECT_NEAR(reloaded.at(a, b).d_prime, matrix.at(a, b).d_prime, 1e-9);
      EXPECT_NEAR(reloaded.at(a, b).r2, matrix.at(a, b).r2, 1e-9);
    }
  }
}

}  // namespace
}  // namespace ldga::genomics
