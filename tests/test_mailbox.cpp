#include "parallel/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"

namespace ldga::parallel {
namespace {

Message make_message(TaskId source, std::int32_t tag) {
  Message m;
  m.source = source;
  m.tag = tag;
  return m;
}

TEST(Mailbox, FifoWithinMatchingMessages) {
  Mailbox box;
  Message first = make_message(1, 5);
  first.payload = {1};
  Message second = make_message(1, 5);
  second.payload = {2};
  box.deliver(std::move(first));
  box.deliver(std::move(second));
  EXPECT_EQ(box.receive().payload[0], 1);
  EXPECT_EQ(box.receive().payload[0], 2);
}

TEST(Mailbox, SelectiveReceiveByTag) {
  Mailbox box;
  box.deliver(make_message(1, 10));
  box.deliver(make_message(1, 20));
  const Message m = box.receive(kAnySource, 20);
  EXPECT_EQ(m.tag, 20);
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_EQ(box.receive().tag, 10);
}

TEST(Mailbox, SelectiveReceiveBySource) {
  Mailbox box;
  box.deliver(make_message(3, 1));
  box.deliver(make_message(7, 1));
  EXPECT_EQ(box.receive(7).source, 7);
  EXPECT_EQ(box.receive(3).source, 3);
}

TEST(Mailbox, TryReceiveDoesNotBlock) {
  Mailbox box;
  EXPECT_FALSE(box.try_receive().has_value());
  box.deliver(make_message(1, 2));
  const auto m = box.try_receive(kAnySource, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 2);
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, TryReceiveLeavesNonMatching) {
  Mailbox box;
  box.deliver(make_message(1, 2));
  EXPECT_FALSE(box.try_receive(kAnySource, 3).has_value());
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, ProbeSeesWithoutConsuming) {
  Mailbox box;
  EXPECT_FALSE(box.probe());
  box.deliver(make_message(2, 9));
  EXPECT_TRUE(box.probe());
  EXPECT_TRUE(box.probe(2, 9));
  EXPECT_FALSE(box.probe(3));
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, BlockingReceiveWakesOnDelivery) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.deliver(make_message(4, 44));
  });
  const Message m = box.receive(4, 44);
  EXPECT_EQ(m.tag, 44);
  producer.join();
}

TEST(Mailbox, CloseUnblocksReceiverWithError) {
  Mailbox box;
  std::thread closer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  });
  EXPECT_THROW(box.receive(), ParallelError);
  closer.join();
  EXPECT_TRUE(box.closed());
}

TEST(Mailbox, DeliveryAfterCloseIsDropped) {
  Mailbox box;
  box.close();
  box.deliver(make_message(1, 1));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, DrainsQueuedBeforeCloseError) {
  // receive() must fail once closed, even if the queue still matches
  // nothing; but queued matching messages are still deliverable.
  Mailbox box;
  box.deliver(make_message(1, 1));
  box.close();
  EXPECT_EQ(box.receive().tag, 1);
  EXPECT_THROW(box.receive(), ParallelError);
}

}  // namespace
}  // namespace ldga::parallel
