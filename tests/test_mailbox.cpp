#include "parallel/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/transport_error.hpp"
#include "util/error.hpp"

namespace ldga::parallel {
namespace {

Message make_message(TaskId source, std::int32_t tag) {
  Message m;
  m.source = source;
  m.tag = tag;
  return m;
}

TEST(Mailbox, FifoWithinMatchingMessages) {
  Mailbox box;
  Message first = make_message(1, 5);
  first.payload = {1};
  Message second = make_message(1, 5);
  second.payload = {2};
  ASSERT_TRUE(box.deliver(std::move(first)));
  ASSERT_TRUE(box.deliver(std::move(second)));
  EXPECT_EQ(box.receive().payload[0], 1);
  EXPECT_EQ(box.receive().payload[0], 2);
}

TEST(Mailbox, SelectiveReceiveByTag) {
  Mailbox box;
  ASSERT_TRUE(box.deliver(make_message(1, 10)));
  ASSERT_TRUE(box.deliver(make_message(1, 20)));
  const Message m = box.receive(kAnySource, 20);
  EXPECT_EQ(m.tag, 20);
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_EQ(box.receive().tag, 10);
}

TEST(Mailbox, SelectiveReceiveBySource) {
  Mailbox box;
  ASSERT_TRUE(box.deliver(make_message(3, 1)));
  ASSERT_TRUE(box.deliver(make_message(7, 1)));
  EXPECT_EQ(box.receive(7).source, 7);
  EXPECT_EQ(box.receive(3).source, 3);
}

TEST(Mailbox, TryReceiveDoesNotBlock) {
  Mailbox box;
  EXPECT_FALSE(box.try_receive().has_value());
  ASSERT_TRUE(box.deliver(make_message(1, 2)));
  const auto m = box.try_receive(kAnySource, 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 2);
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, TryReceiveLeavesNonMatching) {
  Mailbox box;
  ASSERT_TRUE(box.deliver(make_message(1, 2)));
  EXPECT_FALSE(box.try_receive(kAnySource, 3).has_value());
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, ProbeSeesWithoutConsuming) {
  Mailbox box;
  EXPECT_FALSE(box.probe());
  ASSERT_TRUE(box.deliver(make_message(2, 9)));
  EXPECT_TRUE(box.probe());
  EXPECT_TRUE(box.probe(2, 9));
  EXPECT_FALSE(box.probe(3));
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, BlockingReceiveWakesOnDelivery) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(box.deliver(make_message(4, 44)));
  });
  const Message m = box.receive(4, 44);
  EXPECT_EQ(m.tag, 44);
  producer.join();
}

TEST(Mailbox, CloseUnblocksReceiverWithError) {
  Mailbox box;
  std::thread closer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  });
  EXPECT_THROW(box.receive(), ParallelError);
  closer.join();
  EXPECT_TRUE(box.closed());
}

TEST(Mailbox, DeliveryAfterCloseIsRefused) {
  // The false return is the sender's typed signal: the transport layer
  // turns it into TransportClosed instead of losing the message quietly.
  Mailbox box;
  box.close();
  EXPECT_FALSE(box.deliver(make_message(1, 1)));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, DrainsQueuedBeforeCloseError) {
  // receive() must fail once closed, even if the queue still matches
  // nothing; but queued matching messages are still deliverable.
  Mailbox box;
  ASSERT_TRUE(box.deliver(make_message(1, 1)));
  box.close();
  EXPECT_EQ(box.receive().tag, 1);
  EXPECT_THROW(box.receive(), ParallelError);
}

// ---- close/shutdown edge cases (ISSUE 6 satellite) -------------------

TEST(Mailbox, CloseWakesEveryBlockedReceiverWithTransportClosed) {
  Mailbox box;
  std::atomic<int> closed_errors{0};
  std::vector<std::thread> receivers;
  for (int i = 0; i < 4; ++i) {
    receivers.emplace_back([&box, &closed_errors] {
      try {
        (void)box.receive(7, 7);  // nothing will ever match
      } catch (const TransportClosed&) {
        ++closed_errors;
      }
    });
  }
  // Give the receivers a moment to block, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.close();
  for (auto& receiver : receivers) receiver.join();
  EXPECT_EQ(closed_errors.load(), 4);
}

TEST(Mailbox, CloseIsSafeWithConcurrentSenders) {
  // Senders racing a close must each get a definite verdict — true
  // (queued before the close) or false (refused) — and the mailbox must
  // end up closed with no receiver able to block forever.
  Mailbox box;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> refused{0};
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (box.deliver(make_message(1, i))) {
          ++accepted;
        } else {
          ++refused;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  box.close();
  for (auto& sender : senders) sender.join();
  EXPECT_EQ(accepted.load() + refused.load(), 2000u);
  EXPECT_EQ(box.pending(), accepted.load());
  EXPECT_TRUE(box.closed());
  // And a straggler arriving after everything settled is refused too.
  EXPECT_FALSE(box.deliver(make_message(9, 9)));
}

TEST(Mailbox, TimedReceiveExpiringAgainstCloseIsAlwaysDefinite) {
  // A receive_for whose timeout races the close must resolve one of
  // exactly two ways — timeout (empty) or TransportClosed — never a
  // hang, never a crash. Run several laps to give the race both
  // outcomes a chance.
  for (int lap = 0; lap < 20; ++lap) {
    Mailbox box;
    std::atomic<bool> definite{false};
    std::thread receiver([&box, &definite] {
      try {
        const auto message = box.receive_for(std::chrono::milliseconds(2));
        definite = !message.has_value();  // timeout path
      } catch (const TransportClosed&) {
        definite = true;  // close path
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    box.close();
    receiver.join();
    EXPECT_TRUE(definite.load()) << "lap " << lap;
  }
}

TEST(Mailbox, TimedReceiveThrowsTypedErrorWhenClosedMidWait) {
  Mailbox box;
  std::thread closer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  });
  // Long timeout: the close must interrupt it, not the clock.
  EXPECT_THROW((void)box.receive_for(std::chrono::seconds(30)),
               TransportClosed);
  closer.join();
}

TEST(Mailbox, CloseIsIdempotent) {
  Mailbox box;
  box.close();
  box.close();
  EXPECT_TRUE(box.closed());
  EXPECT_THROW(box.receive(), TransportClosed);
}

}  // namespace
}  // namespace ldga::parallel
