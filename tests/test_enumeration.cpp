#include "analysis/enumeration.hpp"

#include <gtest/gtest.h>

#include <map>

#include "test_support.hpp"
#include "util/combinatorics.hpp"
#include "util/error.hpp"

namespace ldga::analysis {
namespace {

using genomics::SnpIndex;

const stats::HaplotypeEvaluator& shared_evaluator() {
  static const auto synthetic = ldga::testing::small_synthetic(9, 2, 17);
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  return evaluator;
}

TEST(Enumeration, CountsEveryCandidate) {
  EnumerationConfig config;
  config.workers = 1;
  const auto result = enumerate_all(shared_evaluator(), 2, config);
  EXPECT_EQ(result.evaluated, choose(9, 2));
  EXPECT_EQ(result.haplotype_size, 2u);
}

TEST(Enumeration, TopListIsSortedBestFirst) {
  EnumerationConfig config;
  config.top_n = 5;
  const auto result = enumerate_all(shared_evaluator(), 2, config);
  ASSERT_EQ(result.best.size(), 5u);
  for (std::size_t i = 1; i < result.best.size(); ++i) {
    EXPECT_GE(result.best[i - 1].fitness, result.best[i].fitness);
  }
}

TEST(Enumeration, TopMatchesSerialSweep) {
  // The parallel top-N must equal the best found by a serial full sweep.
  double best_fitness = -1.0;
  std::vector<SnpIndex> best_snps;
  enumerate_scores(shared_evaluator(), 2,
                   [&](const std::vector<SnpIndex>& snps, double fitness) {
                     if (fitness > best_fitness) {
                       best_fitness = fitness;
                       best_snps = snps;
                     }
                   });
  const auto result = enumerate_all(shared_evaluator(), 2);
  ASSERT_FALSE(result.best.empty());
  EXPECT_NEAR(result.best.front().fitness, best_fitness, 1e-9);
  EXPECT_EQ(result.best.front().snps, best_snps);
}

class EnumerationWorkers : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EnumerationWorkers, WorkerCountDoesNotChangeResults) {
  EnumerationConfig config;
  config.workers = GetParam();
  config.top_n = 4;
  const auto result = enumerate_all(shared_evaluator(), 3, config);

  EnumerationConfig serial;
  serial.workers = 1;
  serial.top_n = 4;
  const auto reference = enumerate_all(shared_evaluator(), 3, serial);

  EXPECT_EQ(result.evaluated, reference.evaluated);
  ASSERT_EQ(result.best.size(), reference.best.size());
  for (std::size_t i = 0; i < result.best.size(); ++i) {
    EXPECT_EQ(result.best[i].snps, reference.best[i].snps);
    EXPECT_DOUBLE_EQ(result.best[i].fitness, reference.best[i].fitness);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnumerationWorkers,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Enumeration, ScoresVisitLexicographicOrder) {
  std::vector<std::vector<SnpIndex>> order;
  enumerate_scores(shared_evaluator(), 2,
                   [&](const std::vector<SnpIndex>& snps, double) {
                     order.push_back(snps);
                   });
  ASSERT_EQ(order.size(), choose(9, 2));
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

TEST(Enumeration, SizeOneWorks) {
  const auto result = enumerate_all(shared_evaluator(), 1);
  EXPECT_EQ(result.evaluated, 9u);
}

TEST(Enumeration, FullPanelSizeWorks) {
  const auto result = enumerate_all(shared_evaluator(), 9);
  EXPECT_EQ(result.evaluated, 1u);
  EXPECT_EQ(result.best.front().snps.size(), 9u);
}

TEST(Enumeration, RefusesIntractableRequests) {
  EnumerationConfig config;
  config.max_candidates = 10;
  EXPECT_THROW(enumerate_all(shared_evaluator(), 3, config), ConfigError);
  EXPECT_THROW(enumerate_scores(
                   shared_evaluator(), 3,
                   [](const std::vector<SnpIndex>&, double) {}, 10),
               ConfigError);
}

}  // namespace
}  // namespace ldga::analysis
