#include "util/combinatorics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace ldga {
namespace {

TEST(Choose, BaseCases) {
  EXPECT_EQ(choose(0, 0), 1u);
  EXPECT_EQ(choose(5, 0), 1u);
  EXPECT_EQ(choose(5, 5), 1u);
  EXPECT_EQ(choose(5, 1), 5u);
  EXPECT_EQ(choose(5, 6), 0u);
}

TEST(Choose, PaperTable1Values) {
  // These are exactly the rows of the paper's Table 1.
  EXPECT_EQ(choose(51, 2), 1'275u);
  EXPECT_EQ(choose(51, 3), 20'825u);
  EXPECT_EQ(choose(51, 4), 249'900u);
  EXPECT_EQ(choose(51, 5), 2'349'060u);
  EXPECT_EQ(choose(51, 6), 18'009'460u);
  EXPECT_EQ(choose(150, 2), 11'175u);
  EXPECT_EQ(choose(150, 3), 551'300u);
  EXPECT_EQ(choose(150, 4), 20'260'275u);
  EXPECT_EQ(choose(150, 5), 591'600'030u);
  EXPECT_EQ(choose(249, 2), 30'876u);
  EXPECT_EQ(choose(249, 3), 2'542'124u);
  EXPECT_EQ(choose(249, 4), 156'340'626u);
}

TEST(Choose, SymmetryProperty) {
  for (std::uint32_t n = 1; n <= 40; ++n) {
    for (std::uint32_t k = 0; k <= n; ++k) {
      EXPECT_EQ(choose(n, k), choose(n, n - k)) << n << " " << k;
    }
  }
}

TEST(Choose, PascalIdentityProperty) {
  for (std::uint32_t n = 2; n <= 50; ++n) {
    for (std::uint32_t k = 1; k < n; ++k) {
      EXPECT_EQ(choose(n, k), choose(n - 1, k - 1) + choose(n - 1, k));
    }
  }
}

TEST(Choose, LargeValueStillExact) {
  EXPECT_EQ(choose(62, 31), 465428353255261088ULL);
  EXPECT_EQ(choose(60, 30), 118264581564861424ULL);
}

TEST(Choose, OverflowThrows) {
  EXPECT_THROW(choose(70, 35), ConfigError);
  EXPECT_THROW(choose(249, 30), ConfigError);
}

TEST(ChooseOverflows, AgreesWithChoose) {
  EXPECT_FALSE(choose_overflows(62, 31));
  EXPECT_TRUE(choose_overflows(70, 35));
  EXPECT_FALSE(choose_overflows(249, 4));
  EXPECT_TRUE(choose_overflows(249, 30));
  EXPECT_FALSE(choose_overflows(10, 20));  // k > n: count is 0
}

TEST(LogChoose, MatchesExactForSmall) {
  for (std::uint32_t n = 1; n <= 30; ++n) {
    for (std::uint32_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_choose(n, k),
                  std::log(static_cast<double>(choose(n, k))), 1e-9);
    }
  }
}

TEST(LogChoose, KGreaterThanNIsMinusInfinity) {
  EXPECT_EQ(log_choose(3, 5), -std::numeric_limits<double>::infinity());
}

// --- SubsetEnumerator --------------------------------------------------

struct EnumCase {
  std::uint32_t n;
  std::uint32_t k;
};

class SubsetEnumeration : public ::testing::TestWithParam<EnumCase> {};

TEST_P(SubsetEnumeration, VisitsExactlyAllSubsetsInLexOrder) {
  const auto [n, k] = GetParam();
  SubsetEnumerator it(n, k);
  std::set<std::vector<std::uint32_t>> seen;
  std::vector<std::uint32_t> previous;
  std::uint64_t count = 0;
  while (!it.done()) {
    const auto& current = it.current();
    ASSERT_EQ(current.size(), k);
    EXPECT_TRUE(std::is_sorted(current.begin(), current.end()));
    for (const auto v : current) EXPECT_LT(v, n);
    if (count > 0) {
      EXPECT_LT(previous, current);  // strict lex order
    }
    seen.insert(current);
    previous = current;
    ++count;
    it.next();
  }
  EXPECT_EQ(count, choose(n, k));
  EXPECT_EQ(seen.size(), count);  // all distinct
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubsetEnumeration,
                         ::testing::Values(EnumCase{1, 1}, EnumCase{4, 0},
                                           EnumCase{4, 4}, EnumCase{6, 2},
                                           EnumCase{8, 3}, EnumCase{10, 5},
                                           EnumCase{12, 1}));

TEST(SubsetEnumeration, KGreaterThanNIsImmediatelyDone) {
  SubsetEnumerator it(3, 5);
  EXPECT_TRUE(it.done());
}

TEST(SubsetEnumeration, EmptySubsetEnumeratedOnce) {
  SubsetEnumerator it(5, 0);
  ASSERT_FALSE(it.done());
  EXPECT_TRUE(it.current().empty());
  it.next();
  EXPECT_TRUE(it.done());
}

}  // namespace
}  // namespace ldga
