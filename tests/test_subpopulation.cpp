#include "ga/subpopulation.hpp"

#include <gtest/gtest.h>

namespace ldga::ga {
namespace {

HaplotypeIndividual scored(std::vector<SnpIndex> snps, double fitness) {
  HaplotypeIndividual individual(std::move(snps));
  individual.set_fitness(fitness);
  return individual;
}

TEST(Subpopulation, AddInitialFillsToCapacity) {
  Subpopulation sub(2, 3);
  EXPECT_TRUE(sub.add_initial(scored({0, 1}, 1.0)));
  EXPECT_TRUE(sub.add_initial(scored({0, 2}, 2.0)));
  EXPECT_FALSE(sub.full());
  EXPECT_TRUE(sub.add_initial(scored({1, 2}, 3.0)));
  EXPECT_TRUE(sub.full());
}

TEST(Subpopulation, AddInitialRejectsDuplicates) {
  Subpopulation sub(2, 3);
  EXPECT_TRUE(sub.add_initial(scored({0, 1}, 1.0)));
  EXPECT_FALSE(sub.add_initial(scored({0, 1}, 9.0)));
  EXPECT_EQ(sub.size(), 1u);
}

TEST(Subpopulation, InsertWhenNotFullAlwaysAccepts) {
  Subpopulation sub(2, 2);
  EXPECT_TRUE(sub.try_insert(scored({0, 1}, -5.0)));
  EXPECT_EQ(sub.size(), 1u);
}

TEST(Subpopulation, InsertReplacesWorstWhenBetter) {
  Subpopulation sub(2, 2);
  sub.try_insert(scored({0, 1}, 1.0));
  sub.try_insert(scored({0, 2}, 2.0));
  // Better than worst (1.0): replaces it.
  EXPECT_TRUE(sub.try_insert(scored({1, 2}, 1.5)));
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_FALSE(sub.contains(scored({0, 1}, 0.0)));
  EXPECT_TRUE(sub.contains(scored({1, 2}, 0.0)));
}

TEST(Subpopulation, InsertRejectsWorseOrEqualWhenFull) {
  Subpopulation sub(2, 2);
  sub.try_insert(scored({0, 1}, 1.0));
  sub.try_insert(scored({0, 2}, 2.0));
  EXPECT_FALSE(sub.try_insert(scored({1, 2}, 1.0)));  // equal to worst
  EXPECT_FALSE(sub.try_insert(scored({1, 3}, 0.5)));  // worse
  EXPECT_TRUE(sub.contains(scored({0, 1}, 0.0)));
}

TEST(Subpopulation, InsertRejectsDuplicateEvenIfBetter) {
  // The paper's rule: "...and if it is not already in the population".
  Subpopulation sub(2, 2);
  sub.try_insert(scored({0, 1}, 1.0));
  sub.try_insert(scored({0, 2}, 2.0));
  EXPECT_FALSE(sub.try_insert(scored({0, 2}, 99.0)));
}

TEST(Subpopulation, WrongSizeDies) {
  Subpopulation sub(2, 2);
  EXPECT_DEATH(sub.try_insert(scored({0, 1, 2}, 1.0)), "precondition");
}

TEST(Subpopulation, UnevaluatedInsertDies) {
  Subpopulation sub(2, 2);
  HaplotypeIndividual unevaluated({0, 1});
  EXPECT_DEATH(sub.try_insert(std::move(unevaluated)), "precondition");
}

TEST(Subpopulation, BestWorstMean) {
  Subpopulation sub(2, 3);
  sub.add_initial(scored({0, 1}, 1.0));
  sub.add_initial(scored({0, 2}, 5.0));
  sub.add_initial(scored({1, 2}, 3.0));
  EXPECT_DOUBLE_EQ(sub.best().fitness(), 5.0);
  EXPECT_DOUBLE_EQ(sub.member(sub.worst_index()).fitness(), 1.0);
  EXPECT_DOUBLE_EQ(sub.mean_fitness(), 3.0);
}

TEST(Subpopulation, ReplaceOverwritesSlot) {
  Subpopulation sub(2, 2);
  sub.add_initial(scored({0, 1}, 1.0));
  sub.replace(0, scored({2, 3}, 7.0));
  EXPECT_DOUBLE_EQ(sub.member(0).fitness(), 7.0);
  EXPECT_EQ(sub.size(), 1u);
}

TEST(FitnessRange, NormalizesToUnitInterval) {
  const FitnessRange range{10.0, 30.0};
  EXPECT_DOUBLE_EQ(range.normalize(10.0), 0.0);
  EXPECT_DOUBLE_EQ(range.normalize(30.0), 1.0);
  EXPECT_DOUBLE_EQ(range.normalize(20.0), 0.5);
}

TEST(FitnessRange, ClampsOutOfSnapshotValues) {
  // Offspring can beat the snapshot best (or undercut the worst).
  const FitnessRange range{10.0, 30.0};
  EXPECT_DOUBLE_EQ(range.normalize(50.0), 1.0);
  EXPECT_DOUBLE_EQ(range.normalize(0.0), 0.0);
}

TEST(FitnessRange, DegenerateRangeMapsToZero) {
  const FitnessRange range{5.0, 5.0};
  EXPECT_DOUBLE_EQ(range.normalize(5.0), 0.0);
  EXPECT_DOUBLE_EQ(range.normalize(99.0), 0.0);
}

TEST(Subpopulation, FitnessRangeSnapshot) {
  Subpopulation sub(2, 3);
  sub.add_initial(scored({0, 1}, 2.0));
  sub.add_initial(scored({0, 2}, 8.0));
  const FitnessRange range = sub.fitness_range();
  EXPECT_DOUBLE_EQ(range.worst, 2.0);
  EXPECT_DOUBLE_EQ(range.best, 8.0);
}

}  // namespace
}  // namespace ldga::ga
