// Quickstart: the whole library in one small program.
//
// 1. Simulate a case/control cohort with a planted 3-SNP risk haplotype.
// 2. Build the EH-DIALL + CLUMP evaluation pipeline (paper Figure 3).
// 3. Run the parallel adaptive multipopulation GA (paper Figure 5).
// 4. Report the best haplotype per size and check the planted SNPs
//    were rediscovered.
#include <cstdio>

#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"

int main() {
  using namespace ldga;

  // --- 1. data ---------------------------------------------------------
  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;       // the paper's first study size
  data_config.affected_count = 53;  // 53 affected / 53 healthy / 70 unknown
  data_config.unaffected_count = 53;
  data_config.unknown_count = 70;
  data_config.active_snp_count = 3;  // planted risk haplotype size

  Rng rng(42);
  const genomics::SyntheticDataset synthetic =
      genomics::generate_synthetic(data_config, rng);

  std::printf("cohort: %u individuals x %u SNPs\n",
              synthetic.dataset.individual_count(),
              synthetic.dataset.snp_count());
  std::printf("planted risk SNPs (1-based):");
  for (const auto snp : synthetic.truth.snps) std::printf(" %u", snp + 1);
  std::printf("\n\n");

  // --- 2. evaluation pipeline ------------------------------------------
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  // --- 3. the GA --------------------------------------------------------
  ga::GaConfig config;
  config.max_size = 6;                  // paper §5.2.1
  config.population_size = 150;         // paper §5.2.1
  config.stagnation_generations = 100;  // stop after 100 stale generations
  config.random_immigrant_stagnation = 20;
  config.seed = 7;

  ga::GaEngine engine(evaluator, config,
                      stats::make_thread_pool_backend(evaluator));
  const ga::GaResult result = engine.run();

  // --- 4. report --------------------------------------------------------
  std::printf("GA finished after %u generations, %llu evaluations, "
              "%u immigrant waves\n\n",
              result.generations,
              static_cast<unsigned long long>(result.evaluations),
              result.immigrant_events);
  std::printf("%-6s %-24s %s\n", "size", "best haplotype (1-based)",
              "fitness");
  for (const auto& best : result.best_by_size) {
    std::printf("%-6u %-24s %.3f\n", best.size(), best.to_string().c_str(),
                best.fitness());
  }

  // How much of the planted haplotype do the winners recover? (With
  // finite cohorts the chi-square optimum need not be the causal set
  // itself, but its SNPs should recur in the winners.)
  std::uint32_t recovered = 0;
  for (const auto planted : synthetic.truth.snps) {
    for (const auto& best : result.best_by_size) {
      if (best.contains(planted)) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("\n%u of %zu planted SNPs appear among the per-size winners\n",
              recovered, synthetic.truth.snps.size());
  return 0;
}
