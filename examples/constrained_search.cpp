// The §2.3 feasibility conditions in action: a linkage-disequilibrium
// study restricts which SNPs may share a haplotype — their pairwise
// disequilibrium must stay below T_d (markers should tag different
// signals) and their minor-variant frequency gap must exceed T_f.
//
// This example computes the paper's two derived input tables (allele
// frequencies, pairwise disequilibrium), builds a FeasibilityFilter
// from user-style thresholds, shows how much of the pair space the
// thresholds eliminate, and runs the GA inside the constrained space.
#include <cstdio>

#include "ga/engine.hpp"
#include "genomics/allele_freq.hpp"
#include "genomics/ld.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"

int main() {
  using namespace ldga;

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.active_snp_count = 3;
  Rng rng(321);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);
  const genomics::Dataset& dataset = synthetic.dataset;

  // The paper's derived input tables (§5.1).
  const auto ld = genomics::LdMatrix::compute(dataset);
  const auto freqs = genomics::AlleleFrequencyTable::estimate(dataset);

  // Thresholds a biologist might set: forbid near-duplicate markers
  // (|D'| >= 0.8) and require some frequency separation.
  ga::ConstraintConfig constraints;
  constraints.max_pairwise_d_prime = 0.8;
  constraints.min_frequency_gap = 0.01;
  const ga::FeasibilityFilter filter(ld, freqs, constraints);

  std::uint32_t feasible_pairs = 0, total_pairs = 0;
  for (genomics::SnpIndex a = 0; a + 1 < dataset.snp_count(); ++a) {
    for (genomics::SnpIndex b = a + 1; b < dataset.snp_count(); ++b) {
      ++total_pairs;
      if (filter.pair_feasible(a, b)) ++feasible_pairs;
    }
  }
  std::printf("constraints: |D'| < %.2f and MAF gap >= %.2f\n",
              constraints.max_pairwise_d_prime,
              constraints.min_frequency_gap);
  std::printf("feasible SNP pairs: %u / %u (%.1f%%)\n\n", feasible_pairs,
              total_pairs, 100.0 * feasible_pairs / total_pairs);

  const stats::HaplotypeEvaluator evaluator(dataset);

  // Unconstrained vs constrained GA on the same data and budget.
  for (const bool constrained : {false, true}) {
    ga::GaConfig config;
    config.max_size = 5;
    config.population_size = 100;
    config.stagnation_generations = 50;
    config.max_generations = 250;
    config.seed = 8;

    const ga::FeasibilityFilter no_filter;
    const stats::HaplotypeEvaluator fresh(dataset);
    ga::GaEngine engine(fresh, config, constrained ? filter : no_filter,
                        stats::make_thread_pool_backend(fresh));
    const ga::GaResult result = engine.run();

    std::printf("%s search (%llu evaluations):\n",
                constrained ? "constrained" : "unconstrained",
                static_cast<unsigned long long>(result.evaluations));
    for (const auto& best : result.best_by_size) {
      std::printf("  size %u: %-22s fitness %.3f  %s\n", best.size(),
                  best.to_string().c_str(), best.fitness(),
                  filter.feasible(best.snps()) ? "[feasible]"
                                               : "[violates thresholds]");
    }
    std::printf("\n");
  }
  return 0;
}
