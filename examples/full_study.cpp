// A complete linkage-disequilibrium study, end to end — the workflow
// the paper's §6 describes biologists running "in an extensive manner":
//
//   1. load (or simulate) a case/control cohort,
//   2. search for candidate haplotypes of every size with the parallel
//      adaptive GA,
//   3. assess each winner with a selection-aware label-permutation test,
//   4. adjust the p-values for multiple testing (Benjamini-Hochberg),
//   5. report the surviving haplotypes with their internal LD structure
//      (are the selected SNPs tagging different signals?).
#include <cstdio>
#include <vector>

#include "ga/engine.hpp"
#include "genomics/ld.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"
#include "stats/multiple_testing.hpp"
#include "stats/permutation.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  // --- 1. cohort --------------------------------------------------------
  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.active_snp_count = 3;
  data_config.disease.relative_risk = 7.0;
  Rng rng(2004);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);
  std::printf("cohort: %u individuals x %u SNPs; planted SNPs (1-based):",
              synthetic.dataset.individual_count(),
              synthetic.dataset.snp_count());
  for (const auto snp : synthetic.truth.snps) std::printf(" %u", snp + 1);
  std::printf("\n\n");

  // --- 2. search ---------------------------------------------------------
  const stats::EvaluatorConfig eval_config;
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset, eval_config);
  ga::GaConfig config;
  config.population_size = 150;
  config.stagnation_generations = 80;
  config.max_generations = 400;
  config.seed = 17;
  ga::GaEngine engine(evaluator, config,
                      stats::make_thread_pool_backend(evaluator));
  const ga::GaResult result = engine.run();
  std::printf("GA: %u generations, %llu evaluations\n\n", result.generations,
              static_cast<unsigned long long>(result.evaluations));

  // --- 3. permutation significance per winner -----------------------------
  std::vector<double> p_values;
  for (const auto& best : result.best_by_size) {
    stats::PermutationConfig perm_config;
    perm_config.permutations = 199;
    perm_config.seed = 99;
    perm_config.workers = 0;
    const auto perm = stats::permutation_test(synthetic.dataset, best.snps(),
                                              eval_config, perm_config);
    p_values.push_back(perm.p_value);
  }

  // --- 4. multiple-testing adjustment -------------------------------------
  const auto q_values = stats::benjamini_hochberg_adjust(p_values);

  // --- 5. report -----------------------------------------------------------
  const auto ld = genomics::LdMatrix::compute(synthetic.dataset);
  TextTable table({"size", "haplotype (1-based)", "fitness", "perm p",
                   "BH q", "max internal |D'|", "verdict"});
  for (std::size_t s = 0; s < result.best_by_size.size(); ++s) {
    const auto& best = result.best_by_size[s];
    double max_dprime = 0.0;
    for (std::size_t i = 0; i + 1 < best.snps().size(); ++i) {
      for (std::size_t j = i + 1; j < best.snps().size(); ++j) {
        max_dprime = std::max(
            max_dprime, ld.at(best.snps()[i], best.snps()[j]).d_prime);
      }
    }
    table.add_row({std::to_string(best.size()), best.to_string(),
                   TextTable::num(best.fitness(), 2),
                   TextTable::num(p_values[s], 3),
                   TextTable::num(q_values[s], 3),
                   TextTable::num(max_dprime, 2),
                   q_values[s] <= 0.05 ? "SIGNIFICANT" : "not significant"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreading: permutation p-values correct for the GA's selection "
      "bias; BH q-values correct for testing one winner per size; the "
      "internal |D'| column flags haplotypes whose SNPs echo one signal "
      "(the paper's T_d condition exists for exactly this reason).\n");
  return 0;
}
