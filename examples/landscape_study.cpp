// Landscape study (paper §3): exhaustively enumerate small haplotype
// sizes, show how scores grow with size (why sizes are not comparable)
// and how often the best size-k haplotypes are NOT built from good
// size-(k-1) blocks (why constructive methods fail).
//
// Uses a reduced panel so the enumeration finishes in seconds; the
// bench variant (bench_landscape_structure) runs the paper-sized one.
#include <cstdio>

#include "analysis/landscape.hpp"
#include "analysis/search_space.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"

int main() {
  using namespace ldga;

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 25;
  data_config.active_snp_count = 3;
  Rng rng(2024);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  std::printf("search space for %u SNPs:\n", data_config.snp_count);
  for (const auto& row :
       analysis::search_space_table(data_config.snp_count, 2, 6)) {
    std::printf("  size %u: %s candidates\n", row.haplotype_size,
                row.formatted().c_str());
  }

  analysis::LandscapeConfig config;
  config.top_n = 10;
  config.block_quantile = 0.05;
  const analysis::LandscapeStudy study =
      analysis::run_landscape_study(evaluator, 2, 4, config);

  std::printf("\nper-size score landscape (enumerated exhaustively):\n");
  std::printf("%-6s %-12s %-10s %-10s %-10s\n", "size", "candidates", "mean",
              "max", "stddev");
  for (const auto& s : study.summaries) {
    std::printf("%-6u %-12llu %-10.2f %-10.2f %-10.2f\n", s.haplotype_size,
                static_cast<unsigned long long>(s.candidates), s.mean, s.max,
                s.stddev);
  }

  std::printf("\nbuilding-block structure of the top-%u per size:\n",
              config.top_n);
  for (const auto& report : study.building_blocks) {
    std::printf(
        "  size %u: %.0f%% of top haplotypes contain NO top-%.0f%% "
        "sub-haplotype\n",
        report.haplotype_size,
        100.0 * report.fraction_without_good_blocks,
        100.0 * config.block_quantile);
  }
  std::printf("\nbest haplotype per size:\n");
  for (const auto& s : study.summaries) {
    if (s.top.empty()) continue;
    std::printf("  size %u: fitness %.3f, SNPs (1-based):",
                s.haplotype_size, s.top.front().fitness);
    for (const auto snp : s.top.front().snps) std::printf(" %u", snp + 1);
    std::printf("\n");
  }
  return 0;
}
