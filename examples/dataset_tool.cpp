// Dataset round-trip tool: generates a synthetic cohort, writes the
// paper's three input tables (§5.1) — individuals, allele frequencies,
// pairwise disequilibrium — plus the binary packed genotype store, then
// reloads both persisted forms through the format-sniffing
// Dataset::open and verifies the round trips. Demonstrates the
// genomics I/O API.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "genomics/allele_freq.hpp"
#include "genomics/dataset_io.hpp"
#include "genomics/ld.hpp"
#include "genomics/packed_store.hpp"
#include "genomics/synthetic.hpp"

namespace {

bool same_dataset(const ldga::genomics::Dataset& a,
                  const ldga::genomics::Dataset& b) {
  if (a.snp_count() != b.snp_count() ||
      a.individual_count() != b.individual_count()) {
    return false;
  }
  for (std::uint32_t i = 0; i < a.individual_count(); ++i) {
    if (a.status(i) != b.status(i)) return false;
    for (std::uint32_t s = 0; s < a.snp_count(); ++s) {
      if (a.genotypes().at(i, s) != b.genotypes().at(i, s)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldga;
  const std::string prefix = argc > 1 ? argv[1] : "ldga_demo";

  genomics::SyntheticConfig config;
  config.snp_count = 51;
  config.active_snp_count = 3;
  config.missing_rate = 0.01;  // a realistic sprinkle of missing calls
  Rng rng(99);
  const auto synthetic = genomics::generate_synthetic(config, rng);
  const genomics::Dataset& dataset = synthetic.dataset;

  // Table 1: individuals (status + genotypes). This is the persisted
  // artifact; the others are derived.
  const std::string individuals_path = prefix + ".individuals.txt";
  genomics::save_dataset(individuals_path, dataset);

  // Table 2: allele frequencies.
  const auto freqs = genomics::AlleleFrequencyTable::estimate(dataset);
  const std::string freq_path = prefix + ".frequencies.txt";
  {
    std::ofstream out(freq_path);
    genomics::write_frequency_table(out, dataset.panel(), freqs);
  }

  // Table 3: pairwise disequilibrium.
  const auto ld = genomics::LdMatrix::compute(dataset);
  const std::string ld_path = prefix + ".disequilibrium.txt";
  {
    std::ofstream out(ld_path);
    genomics::write_ld_table(out, dataset.panel(), ld);
  }

  // The binary form: a CRC-sealed, mmap-able packed genotype store —
  // the genome-scale persistence path.
  const std::string store_path = prefix + ".pgs";
  genomics::write_packed_store(store_path, dataset);

  // Round trips through the one format-sniffing entry point: the same
  // Dataset::open call reads the text table and the packed store.
  const bool text_ok =
      same_dataset(genomics::Dataset::open(individuals_path), dataset);
  const bool store_ok =
      same_dataset(genomics::Dataset::open(store_path), dataset);

  std::printf("wrote %s (%u individuals), %s, %s, %s\n",
              individuals_path.c_str(), dataset.individual_count(),
              freq_path.c_str(), ld_path.c_str(), store_path.c_str());
  std::printf("round trip (text):  %s\n", text_ok ? "IDENTICAL" : "MISMATCH");
  std::printf("round trip (store): %s\n", store_ok ? "IDENTICAL" : "MISMATCH");
  std::printf("affected %u / unaffected %u / unknown %u\n",
              dataset.count(genomics::Status::Affected),
              dataset.count(genomics::Status::Unaffected),
              dataset.count(genomics::Status::Unknown));
  return text_ok && store_ok ? 0 : 1;
}
