// Dataset round-trip tool: generates a synthetic cohort, writes the
// paper's three input tables (§5.1) — individuals, allele frequencies,
// pairwise disequilibrium — reloads the individuals table, and verifies
// the round trip. Demonstrates the genomics I/O API.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "genomics/allele_freq.hpp"
#include "genomics/dataset_io.hpp"
#include "genomics/ld.hpp"
#include "genomics/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace ldga;
  const std::string prefix = argc > 1 ? argv[1] : "ldga_demo";

  genomics::SyntheticConfig config;
  config.snp_count = 51;
  config.active_snp_count = 3;
  config.missing_rate = 0.01;  // a realistic sprinkle of missing calls
  Rng rng(99);
  const auto synthetic = genomics::generate_synthetic(config, rng);
  const genomics::Dataset& dataset = synthetic.dataset;

  // Table 1: individuals (status + genotypes). This is the persisted
  // artifact; the others are derived.
  const std::string individuals_path = prefix + ".individuals.txt";
  genomics::save_dataset(individuals_path, dataset);

  // Table 2: allele frequencies.
  const auto freqs = genomics::AlleleFrequencyTable::estimate(dataset);
  const std::string freq_path = prefix + ".frequencies.txt";
  {
    std::ofstream out(freq_path);
    genomics::write_frequency_table(out, dataset.panel(), freqs);
  }

  // Table 3: pairwise disequilibrium.
  const auto ld = genomics::LdMatrix::compute(dataset);
  const std::string ld_path = prefix + ".disequilibrium.txt";
  {
    std::ofstream out(ld_path);
    genomics::write_ld_table(out, dataset.panel(), ld);
  }

  // Round trip check.
  const genomics::Dataset reloaded = genomics::load_dataset(individuals_path);
  bool identical = reloaded.snp_count() == dataset.snp_count() &&
                   reloaded.individual_count() == dataset.individual_count();
  if (identical) {
    for (std::uint32_t i = 0; identical && i < dataset.individual_count();
         ++i) {
      if (reloaded.status(i) != dataset.status(i)) identical = false;
      for (std::uint32_t s = 0; identical && s < dataset.snp_count(); ++s) {
        if (reloaded.genotypes().at(i, s) != dataset.genotypes().at(i, s)) {
          identical = false;
        }
      }
    }
  }

  std::printf("wrote %s (%u individuals), %s, %s\n", individuals_path.c_str(),
              dataset.individual_count(), freq_path.c_str(), ld_path.c_str());
  std::printf("round trip: %s\n", identical ? "IDENTICAL" : "MISMATCH");
  std::printf("affected %u / unaffected %u / unknown %u\n",
              dataset.count(genomics::Status::Affected),
              dataset.count(genomics::Status::Unaffected),
              dataset.count(genomics::Status::Unknown));
  return identical ? 0 : 1;
}
