// Watches the §4.3.1 adaptive mechanism at work: per-generation rates
// of the three mutation operators and two crossover operators, printed
// as a CSV time series (pipe into a plotting tool of your choice).
#include <cstdio>

#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"

int main() {
  using namespace ldga;

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.active_snp_count = 3;
  Rng rng(19);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  ga::GaConfig config;
  config.stagnation_generations = 60;
  config.max_generations = 250;
  config.seed = 23;

  ga::GaEngine engine(evaluator, config,
                      stats::make_thread_pool_backend(evaluator));
  std::printf("generation,mut_snp,mut_reduction,mut_augmentation,"
              "xover_intra,xover_inter,best_s2,best_s3,best_s4,best_s5,"
              "best_s6,immigrants\n");
  engine.set_generation_callback([](const ga::GenerationInfo& info) {
    std::printf("%u", info.generation);
    for (const double r : info.rates.mutation) std::printf(",%.4f", r);
    for (const double r : info.rates.crossover) std::printf(",%.4f", r);
    for (const double b : info.best_by_size) std::printf(",%.2f", b);
    std::printf(",%d\n", info.immigrants_triggered ? 1 : 0);
  });
  const ga::GaResult result = engine.run();

  std::fprintf(stderr,
               "# finished: %u generations, %llu evaluations\n",
               result.generations,
               static_cast<unsigned long long>(result.evaluations));
  return 0;
}
