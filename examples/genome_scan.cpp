// Genome scan at the paper's larger scale: 249 SNPs (its "other
// experiments ... with larger files (249 SNPs)"), evaluated through the
// PVM-style master/slave farm of §4.5, and cross-checked against the
// random-search baseline at the same evaluation budget.
#include <cstdio>

#include "analysis/random_search.hpp"
#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace ldga;

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 249;
  data_config.active_snp_count = 4;
  Rng rng(11);
  const auto synthetic = genomics::generate_synthetic(data_config, rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  std::printf("cohort: %u individuals x %u SNPs; planted SNPs (1-based):",
              synthetic.dataset.individual_count(),
              synthetic.dataset.snp_count());
  for (const auto snp : synthetic.truth.snps) std::printf(" %u", snp + 1);
  std::printf("\n\n");

  ga::GaConfig config;
  config.max_size = 6;
  config.population_size = 150;
  config.stagnation_generations = 60;  // trimmed for an example run
  config.max_generations = 400;
  config.seed = 3;

  Stopwatch watch;
  // The paper's §4.5 master/slave farm scheme.
  ga::GaEngine engine(evaluator, config,
                      stats::make_farm_backend(evaluator));
  const ga::GaResult result = engine.run();
  const double ga_seconds = watch.elapsed_seconds();

  std::printf("GA (master/slave farm): %u generations, %llu evaluations, "
              "%.1f s\n",
              result.generations,
              static_cast<unsigned long long>(result.evaluations),
              ga_seconds);
  std::printf("%-6s %-28s %s\n", "size", "best haplotype (1-based)",
              "fitness");
  for (const auto& best : result.best_by_size) {
    std::printf("%-6u %-28s %.3f\n", best.size(), best.to_string().c_str(),
                best.fitness());
  }

  // Random search with the same budget, for perspective.
  analysis::RandomSearchConfig rs_config;
  rs_config.max_evaluations = result.evaluations;
  rs_config.seed = 5;
  const ga::FeasibilityFilter no_filter;
  const auto rs = analysis::random_search(evaluator, rs_config, no_filter);
  std::printf("\nrandom search, same %llu-evaluation budget:\n",
              static_cast<unsigned long long>(rs.evaluations));
  for (const auto& best : rs.best_by_size) {
    if (!best.evaluated()) continue;
    std::printf("%-6u %-28s %.3f\n", best.size(), best.to_string().c_str(),
                best.fitness());
  }
  return 0;
}
