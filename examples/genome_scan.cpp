// Genome-scale scan: the full data path beyond the paper's 249-SNP
// "larger files" experiments. A 20,000-SNP synthetic panel is streamed
// into an on-disk packed genotype store chunk by chunk, memory-mapped
// back, swept by the tiled composite-LD prefilter, and the top-ranked
// windows are searched by the windowed GA driver — the multipopulation
// engine runs inside each window against a column slice of the store,
// migrating elite haplotypes into the next overlapping window.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/ld_prefilter.hpp"
#include "ga/window_scan.hpp"
#include "genomics/packed_store.hpp"
#include "genomics/synthetic.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace ldga;

  const std::string store_path =
      (std::filesystem::temp_directory_path() / "ldga_genome_scan.pgs")
          .string();

  // --- 1. Stream a synthetic panel to disk. The first 64 markers are
  // the signal chunk carrying a planted 3-SNP risk haplotype; the rest
  // are independent null LD blocks, written chunk by chunk so memory
  // stays O(chunk) however wide the panel.
  genomics::SyntheticStoreConfig data;
  data.cohort.snp_count = 64;
  data.cohort.affected_count = 100;
  data.cohort.unaffected_count = 100;
  data.cohort.unknown_count = 0;
  data.cohort.active_snp_count = 3;
  data.total_snps = 20'000;
  data.chunk_snps = 2048;
  Rng rng(11);

  Stopwatch build_watch;
  const auto written = genomics::write_synthetic_store(store_path, data, rng);
  std::printf("store: %u SNPs x %zu individuals -> %s (%.0f ms)\n",
              written.snps_written, written.statuses.size(),
              store_path.c_str(), build_watch.elapsed_ms());
  std::printf("planted SNPs (1-based):");
  for (const auto snp : written.truth.snps) std::printf(" %u", snp + 1);
  std::printf("\n\n");

  // --- 2. Map it back. The header seal and payload CRC are verified;
  // plane words are paged in on demand from here on.
  const auto store = genomics::PackedGenotypeStore::open(store_path);

  // --- 3. Tiled LD prefilter: score every window by mean pairwise
  // composite r² and keep the most block-structured ones.
  const std::vector<ga::WindowSpec> tiling =
      ga::plan_windows(store.snp_count(), 64, 48);
  Stopwatch prefilter_watch;
  const auto scores = analysis::score_windows(store, tiling);
  const auto top = analysis::top_windows(scores, 4);
  std::printf("prefilter: %zu windows scored in %.0f ms; GA budget goes "
              "to:\n",
              scores.size(), prefilter_watch.elapsed_ms());
  for (const auto& window : top) {
    std::printf("  [%6u, %6u)\n", window.begin, window.begin + window.count);
  }
  std::printf("\n");

  // --- 4. Windowed GA over the survivors. Each window's engine sees a
  // self-contained slice; elites migrate into the next overlapping
  // window's warm starts.
  ga::WindowScanConfig config;
  config.ga.min_size = 2;
  config.ga.max_size = 4;
  config.ga.population_size = 60;
  config.ga.min_subpopulation = 10;
  config.ga.stagnation_generations = 30;
  config.ga.max_generations = 120;
  config.ga.seed = 3;

  Stopwatch scan_watch;
  const ga::WindowScanResult result = ga::run_window_scan(
      store, store.panel(), store.statuses(), top, config);
  std::printf("scan: %llu evaluations in %.1f s\n",
              static_cast<unsigned long long>(result.evaluations),
              scan_watch.elapsed_seconds());
  std::printf("%-18s %-26s %s\n", "window", "best haplotype (1-based)",
              "fitness");
  for (const auto& window : result.windows) {
    std::string snps;
    for (const auto snp : window.best_snps) {
      if (!snps.empty()) snps += ' ';
      snps += std::to_string(snp + 1);
    }
    std::printf("[%6u, %6u)   %-26s %.3f%s\n", window.window.begin,
                window.window.begin + window.window.count, snps.c_str(),
                window.best_fitness,
                window.migrants_in > 0 ? "  (warm-started)" : "");
  }

  std::printf("\nscan champion (1-based):");
  for (const auto snp : result.best_snps) std::printf(" %u", snp + 1);
  std::printf("  fitness %.3f\n", result.best_fitness);

  std::filesystem::remove(store_path);
  return 0;
}
