// Genome-scale scan: the full data path beyond the paper's 249-SNP
// "larger files" experiments. A 20,000-SNP synthetic panel is streamed
// into an on-disk packed genotype store chunk by chunk, memory-mapped
// back, swept by the tiled composite-LD prefilter, and the top-ranked
// windows are searched by the windowed GA driver — the multipopulation
// engine runs inside each window against a column slice of the store,
// migrating elite haplotypes into overlapping windows' warm starts.
//
// Flags (defaults in brackets):
//   --engine sync|async       per-window engine [sync]: async runs each
//                             window's size classes as steady-state
//                             islands over a shared evaluation stream
//   --concurrent-windows N    window GAs in flight at once [1]; with
//                             sync + 1 the scan is the sequential
//                             bit-exact reference, anything else runs
//                             the pipelined scheduler and overlaps the
//                             prefilter with the GA stage
//   --prefilter-workers N     LD-sweep worker threads [1; 0 = hardware]
//   --keep N                  windows that get a GA run [4]
//   --snps N                  synthetic panel width [20000]
//   --seed S                  scan seed [3]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/genome_pipeline.hpp"
#include "genomics/packed_store.hpp"
#include "genomics/synthetic.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace ldga;
  try {
    const CliArgs args(argc, argv);
    const std::string engine_name = args.get("engine", "sync");
    if (engine_name != "sync" && engine_name != "async") {
      throw ConfigError("--engine must be sync|async, got '" + engine_name +
                        "'");
    }

    const std::string store_path =
        (std::filesystem::temp_directory_path() / "ldga_genome_scan.pgs")
            .string();

    // --- 1. Stream a synthetic panel to disk. The first 64 markers are
    // the signal chunk carrying a planted 3-SNP risk haplotype; the rest
    // are independent null LD blocks, written chunk by chunk so memory
    // stays O(chunk) however wide the panel.
    genomics::SyntheticStoreConfig data;
    data.cohort.snp_count = 64;
    data.cohort.affected_count = 100;
    data.cohort.unaffected_count = 100;
    data.cohort.unknown_count = 0;
    data.cohort.active_snp_count = 3;
    data.total_snps = static_cast<std::uint32_t>(args.get_int("snps", 20'000));
    data.chunk_snps = 2048;
    Rng rng(11);

    Stopwatch build_watch;
    const auto written =
        genomics::write_synthetic_store(store_path, data, rng);
    std::printf("store: %u SNPs x %zu individuals -> %s (%.0f ms)\n",
                written.snps_written, written.statuses.size(),
                store_path.c_str(), build_watch.elapsed_ms());
    std::printf("planted SNPs (1-based):");
    for (const auto snp : written.truth.snps) std::printf(" %u", snp + 1);
    std::printf("\n\n");

    // --- 2. Map it back. The header seal and payload CRC are verified;
    // plane words are paged in on demand from here on.
    const auto store = genomics::PackedGenotypeStore::open(store_path);

    // --- 3+4. Prefilter + windowed GA through the pipeline driver.
    // Sequential when nothing is concurrent (the reference chain);
    // otherwise the LD sweep feeds streaming admissions to GA workers
    // already in flight.
    analysis::GenomePipelineConfig pipeline;
    pipeline.prefilter.workers =
        static_cast<std::uint32_t>(args.get_int("prefilter-workers", 1));
    pipeline.keep_windows =
        static_cast<std::uint32_t>(args.get_int("keep", 4));
    pipeline.scan.engine = engine_name == "async" ? ga::ScanEngine::kAsync
                                                  : ga::ScanEngine::kSync;
    pipeline.scan.concurrent_windows =
        static_cast<std::uint32_t>(args.get_int("concurrent-windows", 1));
    pipeline.mode = pipeline.scan.engine == ga::ScanEngine::kSync &&
                            pipeline.scan.concurrent_windows == 1
                        ? analysis::PipelineMode::kSequential
                        : analysis::PipelineMode::kPipelined;
    pipeline.scan.ga.min_size = 2;
    pipeline.scan.ga.max_size = 4;
    pipeline.scan.ga.population_size = 60;
    pipeline.scan.ga.min_subpopulation = 10;
    pipeline.scan.ga.stagnation_generations = 30;
    pipeline.scan.ga.max_generations = 120;
    pipeline.scan.ga.seed =
        static_cast<std::uint64_t>(args.get_int("seed", 3));

    for (const auto& unknown : args.unused()) {
      std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                   unknown.c_str());
    }

    const std::vector<ga::WindowSpec> tiling =
        ga::plan_windows(store.snp_count(), 64, 48);
    const analysis::GenomePipelineResult result = analysis::run_genome_pipeline(
        store, store.panel(), store.statuses(), tiling, pipeline);

    std::printf("prefilter: %zu windows scored in %.0f ms%s; GA budget "
                "went to:\n",
                result.scores.size(), result.prefilter_seconds * 1e3,
                pipeline.mode == analysis::PipelineMode::kPipelined
                    ? " (GA windows in flight meanwhile)"
                    : "");
    for (const auto& window : result.selected) {
      std::printf("  [%6u, %6u)\n", window.begin,
                  window.begin + window.count);
    }
    std::printf("\n");

    std::printf("scan: %llu evaluations, %.1f s total (%.1f s after the "
                "sweep)\n",
                static_cast<unsigned long long>(result.scan.evaluations),
                result.total_seconds, result.scan_tail_seconds);
    std::printf("%-18s %-26s %s\n", "window", "best haplotype (1-based)",
                "fitness");
    for (const auto& window : result.scan.windows) {
      std::string snps;
      for (const auto snp : window.best_snps) {
        if (!snps.empty()) snps += ' ';
        snps += std::to_string(snp + 1);
      }
      std::printf("[%6u, %6u)   %-26s %.3f%s\n", window.window.begin,
                  window.window.begin + window.window.count, snps.c_str(),
                  window.best_fitness,
                  window.migrants_in > 0 ? "  (warm-started)" : "");
    }

    std::printf("\nscan champion (1-based):");
    for (const auto snp : result.scan.best_snps) std::printf(" %u", snp + 1);
    std::printf("  fitness %.3f\n", result.scan.best_fitness);

    std::filesystem::remove(store_path);
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
