// Command-line driver: run the parallel adaptive GA on a dataset file
// (the paper's individuals-table format) or on a freshly simulated
// cohort. This is the binary a biologist would actually use.
//
//   run_ga --dataset cohort.txt --max-size 6 --runs 3 --backend farm
//   run_ga --dataset panel.pgs        (packed genotype store, mmap'd)
//   run_ga --ped study.ped --map study.map --qc
//   run_ga --simulate --snps 51 --active 3 --seed 7 --save cohort.txt
//
// Flags (defaults in brackets):
//   --dataset PATH      load a dataset instead of simulating; the format
//                       is sniffed (packed store / .ped linkage / native
//                       text) via Dataset::open
//   --ped P --map M     load a linkage-format dataset with an explicit
//                       map path (Dataset::open assumes the sibling .map)
//   --qc                run marker QC (MAF/missingness/HWE) first
//   --simulate          generate a synthetic cohort [on unless --dataset]
//   --snps N            simulated panel size [51]
//   --active K          planted risk-haplotype size [3]
//   --save PATH         save the simulated cohort
//   --runs R            independent GA runs [1]
//   --min-size/--max-size   subpopulation size range [2/6]
//   --population N      total population size [150]
//   --stagnation G      termination stagnation [100]
//   --immigrants G      random-immigrant stagnation [20]
//   --engine sync|async selection model [sync]: sync is the paper's
//                       generational engine, async runs each size class
//                       as a steady-state island over evaluation lanes
//                       (--workers then sets the lane count)
//   --backend serial|pool|farm   evaluation backend [pool; sync only]
//   --transport in-process|socket-unix|socket-tcp   farm message layer
//                       [in-process]; socket-* forks worker processes
//                       supervised with heartbeats + respawn
//   --workers N         worker/slave count [hardware]
//   --stat t1|t2|t3|t4|lrt       fitness statistic [t1]
//   --seed S            base seed [1]
//   --trace             print per-generation telemetry CSV to stderr
#include <cstdio>
#include <string>
#include <vector>

#include "ga/engine.hpp"
#include "ga/island_engine.hpp"
#include "genomics/dataset_io.hpp"
#include "genomics/linkage_format.hpp"
#include "genomics/qc.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"
#include "stats/permutation.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

std::shared_ptr<ldga::stats::EvaluationBackend> make_backend(
    const std::string& name, const std::string& transport,
    const ldga::stats::HaplotypeEvaluator& evaluator,
    std::uint32_t workers) {
  ldga::stats::BackendOptions options;
  options.workers = workers;
  if (transport == "socket-unix" || transport == "socket-tcp") {
    options.transport = ldga::stats::FarmTransport::kSocket;
    options.socket.family =
        transport == "socket-tcp"
            ? ldga::parallel::SocketTransportConfig::Family::kTcp
            : ldga::parallel::SocketTransportConfig::Family::kUnix;
  } else if (transport != "in-process") {
    throw ldga::ConfigError(
        "--transport must be in-process|socket-unix|socket-tcp, got '" +
        transport + "'");
  }
  if (name == "serial") {
    return ldga::stats::make_serial_backend(evaluator, options);
  }
  if (name == "pool") {
    return ldga::stats::make_thread_pool_backend(evaluator, options);
  }
  if (name == "farm") {
    return ldga::stats::make_farm_backend(evaluator, options);
  }
  throw ldga::ConfigError("--backend must be serial|pool|farm, got '" +
                          name + "'");
}

ldga::stats::FitnessStatistic parse_statistic(const std::string& name) {
  using ldga::stats::FitnessStatistic;
  if (name == "t1") return FitnessStatistic::T1;
  if (name == "t2") return FitnessStatistic::T2;
  if (name == "t3") return FitnessStatistic::T3;
  if (name == "t4") return FitnessStatistic::T4;
  if (name == "lrt") return FitnessStatistic::Lrt;
  throw ldga::ConfigError("--stat must be t1|t2|t3|t4|lrt, got '" + name +
                          "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldga;
  try {
    const CliArgs args(argc, argv);

    // --- dataset ---------------------------------------------------
    genomics::Dataset dataset;
    std::vector<genomics::SnpIndex> truth;
    if (args.has("dataset")) {
      // Content-dispatching open: packed genotype store, linkage .ped,
      // or the native individuals-table text all load through here.
      dataset = genomics::Dataset::open(args.get("dataset", ""));
      std::printf("loaded %u individuals x %u SNPs\n",
                  dataset.individual_count(), dataset.snp_count());
    } else if (args.has("ped") || args.has("map")) {
      dataset = genomics::load_linkage(args.get("ped", ""),
                                       args.get("map", ""));
      std::printf("loaded %u individuals x %u SNPs (linkage format)\n",
                  dataset.individual_count(), dataset.snp_count());
    } else {
      args.has("simulate");  // optional, implied
      genomics::SyntheticConfig config;
      config.snp_count = static_cast<std::uint32_t>(args.get_int("snps", 51));
      config.active_snp_count =
          static_cast<std::uint32_t>(args.get_int("active", 3));
      Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)) ^
              0x5eedULL);
      auto synthetic = genomics::generate_synthetic(config, rng);
      truth = synthetic.truth.snps;
      dataset = std::move(synthetic.dataset);
      std::printf("simulated %u individuals x %u SNPs; planted (1-based):",
                  dataset.individual_count(), dataset.snp_count());
      for (const auto snp : truth) std::printf(" %u", snp + 1);
      std::printf("\n");
      if (args.has("save")) {
        const std::string path = args.get("save", "");
        genomics::save_dataset(path, dataset);
        std::printf("saved cohort to %s\n", path.c_str());
      }
    }

    // --- optional marker QC ---------------------------------------------
    if (args.get_bool("qc")) {
      const auto report = genomics::run_marker_qc(dataset);
      std::printf("QC: kept %zu markers (dropped %u MAF, %u missing, "
                  "%u HWE)\n",
                  report.kept.size(), report.dropped_maf,
                  report.dropped_missing, report.dropped_hwe);
      if (report.kept.size() < dataset.snp_count()) {
        dataset = genomics::subset_markers(dataset, report.kept);
      }
    }

    // --- evaluator ---------------------------------------------------
    stats::EvaluatorConfig eval_config;
    eval_config.fitness_statistic =
        parse_statistic(args.get("stat", "t1"));
    const stats::HaplotypeEvaluator evaluator(dataset, eval_config);

    // --- GA config -----------------------------------------------------
    ga::GaConfig config;
    config.min_size =
        static_cast<std::uint32_t>(args.get_int("min-size", 2));
    config.max_size =
        static_cast<std::uint32_t>(args.get_int("max-size", 6));
    config.population_size =
        static_cast<std::uint32_t>(args.get_int("population", 150));
    config.stagnation_generations =
        static_cast<std::uint32_t>(args.get_int("stagnation", 100));
    config.random_immigrant_stagnation =
        static_cast<std::uint32_t>(args.get_int("immigrants", 20));
    const std::string engine_name = args.get("engine", "sync");
    if (engine_name != "sync" && engine_name != "async") {
      throw ConfigError("--engine must be sync|async, got '" + engine_name +
                        "'");
    }
    const auto workers =
        static_cast<std::uint32_t>(args.get_int("workers", 0));
    // One backend for all runs: pool threads / farm slaves spawn once
    // and the evaluator's cache is shared across the whole series. The
    // async engine owns its evaluation lanes instead.
    std::shared_ptr<stats::EvaluationBackend> backend;
    if (engine_name == "sync") {
      backend = make_backend(args.get("backend", "pool"),
                             args.get("transport", "in-process"), evaluator,
                             workers);
    }
    const bool trace = args.get_bool("trace");
    const auto runs = static_cast<std::uint32_t>(args.get_int("runs", 1));
    const auto base_seed =
        static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto permutations =
        static_cast<std::uint32_t>(args.get_int("permutations", 0));

    for (const auto& unknown : args.unused()) {
      std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                   unknown.c_str());
    }

    // --- runs ------------------------------------------------------------
    for (std::uint32_t run = 0; run < runs; ++run) {
      config.seed = base_seed + run;
      std::vector<ga::HaplotypeIndividual> best_by_size;
      if (engine_name == "async") {
        ga::IslandConfig island_config;
        island_config.ga = config;
        if (workers > 0) island_config.lanes = workers;
        ga::IslandEngine engine(evaluator, island_config);
        if (trace) {
          engine.set_event_callback([](const ga::IslandEvent& event) {
            std::fprintf(stderr, "%s,%u,%llu,%.3f,%llu\n",
                         ga::to_string(event.kind), event.island,
                         static_cast<unsigned long long>(event.step),
                         event.best_fitness,
                         static_cast<unsigned long long>(event.evaluations));
          });
        }
        const ga::IslandRunResult result = engine.run();
        std::printf("\nrun %u: %llu island steps, %llu evaluations, "
                    "%u immigrant waves%s\n",
                    run + 1,
                    static_cast<unsigned long long>(result.total_steps),
                    static_cast<unsigned long long>(result.evaluations),
                    result.immigrant_events,
                    result.terminated_by_stagnation ? " (stagnation stop)"
                                                    : "");
        best_by_size = result.best_by_size;
      } else {
        ga::GaEngine engine(evaluator, config, backend);
        if (trace) {
          engine.set_generation_callback([](const ga::GenerationInfo& info) {
            std::fprintf(stderr, "%u", info.generation);
            for (const double b : info.best_by_size) {
              std::fprintf(stderr, ",%.3f", b);
            }
            std::fprintf(stderr, ",%llu\n",
                         static_cast<unsigned long long>(info.evaluations));
          });
        }
        const ga::GaResult result = engine.run();
        std::printf("\nrun %u: %u generations, %llu evaluations, "
                    "%u immigrant waves%s\n",
                    run + 1, result.generations,
                    static_cast<unsigned long long>(result.evaluations),
                    result.immigrant_events,
                    result.terminated_by_stagnation ? " (stagnation stop)"
                                                    : "");
        best_by_size = result.best_by_size;
      }
      std::printf("%-6s %-30s %s\n", "size", "best haplotype (1-based)",
                  "fitness");
      for (const auto& best : best_by_size) {
        std::printf("%-6u %-30s %.3f", best.size(), best.to_string().c_str(),
                    best.fitness());
        if (permutations > 0) {
          // Selection-aware significance: permute the disease labels and
          // rerun the whole pipeline (see stats/permutation.hpp).
          stats::PermutationConfig perm_config;
          perm_config.permutations = permutations;
          perm_config.seed = config.seed ^ 0x9e3779b9ULL;
          perm_config.workers = 0;
          const auto perm = stats::permutation_test(
              dataset, best.snps(), eval_config, perm_config);
          std::printf("   perm-p=%.4f", perm.p_value);
        }
        std::printf("\n");
      }
    }
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
