#!/usr/bin/env bash
# Build and run the EM-kernel benchmark, leaving BENCH_em_kernel.json at
# the repo root. Used to record the perf acceptance numbers for the
# compiled-EM PR (3x end-to-end floor); cheap enough for a smoke run.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"

cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" --target bench_em_kernel -j "$(nproc)"

cd "$root"
"$build/bench/bench_em_kernel"
echo "BENCH_em_kernel.json written to $root"
