#!/usr/bin/env bash
# Build and run the perf-acceptance benchmarks, leaving BENCH_*.json at
# the repo root:
#   - bench_em_kernel    — compiled-EM PR numbers (3x end-to-end floor);
#   - bench_ga_e2e       — incremental-pipeline PR numbers (2x GA wall
#     time, hard floor 1.5x), including the bit-exactness gate of the
#     pattern cache against the baseline trajectory;
#   - bench_simd_kernels — per-dispatch-level kernel timings with
#     inline equivalence checks (4x popcount/planes floor on vector
#     hosts).
# Every JSON carries the machine context (bench/bench_context.hpp); the
# CI bench job refuses ratio comparisons when the committed baseline
# was measured on a different ISA.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"

cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" --target bench_em_kernel --target bench_ga_e2e \
  --target bench_simd_kernels -j "$(nproc)"

cd "$root"
"$build/bench/bench_simd_kernels"
echo "BENCH_simd_kernels.json written to $root"
"$build/bench/bench_em_kernel"
echo "BENCH_em_kernel.json written to $root"
"$build/bench/bench_ga_e2e"
echo "BENCH_ga_e2e.json written to $root"
