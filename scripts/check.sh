#!/usr/bin/env bash
# Full local verification: configure, build and test — optionally under a
# sanitizer.
#
#   scripts/check.sh                # plain Release build + ctest
#   scripts/check.sh address        # ASan + UBSan build + ctest
#   scripts/check.sh thread         # TSan build + ctest (parallel tests)
#   scripts/check.sh all            # plain, then address, then thread
#
# Add --transport=socket (any position) to soak the cross-process
# transport layer and the asynchronous island engine instead of the
# whole suite: the socket/chaos/island tests run with LDGA_CHAOS_SOAK=1,
# which multiplies the chaos-GA repetitions so respawn, requeue,
# frame-corruption recovery, and straggler-chaos convergence to the
# planted haplotype get exercised hard.
#
#   scripts/check.sh --transport=socket          # plain chaos soak
#   scripts/check.sh thread --transport=socket   # chaos soak under TSan
#
# Each mode uses its own build directory (build/, build-asan/, build-tsan/)
# so the presets can coexist.
set -euo pipefail

cd "$(dirname "$0")/.."

TRANSPORT=""
MODE=""
for arg in "$@"; do
  case "${arg}" in
    --transport=*) TRANSPORT="${arg#--transport=}" ;;
    *) MODE="${arg}" ;;
  esac
done
MODE="${MODE:-plain}"

if [[ -n "${TRANSPORT}" && "${TRANSPORT}" != "socket" ]]; then
  echo "unknown transport '${TRANSPORT}' (expected socket)" >&2
  exit 2
fi

run_mode() {
  local mode="$1" dir sanitize
  case "${mode}" in
    plain)   dir=build       sanitize="" ;;
    address) dir=build-asan  sanitize=address ;;
    thread)  dir=build-tsan  sanitize=thread ;;
    *) echo "unknown mode '${mode}' (expected plain|address|thread|all)" >&2
       exit 2 ;;
  esac
  echo "== ${mode}: configuring ${dir}"
  cmake -B "${dir}" -S . -DLDGA_SANITIZE="${sanitize}" \
    -DLDGA_WARNINGS_AS_ERRORS=ON > /dev/null
  echo "== ${mode}: building"
  cmake --build "${dir}" -j "$(nproc)"
  if [[ "${TRANSPORT}" == "socket" ]]; then
    echo "== ${mode}: chaos-soaking the socket transport"
    LDGA_CHAOS_SOAK=1 ctest --test-dir "${dir}" --output-on-failure \
      -j "$(nproc)" \
      -R 'Transport|Chaos|MasterSlave|FarmFaultTolerance|BackendConformance|Mailbox|ProcessSupervisor|Socket|Crc32|SealedPayload|FrameCodec|Island|EvaluationStream|Straggler'
  else
    echo "== ${mode}: testing"
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
  fi
}

case "${MODE}" in
  all)
    run_mode plain
    run_mode address
    run_mode thread
    ;;
  *)
    run_mode "${MODE}"
    ;;
esac
echo "== all checks passed"
