#!/usr/bin/env bash
# Full local verification: configure, build and test — optionally under a
# sanitizer.
#
#   scripts/check.sh                # plain Release build + ctest
#   scripts/check.sh address        # ASan + UBSan build + ctest
#   scripts/check.sh thread         # TSan build + ctest (parallel tests)
#   scripts/check.sh all            # plain, then address, then thread
#
# Each mode uses its own build directory (build/, build-asan/, build-tsan/)
# so the presets can coexist.
set -euo pipefail

cd "$(dirname "$0")/.."

run_mode() {
  local mode="$1" dir sanitize
  case "${mode}" in
    plain)   dir=build       sanitize="" ;;
    address) dir=build-asan  sanitize=address ;;
    thread)  dir=build-tsan  sanitize=thread ;;
    *) echo "unknown mode '${mode}' (expected plain|address|thread|all)" >&2
       exit 2 ;;
  esac
  echo "== ${mode}: configuring ${dir}"
  cmake -B "${dir}" -S . -DLDGA_SANITIZE="${sanitize}" \
    -DLDGA_WARNINGS_AS_ERRORS=ON > /dev/null
  echo "== ${mode}: building"
  cmake --build "${dir}" -j "$(nproc)"
  echo "== ${mode}: testing"
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

case "${1:-plain}" in
  all)
    run_mode plain
    run_mode address
    run_mode thread
    ;;
  *)
    run_mode "${1:-plain}"
    ;;
esac
echo "== all checks passed"
