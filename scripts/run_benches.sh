#!/usr/bin/env bash
# Runs the full benchmark harness sequentially, appending to
# bench_output.txt from the binary named in $1 onward (alphabetical
# order, matching `for b in build/bench/*`). With no argument, starts
# from the beginning and truncates the file.
set -u
cd "$(dirname "$0")/.."
start="${1:-}"
out=bench_output.txt
[ -z "$start" ] && : > "$out"
running=false
for b in build/bench/*; do
  name="$(basename "$b")"
  if [ -z "$start" ] || $running || [ "$name" = "$start" ]; then
    running=true
  else
    continue
  fi
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "=== $b ===" >> "$out"
  "$b" >> "$out" 2>&1
  echo "(exit $?)" >> "$out"
done
echo "bench sweep complete"
