// Design ablation for the EM's missing-data handling: complete-case
// (drop any individual missing a selected locus — what our default and
// many 2004-era tools do) vs marginalization over the missing alleles
// (what a full EH implementation does). Compares retained sample size,
// the planted haplotype's association score, and evaluation cost as
// the per-cell missing rate grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/table_format.hpp"

namespace {

using namespace ldga;

genomics::SyntheticDataset make_cohort(double missing_rate) {
  genomics::SyntheticConfig config;
  config.snp_count = 30;
  config.affected_count = 53;
  config.unaffected_count = 53;
  config.unknown_count = 0;
  config.active_snps = {7, 15, 23};
  config.disease.relative_risk = 8.0;
  config.missing_rate = missing_rate;
  Rng rng(31415);
  return genomics::generate_synthetic(config, rng);
}

stats::EvaluatorConfig policy_config(stats::MissingPolicy policy) {
  stats::EvaluatorConfig config;
  config.em.missing = policy;
  return config;
}

void BM_EvaluatePolicy(benchmark::State& state) {
  const double missing_rate = static_cast<double>(state.range(0)) / 100.0;
  const auto policy = state.range(1) == 0 ? stats::MissingPolicy::CompleteCase
                                          : stats::MissingPolicy::Marginalize;
  static std::vector<std::pair<double, genomics::SyntheticDataset>> cache;
  const genomics::SyntheticDataset* cohort = nullptr;
  for (const auto& [rate, data] : cache) {
    if (rate == missing_rate) cohort = &data;
  }
  if (cohort == nullptr) {
    cache.emplace_back(missing_rate, make_cohort(missing_rate));
    cohort = &cache.back().second;
  }
  const stats::HaplotypeEvaluator evaluator(cohort->dataset,
                                            policy_config(policy));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator.evaluate_full(cohort->truth.snps).fitness);
  }
  state.SetLabel(std::string(policy == stats::MissingPolicy::CompleteCase
                                 ? "complete-case"
                                 : "marginalize") +
                 ", missing " + std::to_string(state.range(0)) + "%");
}

BENCHMARK(BM_EvaluatePolicy)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({15, 0})
    ->Args({15, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace ldga;
  std::printf("=== Design ablation: EM missing-data policy ===\n\n");

  TextTable table({"missing rate", "policy", "individuals used (A+U)",
                   "planted-set chi2", "planted-set LRT"});
  for (const double rate : {0.0, 0.05, 0.15}) {
    const auto cohort = make_cohort(rate);
    for (const auto policy : {stats::MissingPolicy::CompleteCase,
                              stats::MissingPolicy::Marginalize}) {
      const stats::EhDiall eh(cohort.dataset,
                              policy_config(policy).em);
      const auto eh_result = eh.analyze(cohort.truth.snps);
      const stats::HaplotypeEvaluator evaluator(cohort.dataset,
                                                policy_config(policy));
      const auto full = evaluator.evaluate_full(cohort.truth.snps);
      table.add_row(
          {TextTable::num(100.0 * rate, 0) + "%",
           policy == stats::MissingPolicy::CompleteCase ? "complete-case"
                                                        : "marginalize",
           TextTable::num(eh_result.affected_individuals +
                              eh_result.unaffected_individuals,
                          0),
           TextTable::num(full.fitness, 2), TextTable::num(full.lrt, 2)});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreading: complete-case analysis loses individuals (and power) "
      "as missingness grows — at 15%% per cell a 3-SNP set drops ~2 in 5 "
      "individuals; marginalization keeps the full cohort at extra "
      "phase-expansion cost (the micro-benchmarks below).\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
