// Design-choice ablation for §4.3.1's SNP mutation: "we use this
// mutation several times in parallel and keep the best individual found
// by this mutation". How many parallel trials pay off? Every trial
// costs an evaluation, so more trials = stronger local search per
// application but fewer applications within a fixed evaluation budget.
#include <cstdio>

#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/numeric.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Design ablation: SNP-mutation parallel trials "
              "(fixed 6000-evaluation budget, 6 runs) ===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 0;
  data_config.active_snp_count = 3;
  Rng data_rng(5555);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);

  TextTable table({"trials", "mean best s3", "mean best s6",
                   "mean summed best", "mean generations"});
  for (const std::uint32_t trials : {1u, 2u, 4u, 8u}) {
    std::vector<RunningStats> per_size(5);
    RunningStats summed, generations;
    for (std::uint32_t run = 0; run < 6; ++run) {
      const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
      ga::GaConfig config;
      config.population_size = 150;
      config.snp_mutation_trials = trials;
      config.stagnation_generations = 100;
      config.max_generations = 400;
      config.max_evaluations = 6000;
      config.seed = 900 + run;
      ga::GaEngine engine(evaluator, config,
                          stats::make_thread_pool_backend(evaluator));
      const ga::GaResult result = engine.run();
      double sum = 0.0;
      for (std::uint32_t s = 0; s < 5; ++s) {
        per_size[s].add(result.best_by_size[s].fitness());
        sum += result.best_by_size[s].fitness();
      }
      summed.add(sum);
      generations.add(result.generations);
    }
    table.add_row({std::to_string(trials),
                   TextTable::num(per_size[1].mean(), 2),
                   TextTable::num(per_size[4].mean(), 2),
                   TextTable::num(summed.mean(), 2),
                   TextTable::num(generations.mean(), 1)});
    std::printf("finished trials=%u\n", trials);
  }
  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nreading: trials > 1 buys a stronger per-application local "
      "search; past the sweet spot the budget drains into trial variants "
      "instead of new applications. The paper's parallel farm makes the "
      "extra trials nearly free in wall time (they share one evaluation "
      "phase), which is why the operator is designed this way.\n");
  return 0;
}
