// Machine context stamped into every BENCH_*.json.
//
// Benchmark numbers are only comparable on the machine (and at the
// SIMD dispatch level) that produced them, so each bench binary writes
// a "machine" object — CPU model, core count, detected and active SIMD
// level, compiler — next to its measurements. CI reads it back and
// refuses to compare ratios across different ISA contexts instead of
// failing a floor that was measured elsewhere.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "util/simd.hpp"

namespace ldga::bench {

/// First "model name" line of /proc/cpuinfo ("unknown" elsewhere).
inline std::string cpu_model() {
  std::string model = "unknown";
  std::FILE* info = std::fopen("/proc/cpuinfo", "r");
  if (info == nullptr) return model;
  char line[512];
  while (std::fgets(line, sizeof line, info) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon != nullptr) {
      model.assign(colon + 1);
      while (!model.empty() &&
             (model.front() == ' ' || model.front() == '\t')) {
        model.erase(model.begin());
      }
      while (!model.empty() &&
             (model.back() == '\n' || model.back() == '\r')) {
        model.pop_back();
      }
      // Keep the value safe to embed in a JSON string literal.
      for (char& c : model) {
        if (c == '"' || c == '\\') c = ' ';
      }
    }
    break;
  }
  std::fclose(info);
  return model;
}

/// Writes the shared "machine" object (with trailing comma) into an
/// open JSON map: CPU, cores, detected vs active SIMD dispatch level
/// (they differ when LDGA_SIMD pins a lower one), compiler.
inline void write_machine_context(std::FILE* json) {
  std::fprintf(json,
               "  \"machine\": {\n"
               "    \"cpu\": \"%s\",\n"
               "    \"cores\": %u,\n"
               "    \"simd_detected\": \"%s\",\n"
               "    \"simd_active\": \"%s\",\n"
               "    \"compiler\": \"%s\"\n"
               "  },\n",
               cpu_model().c_str(), std::thread::hardware_concurrency(),
               util::simd_level_name(util::simd_detected_level()),
               util::simd_level_name(util::simd_level()), __VERSION__);
}

}  // namespace ldga::bench
