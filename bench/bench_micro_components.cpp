// Micro-benchmarks of the pipeline's moving parts (the DESIGN.md
// design-choice ablation): EM haplotype estimation by size, CLUMP
// statistics, two-locus LD, genotype-pattern enumeration, and the GA's
// variation operators. These identify where the Figure-4 exponential
// cost actually lives.
#include <benchmark/benchmark.h>

#include <numeric>

#include "ga/operators.hpp"
#include "genomics/ld.hpp"
#include "genomics/synthetic.hpp"
#include "stats/clump.hpp"
#include "stats/eh_diall.hpp"
#include "stats/em_haplotype.hpp"
#include "util/rng.hpp"

namespace {

using namespace ldga;

const genomics::SyntheticDataset& cohort() {
  static const auto synthetic = [] {
    genomics::SyntheticConfig config;
    config.snp_count = 51;
    config.affected_count = 53;
    config.unaffected_count = 53;
    config.unknown_count = 0;
    Rng rng(99);
    return genomics::generate_synthetic(config, rng);
  }();
  return synthetic;
}

std::vector<std::uint32_t> everyone() {
  std::vector<std::uint32_t> ids(cohort().dataset.individual_count());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

void BM_GenotypePatternBuild(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(size);
  const auto snps = rng.sample_without_replacement(51, size);
  const auto ids = everyone();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::GenotypePatternTable::build(
        cohort().dataset.genotypes(), snps, ids));
  }
}
BENCHMARK(BM_GenotypePatternBuild)->DenseRange(2, 7, 1);

void BM_EmEstimation(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(size * 3);
  const auto snps = rng.sample_without_replacement(51, size);
  const auto ids = everyone();
  const auto table = stats::GenotypePatternTable::build(
      cohort().dataset.genotypes(), snps, ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::estimate_haplotype_frequencies(table));
  }
}
BENCHMARK(BM_EmEstimation)->DenseRange(2, 7, 1)->Unit(benchmark::kMicrosecond);

void BM_ClumpT1(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(size * 7);
  const auto snps = rng.sample_without_replacement(51, size);
  const stats::EhDiall eh(cohort().dataset);
  const auto table = eh.analyze(snps).to_contingency_table();
  const stats::Clump clump;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clump.t1(table));
  }
}
BENCHMARK(BM_ClumpT1)->DenseRange(2, 7, 1);

void BM_ClumpFullAnalysis(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(size * 11);
  const auto snps = rng.sample_without_replacement(51, size);
  const stats::EhDiall eh(cohort().dataset);
  const auto table = eh.analyze(snps).to_contingency_table();
  const stats::Clump clump;
  for (auto _ : state) {
    Rng mc(1);
    benchmark::DoNotOptimize(clump.analyze(table, mc));
  }
}
BENCHMARK(BM_ClumpFullAnalysis)
    ->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_PairLd(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(genomics::estimate_pair_haplotypes(
        cohort().dataset.genotypes(), 3, 27));
  }
}
BENCHMARK(BM_PairLd);

void BM_SnpMutationTrials(benchmark::State& state) {
  const ga::FeasibilityFilter filter;
  ga::OperatorConfig config;
  config.snp_count = 51;
  const ga::VariationOperators ops(config, filter);
  Rng rng(1);
  const auto parent = ga::HaplotypeIndividual::random(51, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.snp_mutation_trials(parent, rng));
  }
}
BENCHMARK(BM_SnpMutationTrials);

void BM_UniformCrossover(benchmark::State& state) {
  const ga::FeasibilityFilter filter;
  ga::OperatorConfig config;
  config.snp_count = 51;
  const ga::VariationOperators ops(config, filter);
  Rng rng(2);
  const auto pa = ga::HaplotypeIndividual::random(51, 4, rng);
  const auto pb = ga::HaplotypeIndividual::random(51, 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.uniform_crossover(pa, pb, rng));
  }
}
BENCHMARK(BM_UniformCrossover);

}  // namespace

BENCHMARK_MAIN();
