// Statistical power of the whole method (our addition, motivated by the
// paper's biology framing): as the planted relative risk grows, how
// often does the GA's winner at the planted size actually contain the
// causal SNPs? This is the question a biologist asks before trusting
// the tool on a real cohort, and it exercises the entire stack —
// simulator, penetrance model, EH-DIALL + CLUMP pipeline, and the GA.
#include <cstdio>
#include <vector>

#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Power curve: planted-signal recovery vs relative risk "
              "(5 cohorts per point) ===\n\n");

  constexpr std::uint32_t kCohorts = 5;
  TextTable table({"relative risk", "winners containing >=1 planted",
                   "winners containing >=2 planted",
                   "exact planted set found", "mean winner fitness"});

  for (const double rr : {1.0, 2.0, 4.0, 8.0}) {
    std::uint32_t at_least_one = 0, at_least_two = 0, exact = 0;
    double fitness_sum = 0.0;
    for (std::uint32_t cohort_id = 0; cohort_id < kCohorts; ++cohort_id) {
      genomics::SyntheticConfig data_config;
      data_config.snp_count = 30;
      data_config.affected_count = 53;
      data_config.unaffected_count = 53;
      data_config.unknown_count = 0;
      data_config.active_snp_count = rr > 1.0 ? 2 : 0;  // null at RR 1
      data_config.disease.relative_risk = rr > 1.0 ? rr : 1.0;
      Rng rng(7000 + cohort_id);
      const auto synthetic = genomics::generate_synthetic(data_config, rng);
      const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

      ga::GaConfig config;
      config.min_size = 2;
      config.max_size = 4;
      config.population_size = 60;
      config.min_subpopulation = 15;
      config.stagnation_generations = 40;
      config.max_generations = 200;
      config.seed = 100 + cohort_id;
      const auto result =
          ga::GaEngine(evaluator, config,
                       stats::make_thread_pool_backend(evaluator))
              .run();

      const auto& winner = result.best_by_size[0];  // size 2, planted size
      fitness_sum += winner.fitness();
      if (synthetic.truth.snps.empty()) continue;  // null cohorts
      std::uint32_t overlap = 0;
      for (const auto planted : synthetic.truth.snps) {
        if (winner.contains(planted)) ++overlap;
      }
      if (overlap >= 1) ++at_least_one;
      if (overlap >= 2) ++at_least_two;
      if (winner.snps() == synthetic.truth.snps) ++exact;
    }
    auto frac = [&](std::uint32_t n) {
      return std::to_string(n) + "/" + std::to_string(kCohorts);
    };
    table.add_row({TextTable::num(rr, 1),
                   rr > 1.0 ? frac(at_least_one) : "n/a (null)",
                   rr > 1.0 ? frac(at_least_two) : "n/a (null)",
                   rr > 1.0 ? frac(exact) : "n/a (null)",
                   TextTable::num(fitness_sum / kCohorts, 2)});
    std::printf("finished RR=%.1f\n", rr);
  }
  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nreading: at RR 1 (no signal) winner fitness reflects pure "
      "noise; recovery of the planted pair should rise steeply with "
      "relative risk — if it does not, either the simulator's LD "
      "structure or the statistical pipeline is broken.\n");
  return 0;
}
