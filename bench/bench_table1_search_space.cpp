// Regenerates paper Table 1: "Size of the search space" — the number of
// candidate haplotypes per size for 51, 150 and 249 SNP panels.
#include <cstdio>

#include "analysis/search_space.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper Table 1: size of the search space ===\n\n");
  TextTable table({"Haplotype size", "51 SNPs", "150 SNPs", "249 SNPs"});
  const auto rows51 = analysis::search_space_table(51, 2, 6);
  const auto rows150 = analysis::search_space_table(150, 2, 6);
  const auto rows249 = analysis::search_space_table(249, 2, 6);
  for (std::size_t i = 0; i < rows51.size(); ++i) {
    table.add_row({std::to_string(rows51[i].haplotype_size),
                   rows51[i].formatted(), rows150[i].formatted(),
                   rows249[i].formatted()});
  }
  std::printf("%s", table.str().c_str());

  std::printf("\ntotal candidates, sizes 2-6: 51 SNPs ~ 10^%.1f, "
              "150 SNPs ~ 10^%.1f, 249 SNPs ~ 10^%.1f\n",
              analysis::log10_total_search_space(51, 2, 6),
              analysis::log10_total_search_space(150, 2, 6),
              analysis::log10_total_search_space(249, 2, 6));
  std::printf("\npaper reference: 1275 / 20825 / 249900 / 2349060 / "
              "18009460 for 51 SNPs; exhaustive enumeration is hopeless "
              "beyond small sizes, motivating the GA (paper section 3).\n");
  return 0;
}
