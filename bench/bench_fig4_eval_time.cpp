// Regenerates paper Figure 4: average evaluation time as a function of
// haplotype size. The paper measured 6 ms at size 3 vs 201 ms at size 7
// on 2004 hardware; absolute numbers differ here, but the exponential
// growth (driven by the 2^k haplotype space and per-genotype phase
// expansion inside EH-DIALL) is the reproduced shape.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

const stats::HaplotypeEvaluator& paper_evaluator() {
  // The paper's cohort shape: 106 status-known individuals, 51 SNPs.
  static const auto synthetic = [] {
    genomics::SyntheticConfig config;
    config.snp_count = 51;
    config.affected_count = 53;
    config.unaffected_count = 53;
    config.unknown_count = 0;
    config.active_snp_count = 3;
    Rng rng(2004);
    return genomics::generate_synthetic(config, rng);
  }();
  static const stats::HaplotypeEvaluator evaluator(synthetic.dataset);
  return evaluator;
}

/// Random candidate sets of each size, pre-drawn so the benchmark loop
/// measures evaluation only.
std::vector<std::vector<genomics::SnpIndex>> candidates(std::uint32_t size,
                                                        std::uint32_t count) {
  Rng rng(size * 101);
  std::vector<std::vector<genomics::SnpIndex>> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(rng.sample_without_replacement(51, size));
  }
  return out;
}

void BM_EvaluationBySize(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  const auto sets = candidates(size, 64);
  const auto& evaluator = paper_evaluator();
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator.evaluate_full(sets[next % sets.size()]).fitness);
    ++next;
  }
  state.SetLabel("haplotype size " + std::to_string(size));
}

BENCHMARK(BM_EvaluationBySize)
    ->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Print the Figure-4 series explicitly (mean time per size and the
  // growth ratio), then run the google-benchmark suite for precise
  // numbers.
  using namespace ldga;
  std::printf("=== Paper Figure 4: mean evaluation time vs haplotype size "
              "===\n\n");
  const auto& evaluator = paper_evaluator();
  double previous = 0.0;
  for (std::uint32_t size = 2; size <= 7; ++size) {
    const auto sets = candidates(size, 32);
    // Warm-up pass, then timed pass.
    for (const auto& snps : sets) evaluator.evaluate_full(snps);
    Stopwatch watch;
    for (const auto& snps : sets) evaluator.evaluate_full(snps);
    const double mean_us =
        watch.elapsed_us() / static_cast<double>(sets.size());
    std::printf("  size %u: %9.1f us/eval%s\n", size, mean_us,
                previous > 0.0
                    ? ("  (x" + std::to_string(mean_us / previous)
                           .substr(0, 4) + " vs previous size)")
                          .c_str()
                    : "");
    previous = mean_us;
  }
  std::printf("\npaper reference: ~6 ms (size 3) to ~201 ms (size 7) on a "
              "2004 PIV 1.7 GHz — a ~33x blow-up; the shape to check here "
              "is the exponential growth, not the absolute numbers.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
