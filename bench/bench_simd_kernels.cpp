// Runtime-dispatched SIMD kernels, measured level by level.
//
// For every dispatch level available on this host (always at least
// scalar) the four kernel families are timed on evaluation-shaped
// inputs, and the vector levels are compared against the scalar
// reference in the same binary:
//   1. popcount_words  — bitplane popcount (carrier-row counting);
//   2. combine_planes_count — the fused DFS plane intersection +
//      popcount (the kernel every pattern-table build runs per node);
//   3. EM E-step pair  — weighted_pair_products + scale_values on a
//      phase-fan-sized gather;
//   4. CLUMP           — chi_columns 2×2 scan + pearson_row_terms;
//   5. batched shapes  — batch_weighted_pair_products on a short-fan ×
//      many-lane SoA block and batch_chi_columns + batch_pearson_2xn
//      on one replicate sub-batch: the shapes the candidate-batched
//      evaluation actually dispatches, and the measurements the
//      AVX-512 FP routing decision (avx512 FP → avx2 bodies) was
//      re-checked against.
// Equivalence is asserted inline (integer kernels bit-exact, FP within
// 1e-9) — a fast wrong kernel aborts the bench.
//
// Results land in BENCH_simd_kernels.json with the machine context.
// Acceptance: popcount and plane speedups >= 4x vs scalar on AVX2-or-
// better hosts. CI only checks the floor when the stored machine
// context matches the runner's (bench_context.hpp).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_context.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

// Cohort-scale shapes: 600 individuals ≈ 10 words per plane is the
// repo's default workload, but kernel-dominated timing needs longer
// sweeps, so the word benches run on a 4096-word block (≈ 256k
// individuals) and the EM/CLUMP benches on fan sizes the 6-locus
// candidates actually produce.
constexpr std::size_t kWords = 4096;
constexpr std::size_t kPairs = 4096;
constexpr std::size_t kColumns = 512;
// Batched shapes: lanes × short fans is what the candidate grouper
// feeds batch_weighted_pair_products (fans below kSimdMinPairs), and
// one 64-replicate sub-batch of a 32-column table is what the batched
// CLUMP Monte-Carlo engine feeds the replicate kernels.
constexpr std::size_t kBatchLanes = 16;
constexpr std::size_t kBatchFan = 8;
constexpr std::size_t kBatchSupport = 64;
constexpr std::size_t kBatchCols = 32;
constexpr std::size_t kBatchReps = 64;

struct Inputs {
  std::vector<std::uint64_t> parent, lo, hi, out;
  std::vector<double> freq, products, top, bottom, chi, cells, col_sums;
  std::vector<std::uint32_t> h1, h2;
  std::vector<double> batch_freq, batch_products, batch_sums;
  std::vector<std::uint32_t> bh1, bh2;
  std::vector<double> rep_top, rep_bottom, rep_out, rep_col_sums, rep_pearson;
};

Inputs make_inputs() {
  Rng rng(2004);
  Inputs in;
  in.parent.resize(kWords);
  in.lo.resize(kWords);
  in.hi.resize(kWords);
  in.out.resize(kWords);
  for (std::size_t i = 0; i < kWords; ++i) {
    in.parent[i] = rng();
    in.lo[i] = rng();
    in.hi[i] = rng();
  }
  const std::size_t support = 1024;
  in.freq.resize(support);
  for (double& f : in.freq) f = rng.uniform() + 1e-6;
  in.h1.resize(kPairs);
  in.h2.resize(kPairs);
  for (std::size_t t = 0; t < kPairs; ++t) {
    in.h1[t] = static_cast<std::uint32_t>(rng.below(support));
    in.h2[t] = static_cast<std::uint32_t>(rng.below(support));
  }
  in.products.resize(kPairs);
  in.top.resize(kColumns);
  in.bottom.resize(kColumns);
  in.chi.resize(kColumns);
  in.cells.resize(kColumns);
  in.col_sums.resize(kColumns);
  for (std::size_t c = 0; c < kColumns; ++c) {
    in.top[c] = 50.0 * rng.uniform();
    in.bottom[c] = 50.0 * rng.uniform();
    in.cells[c] = 40.0 * rng.uniform();
    in.col_sums[c] = in.cells[c] + 40.0 * rng.uniform();
  }
  in.batch_freq.resize(kBatchLanes * kBatchSupport);
  for (double& f : in.batch_freq) f = rng.uniform() + 1e-6;
  in.bh1.resize(kBatchFan);
  in.bh2.resize(kBatchFan);
  for (std::size_t t = 0; t < kBatchFan; ++t) {
    in.bh1[t] = static_cast<std::uint32_t>(rng.below(kBatchSupport));
    in.bh2[t] = static_cast<std::uint32_t>(rng.below(kBatchSupport));
  }
  in.batch_products.resize(kBatchFan * kBatchLanes);
  in.batch_sums.resize(kBatchLanes);
  in.rep_top.resize(kBatchReps * kBatchCols);
  in.rep_bottom.resize(kBatchReps * kBatchCols);
  in.rep_out.resize(kBatchReps * kBatchCols);
  in.rep_pearson.resize(kBatchReps);
  in.rep_col_sums.resize(kBatchCols);
  for (double& v : in.rep_top) v = 30.0 * rng.uniform();
  for (double& v : in.rep_bottom) v = 30.0 * rng.uniform();
  for (double& v : in.rep_col_sums) v = 10.0 + 20.0 * rng.uniform();
  return in;
}

double row_total(const std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum;
}

/// Median-of-5 wall time of `reps` kernel sweeps, in nanoseconds per
/// sweep. The accumulator keeps the calls observable.
template <typename Fn>
double time_ns(std::size_t reps, Fn&& fn) {
  std::vector<double> samples;
  for (int s = 0; s < 5; ++s) {
    Stopwatch watch;
    for (std::size_t r = 0; r < reps; ++r) fn();
    samples.push_back(watch.elapsed_seconds() * 1e9 /
                      static_cast<double>(reps));
  }
  std::sort(samples.begin(), samples.end());
  return samples[2];
}

volatile double g_sink = 0.0;

struct LevelTimes {
  double popcount_ns = 0.0;
  double planes_ns = 0.0;
  double em_ns = 0.0;
  double clump_ns = 0.0;
  double batch_em_ns = 0.0;
  double batch_clump_ns = 0.0;
};

LevelTimes run_level(const util::SimdKernels& kernels, const Inputs& in,
                     Inputs& mut) {
  LevelTimes t;
  t.popcount_ns = time_ns(400, [&] {
    g_sink = g_sink + static_cast<double>(
        kernels.popcount_words(in.parent.data(), kWords));
  });
  t.planes_ns = time_ns(400, [&] {
    g_sink = g_sink + static_cast<double>(kernels.combine_planes_count(
        in.parent.data(), in.lo.data(), in.hi.data(), 0,
        ~std::uint64_t{0}, kWords, mut.out.data()));
  });
  const double row0 = row_total(in.top);
  const double row1 = row_total(in.bottom);
  const double total = row_total(in.cells) + row_total(in.col_sums);
  t.em_ns = time_ns(400, [&] {
    const double denom = kernels.weighted_pair_products(
        in.freq.data(), in.h1.data(), in.h2.data(), kPairs, 0.5,
        mut.products.data());
    kernels.scale_values(mut.products.data(), kPairs, 1.0 / denom);
    g_sink = g_sink + denom;
  });
  t.clump_ns = time_ns(400, [&] {
    kernels.chi_columns(in.top.data(), in.bottom.data(), kColumns, 0.0, 0.0,
                        row0, row1, mut.chi.data());
    g_sink = g_sink + kernels.pearson_row_terms(in.cells.data(), in.col_sums.data(),
                                        kColumns, row0, total);
  });
  const double brow0 = 40.0 * static_cast<double>(kBatchCols);
  const double brow1 = 37.5 * static_cast<double>(kBatchCols);
  const double btotal = row_total(in.rep_col_sums);
  t.batch_em_ns = time_ns(4000, [&] {
    kernels.batch_weighted_pair_products(
        in.batch_freq.data(), kBatchSupport, in.bh1.data(), in.bh2.data(),
        kBatchFan, 0.5, kBatchLanes, mut.batch_products.data(),
        mut.batch_sums.data());
    g_sink = g_sink + mut.batch_sums[0];
  });
  t.batch_clump_ns = time_ns(400, [&] {
    kernels.batch_chi_columns(in.rep_top.data(), in.rep_bottom.data(),
                              kBatchCols, kBatchReps, nullptr, nullptr, brow0,
                              brow1, mut.rep_out.data());
    kernels.batch_pearson_2xn(in.rep_top.data(), in.rep_bottom.data(),
                              in.rep_col_sums.data(), kBatchCols, kBatchReps,
                              brow0, brow1, btotal, mut.rep_pearson.data());
    g_sink = g_sink + mut.rep_pearson[0];
  });
  return t;
}

void check_equivalence(const util::SimdKernels& scalar,
                       const util::SimdKernels& vec, const char* name,
                       const Inputs& in, Inputs& mut) {
  // Integer kernels: bit-exact, including the pruning signal.
  if (scalar.popcount_words(in.parent.data(), kWords) !=
      vec.popcount_words(in.parent.data(), kWords)) {
    std::fprintf(stderr, "FATAL: %s popcount_words mismatch\n", name);
    std::exit(1);
  }
  std::vector<std::uint64_t> ref(kWords);
  const std::uint64_t any_ref =
      scalar.combine_planes(in.parent.data(), in.lo.data(), in.hi.data(),
                            ~std::uint64_t{0}, 0, kWords, ref.data());
  const std::uint64_t any_vec =
      vec.combine_planes(in.parent.data(), in.lo.data(), in.hi.data(),
                         ~std::uint64_t{0}, 0, kWords, mut.out.data());
  if (any_ref != any_vec || ref != mut.out) {
    std::fprintf(stderr, "FATAL: %s combine_planes mismatch\n", name);
    std::exit(1);
  }
  const std::uint64_t count_ref = scalar.combine_planes_count(
      in.parent.data(), in.lo.data(), in.hi.data(), ~std::uint64_t{0}, 0,
      kWords, ref.data());
  const std::uint64_t count_vec = vec.combine_planes_count(
      in.parent.data(), in.lo.data(), in.hi.data(), ~std::uint64_t{0}, 0,
      kWords, mut.out.data());
  if (count_ref != count_vec || ref != mut.out) {
    std::fprintf(stderr, "FATAL: %s combine_planes_count mismatch\n", name);
    std::exit(1);
  }
  // FP kernels: 1e-9 relative.
  std::vector<double> ref_products(kPairs), vec_products(kPairs);
  const double denom_ref = scalar.weighted_pair_products(
      in.freq.data(), in.h1.data(), in.h2.data(), kPairs, 0.5,
      ref_products.data());
  const double denom_vec = vec.weighted_pair_products(
      in.freq.data(), in.h1.data(), in.h2.data(), kPairs, 0.5,
      vec_products.data());
  if (std::abs(denom_ref - denom_vec) > 1e-9 * std::abs(denom_ref)) {
    std::fprintf(stderr, "FATAL: %s weighted_pair_products denom drift\n",
                 name);
    std::exit(1);
  }
  for (std::size_t i = 0; i < kPairs; ++i) {
    if (std::abs(ref_products[i] - vec_products[i]) >
        1e-9 * std::abs(ref_products[i]) + 1e-300) {
      std::fprintf(stderr, "FATAL: %s products[%zu] drift\n", name, i);
      std::exit(1);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Runtime-dispatched SIMD kernels ===\n\n");
  const Inputs in = make_inputs();
  Inputs mut = in;

  const std::vector<util::SimdLevel> levels = util::simd_available_levels();
  const util::SimdKernels& scalar =
      util::simd_kernels_for(util::SimdLevel::kScalar);

  std::FILE* json = std::fopen("BENCH_simd_kernels.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_simd_kernels.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  std::fprintf(json,
               "  \"workload\": \"%zu-word planes, %zu-pair E-step, "
               "%zu-column CLUMP scan; batched: %zu lanes x %zu-pair "
               "E-step, %zu reps x %zu-column CLUMP\",\n",
               kWords, kPairs, kColumns, kBatchLanes, kBatchFan, kBatchReps,
               kBatchCols);

  LevelTimes scalar_times;
  double best_popcount_speedup = 1.0;
  double best_planes_speedup = 1.0;
  double best_batch_em_speedup = 1.0;
  double best_batch_clump_speedup = 1.0;
  std::string best_level = "scalar";
  for (const util::SimdLevel level : levels) {
    const util::SimdKernels& kernels = util::simd_kernels_for(level);
    const char* name = util::simd_level_name(level);
    if (level != util::SimdLevel::kScalar) {
      check_equivalence(scalar, kernels, name, in, mut);
    }
    const LevelTimes t = run_level(kernels, in, mut);
    if (level == util::SimdLevel::kScalar) scalar_times = t;
    const double popcount_speedup = scalar_times.popcount_ns / t.popcount_ns;
    const double planes_speedup = scalar_times.planes_ns / t.planes_ns;
    if (level != util::SimdLevel::kScalar &&
        popcount_speedup > best_popcount_speedup) {
      best_popcount_speedup = popcount_speedup;
      best_planes_speedup = planes_speedup;
      best_batch_em_speedup = scalar_times.batch_em_ns / t.batch_em_ns;
      best_batch_clump_speedup = scalar_times.batch_clump_ns / t.batch_clump_ns;
      best_level = name;
    }
    std::printf(
        "%-7s popcount %7.0f ns (%5.2fx)  planes %7.0f ns (%5.2fx)  "
        "em %7.0f ns (%5.2fx)  clump %7.0f ns (%5.2fx)\n"
        "        batch-em %6.0f ns (%5.2fx)  batch-clump %7.0f ns (%5.2fx)\n",
        name, t.popcount_ns, popcount_speedup, t.planes_ns, planes_speedup,
        t.em_ns, scalar_times.em_ns / t.em_ns, t.clump_ns,
        scalar_times.clump_ns / t.clump_ns, t.batch_em_ns,
        scalar_times.batch_em_ns / t.batch_em_ns, t.batch_clump_ns,
        scalar_times.batch_clump_ns / t.batch_clump_ns);
    std::fprintf(json,
                 "  \"%s_popcount_ns\": %.1f,\n"
                 "  \"%s_planes_ns\": %.1f,\n"
                 "  \"%s_em_estep_ns\": %.1f,\n"
                 "  \"%s_clump_ns\": %.1f,\n"
                 "  \"%s_batch_em_ns\": %.1f,\n"
                 "  \"%s_batch_clump_ns\": %.1f,\n",
                 name, t.popcount_ns, name, t.planes_ns, name, t.em_ns,
                 name, t.clump_ns, name, t.batch_em_ns, name,
                 t.batch_clump_ns);
  }

  std::fprintf(json,
               "  \"best_vector_level\": \"%s\",\n"
               "  \"popcount_speedup\": %.3f,\n"
               "  \"planes_speedup\": %.3f,\n"
               "  \"batch_em_speedup\": %.3f,\n"
               "  \"batch_clump_speedup\": %.3f\n"
               "}\n",
               best_level.c_str(), best_popcount_speedup,
               best_planes_speedup, best_batch_em_speedup,
               best_batch_clump_speedup);
  std::fclose(json);
  std::printf("\nwrote BENCH_simd_kernels.json (best vector level: %s)\n",
              best_level.c_str());
  if (levels.size() > 1 &&
      (best_popcount_speedup < 4.0 || best_planes_speedup < 4.0)) {
    std::fprintf(stderr,
                 "WARNING: integer-kernel speedup below the 4x acceptance "
                 "floor\n");
  }
  return 0;
}
