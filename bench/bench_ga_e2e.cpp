// End-to-end GA wall time with the incremental evaluation pipeline.
//
// A seed-pinned full GA run on an EM-dominated Monte-Carlo workload
// (60 SNPs, 300+300 individuals, up to 6-locus candidates, T3 fitness
// with CLUMP Monte-Carlo p-values), three ways:
//   1. baseline  — pattern cache off, warm starts off, fixed-replicate
//      Monte Carlo (the pre-PR per-candidate pipeline);
//   2. exact     — pattern cache on, everything else off. Gate: this
//      run must walk the bit-for-bit identical trajectory to the
//      baseline (same individuals, same fitness doubles, same
//      generation count) — aborts on mismatch;
//   3. FP-kernel legs (cache on, early-stop MC, warm starts OFF so the
//      candidate-batched dispatcher is eligible — warm-started EM is
//      route-dependent, so batching only covers cold solves):
//        a. no-simd      — scalar per-candidate kernels;
//        b. simd         — vector kernels, per-candidate dispatch
//                          (batch_kernels off);
//        c. simd+batched — the default configuration: vector kernels
//                          over candidate-grouped SoA EM and
//                          replicate-batched CLUMP columns.
//      Statistics agree with each other to ~1e-9; the trajectory gate
//      applies to run 2 only. ga_simd_speedup = a / c is the number
//      the simd_kernels default-on decision rests on (acceptance
//      1.3x, CI floor 1.0x); ga_batch_speedup = b / c isolates what
//      batching added on top of the same vector kernels.
//   4. optimized — pattern cache + parent warm starts + early-stopping
//      Monte Carlo + simd (the prior PR configuration; warm starts
//      suppress batching).
//
// Results land in BENCH_ga_e2e.json (speedups plus the cache /
// warm-start / Monte-Carlo / batch counters behind them). Acceptance:
// >= 2x end-to-end, hard floor 1.5x (the CI smoke job compares against
// the committed baseline at the floor).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_context.hpp"
#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

const genomics::SyntheticDataset& cohort() {
  static const auto synthetic = [] {
    genomics::SyntheticConfig config;
    config.snp_count = 60;
    config.affected_count = 300;
    config.unaffected_count = 300;
    config.unknown_count = 0;
    config.active_snp_count = 4;
    Rng rng(2004);
    return genomics::generate_synthetic(config, rng);
  }();
  return synthetic;
}

/// The Monte-Carlo budget is large enough that the Hoeffding stopper
/// has real room (decisions at 64/128/... replicates), and the early
/// stop threshold sits where most candidates — strongly significant
/// ones near p ~ 0 and null ones with p spread over (0,1) — decide
/// within the first batches.
stats::EvaluatorConfig evaluator_config(bool pattern_cache, bool warm_starts,
                                        bool early_stop,
                                        bool simd_kernels = false,
                                        bool batch_kernels = true) {
  stats::EvaluatorConfig config;
  config.simd_kernels = simd_kernels;
  config.batch_kernels = batch_kernels;
  config.fitness_statistic = stats::FitnessStatistic::T3;
  config.clump.monte_carlo_trials = 1200;
  config.clump.monte_carlo_workers = 1;
  config.incremental.pattern_cache = pattern_cache;
  config.incremental.warm_start_parents = warm_starts;
  if (early_stop) {
    config.clump.mc_early_stop = true;
    config.clump.mc_min_batch = 64;
    config.clump.mc_significance = 0.3;
  }
  return config;
}

ga::GaConfig ga_config() {
  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 6;
  config.population_size = 36;
  config.min_subpopulation = 6;
  config.crossovers_per_generation = 8;
  config.mutations_per_generation = 12;
  config.stagnation_generations = 100;  // run the full generation budget
  config.random_immigrant_stagnation = 5;
  config.max_generations = 10;
  config.seed = 77;
  return config;
}

struct TimedRun {
  ga::GaResult result;
  double ms = 0.0;
};

TimedRun run_ga(const stats::EvaluatorConfig& evaluator_config) {
  const stats::HaplotypeEvaluator evaluator(cohort().dataset,
                                            evaluator_config);
  ga::GaEngine engine(evaluator, ga_config());
  Stopwatch watch;
  TimedRun timed;
  timed.result = engine.run();
  timed.ms = watch.elapsed_ms();
  return timed;
}

/// The pattern cache is a construction shortcut, never a semantic
/// change: with warm starts and early stopping off its trajectory must
/// be bit-for-bit the baseline's. A fast wrong cache is worthless.
void gate_equivalence(const ga::GaResult& baseline,
                      const ga::GaResult& exact) {
  if (baseline.generations != exact.generations ||
      baseline.best_by_size.size() != exact.best_by_size.size()) {
    std::fprintf(stderr, "FATAL: cached run diverged in shape\n");
    std::exit(1);
  }
  for (std::size_t i = 0; i < baseline.best_by_size.size(); ++i) {
    const auto& expect = baseline.best_by_size[i];
    const auto& got = exact.best_by_size[i];
    if (!expect.same_snps(got) || expect.fitness() != got.fitness()) {
      std::fprintf(stderr,
                   "FATAL: cached run diverged at size slot %zu: fitness "
                   "%.17g vs %.17g\n",
                   i, got.fitness(), expect.fitness());
      std::exit(1);
    }
  }
  std::printf("equivalence: cached GA trajectory is bit-for-bit the "
              "baseline's (%u generations, %zu size slots)\n",
              baseline.generations, baseline.best_by_size.size());
}

double rate(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : static_cast<double>(part) /
                                static_cast<double>(whole);
}

}  // namespace

int main() {
  std::printf("=== End-to-end GA: incremental evaluation pipeline ===\n\n");

  const TimedRun baseline = run_ga(evaluator_config(false, false, false));
  std::printf("baseline  (cache off, warm off, fixed MC): %.1f ms, %llu "
              "evaluations\n",
              baseline.ms,
              static_cast<unsigned long long>(baseline.result.evaluations));

  const TimedRun exact = run_ga(evaluator_config(true, false, false));
  std::printf("exact     (cache on,  warm off, fixed MC): %.1f ms\n",
              exact.ms);
  gate_equivalence(baseline.result, exact.result);

  // The FP-kernel comparison is the finest-grained one here, so a
  // single run each would be dominated by host jitter: interleave
  // three runs per leg and keep each leg's median, which cancels slow
  // drift. Warm starts stay off in these three legs — warm-started EM
  // solves are route-dependent, so the batched dispatcher only covers
  // cold solves, and these legs measure exactly the FP decision.
  std::vector<double> nosimd_samples, unbatched_samples, batched_samples,
      optimized_samples;
  TimedRun nosimd, unbatched, batched, optimized;
  for (int rep = 0; rep < 3; ++rep) {
    nosimd = run_ga(evaluator_config(true, false, true, false));
    nosimd_samples.push_back(nosimd.ms);
    unbatched = run_ga(evaluator_config(true, false, true, true, false));
    unbatched_samples.push_back(unbatched.ms);
    batched = run_ga(evaluator_config(true, false, true, true));
    batched_samples.push_back(batched.ms);
    optimized = run_ga(evaluator_config(true, true, true, true));
    optimized_samples.push_back(optimized.ms);
  }
  std::sort(nosimd_samples.begin(), nosimd_samples.end());
  std::sort(unbatched_samples.begin(), unbatched_samples.end());
  std::sort(batched_samples.begin(), batched_samples.end());
  std::sort(optimized_samples.begin(), optimized_samples.end());
  nosimd.ms = nosimd_samples[nosimd_samples.size() / 2];
  unbatched.ms = unbatched_samples[unbatched_samples.size() / 2];
  batched.ms = batched_samples[batched_samples.size() / 2];
  optimized.ms = optimized_samples[optimized_samples.size() / 2];

  const double simd_speedup = nosimd.ms / batched.ms;
  const double batch_speedup = unbatched.ms / batched.ms;
  std::printf(
      "no-simd       (cache on, warm off, early-stop MC): %.1f ms "
      "(median of 3)\n"
      "simd          (+ vector kernels, per-candidate):   %.1f ms\n"
      "simd+batched  (+ candidate/replicate batching, level %s): %.1f ms "
      "— %.2fx vs no-simd (acceptance 1.3x, floor 1x), %.2fx vs "
      "unbatched simd\n"
      "  batched EM: %llu runs covering %llu lanes (%.1f lanes/run); "
      "batched MC replicates: %llu\n",
      nosimd.ms, unbatched.ms, util::simd_level_name(util::simd_level()),
      batched.ms, simd_speedup, batch_speedup,
      static_cast<unsigned long long>(batched.result.em_batch_runs),
      static_cast<unsigned long long>(batched.result.em_batch_lanes),
      batched.result.em_batch_runs == 0
          ? 0.0
          : static_cast<double>(batched.result.em_batch_lanes) /
                static_cast<double>(batched.result.em_batch_runs),
      static_cast<unsigned long long>(batched.result.mc_batched_replicates));

  const auto& pattern = optimized.result.pattern_cache;
  const auto& cache = optimized.result.cache_stats;
  const std::uint64_t mc_total = optimized.result.mc_replicates_run +
                                 optimized.result.mc_replicates_saved;
  const double incremental_rate =
      rate(pattern.extended + pattern.projected,
           pattern.extended + pattern.projected + pattern.fresh);
  const double speedup = baseline.ms / optimized.ms;
  std::printf(
      "optimized (cache + warm starts + early-stop MC + simd): %.1f ms — "
      "%.2fx vs baseline (acceptance 2x, floor 1.5x)\n"
      "  pattern tables: %llu extended, %llu projected, %llu fresh "
      "(%.0f%% incremental)\n"
      "  fitness cache: %.0f%% hit rate; warm starts kept %llu / fell "
      "back %llu\n"
      "  Monte Carlo: %llu of %llu replicates run (%.0f%% saved)\n",
      optimized.ms, speedup,
      static_cast<unsigned long long>(pattern.extended),
      static_cast<unsigned long long>(pattern.projected),
      static_cast<unsigned long long>(pattern.fresh),
      100.0 * incremental_rate,
      100.0 * rate(cache.hits, cache.hits + cache.misses),
      static_cast<unsigned long long>(pattern.warm_starts),
      static_cast<unsigned long long>(pattern.warm_fallbacks),
      static_cast<unsigned long long>(optimized.result.mc_replicates_run),
      static_cast<unsigned long long>(mc_total),
      100.0 * rate(optimized.result.mc_replicates_saved, mc_total));

  std::FILE* json = std::fopen("BENCH_ga_e2e.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_ga_e2e.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  std::fprintf(
      json,
      "  \"workload\": \"60 SNPs, 300+300 individuals, 10-generation GA, "
      "T3 fitness, 1200 MC trials\",\n"
      "  \"ga_generations\": %u,\n"
      "  \"ga_evaluations\": %llu,\n"
      "  \"ga_baseline_ms\": %.3f,\n"
      "  \"ga_exact_cache_ms\": %.3f,\n"
      "  \"ga_optimized_nosimd_ms\": %.3f,\n"
      "  \"ga_simd_unbatched_ms\": %.3f,\n"
      "  \"ga_simd_batched_ms\": %.3f,\n"
      "  \"ga_optimized_ms\": %.3f,\n"
      "  \"ga_speedup\": %.3f,\n"
      "  \"ga_simd_speedup\": %.3f,\n"
      "  \"ga_batch_speedup\": %.3f,\n"
      "  \"em_batch_runs\": %llu,\n"
      "  \"em_batch_lanes\": %llu,\n"
      "  \"mc_batched_replicates\": %llu,\n"
      "  \"pattern_entry_reuses\": %llu,\n"
      "  \"pattern_entry_builds\": %llu,\n"
      "  \"pattern_extended\": %llu,\n"
      "  \"pattern_projected\": %llu,\n"
      "  \"pattern_fresh\": %llu,\n"
      "  \"pattern_incremental_rate\": %.4f,\n"
      "  \"provenance_hints\": %llu,\n"
      "  \"fitness_cache_hit_rate\": %.4f,\n"
      "  \"warm_starts\": %llu,\n"
      "  \"warm_fallbacks\": %llu,\n"
      "  \"warm_start_rate\": %.4f,\n"
      "  \"mc_replicates_run\": %llu,\n"
      "  \"mc_replicates_saved\": %llu,\n"
      "  \"mc_saved_fraction\": %.4f\n"
      "}\n",
      baseline.result.generations,
      static_cast<unsigned long long>(baseline.result.evaluations),
      baseline.ms, exact.ms, nosimd.ms, unbatched.ms, batched.ms,
      optimized.ms, speedup, simd_speedup, batch_speedup,
      static_cast<unsigned long long>(batched.result.em_batch_runs),
      static_cast<unsigned long long>(batched.result.em_batch_lanes),
      static_cast<unsigned long long>(batched.result.mc_batched_replicates),
      static_cast<unsigned long long>(pattern.entry_reuses),
      static_cast<unsigned long long>(pattern.entry_builds),
      static_cast<unsigned long long>(pattern.extended),
      static_cast<unsigned long long>(pattern.projected),
      static_cast<unsigned long long>(pattern.fresh), incremental_rate,
      static_cast<unsigned long long>(pattern.provenance_hints),
      rate(cache.hits, cache.hits + cache.misses),
      static_cast<unsigned long long>(pattern.warm_starts),
      static_cast<unsigned long long>(pattern.warm_fallbacks),
      rate(pattern.warm_starts,
           pattern.warm_starts + pattern.warm_fallbacks),
      static_cast<unsigned long long>(optimized.result.mc_replicates_run),
      static_cast<unsigned long long>(optimized.result.mc_replicates_saved),
      rate(optimized.result.mc_replicates_saved, mc_total));
  std::fclose(json);
  std::printf("\nwrote BENCH_ga_e2e.json\n");
  if (speedup < 1.5) {
    std::fprintf(stderr, "WARNING: end-to-end speedup below the 1.5x floor\n");
  }
  if (simd_speedup < 1.0) {
    std::fprintf(stderr, "WARNING: simd e2e leg below the 1x floor\n");
  }
  return 0;
}
