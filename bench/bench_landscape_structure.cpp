// Regenerates the §3 landscape study at the paper's scale: exhaustive
// enumeration of haplotype sizes 2-4 over 51 SNPs (1 275 / 20 825 /
// 249 900 candidates), the per-size score distributions (why sizes are
// not comparable) and the building-block containment of the optima
// (why constructive methods fail).
#include <algorithm>
#include <cstdio>

#include "analysis/landscape.hpp"
#include "ga/haplotype_individual.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/stopwatch.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper section 3: landscape study, 51 SNPs, sizes 2-4 "
              "===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 0;
  data_config.active_snp_count = 3;
  Rng data_rng(314);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  analysis::LandscapeConfig config;
  config.top_n = 10;
  config.block_quantile = 0.05;

  Stopwatch watch;
  const auto study = analysis::run_landscape_study(evaluator, 2, 4, config);
  std::printf("enumerated sizes 2-4 in %.1f s\n\n", watch.elapsed_seconds());

  TextTable summary({"size", "candidates", "mean", "stddev", "max",
                     "best haplotype (1-based)"});
  for (const auto& s : study.summaries) {
    summary.add_row({std::to_string(s.haplotype_size),
                     std::to_string(s.candidates), TextTable::num(s.mean, 2),
                     TextTable::num(s.stddev, 2), TextTable::num(s.max, 2),
                     ga::HaplotypeIndividual(s.top.front().snps).to_string()});
  }
  std::printf("%s\n", summary.str().c_str());

  TextTable blocks({"size", "top-10 without a top-5% sub-haplotype",
                    "median best-subset percentile"});
  for (const auto& report : study.building_blocks) {
    auto percentiles = report.best_subset_percentile;
    std::sort(percentiles.begin(), percentiles.end());
    const double median = percentiles[percentiles.size() / 2];
    blocks.add_row({std::to_string(report.haplotype_size),
                    TextTable::num(100.0 * report.fraction_without_good_blocks,
                                   0) + "%",
                    TextTable::num(100.0 * median, 1) + "%"});
  }
  std::printf("%s", blocks.str().c_str());

  std::printf(
      "\npaper reference shape: (1) score ranges grow with size, so "
      "haplotypes of different sizes are not comparable (hence one "
      "subpopulation per size); (2) a substantial share of the best "
      "size-k haplotypes contain no high-ranking size-(k-1) haplotype, "
      "so greedy construction cannot find them.\n");
  std::printf("\nplanted risk SNPs (1-based):");
  for (const auto snp : synthetic.truth.snps) std::printf(" %u", snp + 1);
  std::printf("\n");
  return 0;
}
