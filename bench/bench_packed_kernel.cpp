// Bit-packed genotype kernel vs the byte reference.
//
// The evaluation pipeline packs unconditionally now (the deprecated
// EvaluatorConfig::packed_kernel no-op is removed; DESIGN.md
// §"packed_kernel retirement"), so the byte implementations here —
// byte_locus_counts and GenotypePatternTable::build — are retained
// reference code, not a selectable production path. Two claims are
// checked, matching the packed kernel's contract:
//   1. speed  — per-locus genotype counting over the packed planes is
//      at least ~2x faster than a byte load + branch per genotype, and
//      the joint-pattern walk (the EM E-step's input) scales with
//      words x patterns instead of individuals x loci;
//   2. safety — the pattern tables the packed walk produces are
//      bit-for-bit identical (patterns, counts, exclusions, order) to
//      the byte reference's, so the speedup is free.
// The equivalence check runs first and aborts the benchmark on any
// mismatch; the timed comparison prints the measured ratio.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "genomics/packed_genotype.hpp"
#include "genomics/synthetic.hpp"
#include "stats/em_haplotype.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

// A cohort large enough that the word-level kernels have full words to
// chew on: 2000 individuals x 64 SNPs (the paper's cohorts are smaller;
// per-word costs are what the kernel changes).
const genomics::SyntheticDataset& big_cohort() {
  static const auto synthetic = [] {
    genomics::SyntheticConfig config;
    config.snp_count = 64;
    config.affected_count = 1000;
    config.unaffected_count = 1000;
    config.unknown_count = 0;
    config.active_snp_count = 3;
    Rng rng(1915);
    return genomics::generate_synthetic(config, rng);
  }();
  return synthetic;
}

genomics::LocusCounts byte_locus_counts(const genomics::GenotypeMatrix& m,
                                        genomics::SnpIndex snp) {
  genomics::LocusCounts counts;
  for (std::uint32_t i = 0; i < m.individual_count(); ++i) {
    switch (m.at(i, snp)) {
      case genomics::Genotype::HomOne: ++counts.hom_one; break;
      case genomics::Genotype::Het: ++counts.het; break;
      case genomics::Genotype::HomTwo: ++counts.hom_two; break;
      case genomics::Genotype::Missing: ++counts.missing; break;
    }
  }
  return counts;
}

void BM_LocusCountsByte(benchmark::State& state) {
  const auto& matrix = big_cohort().dataset.genotypes();
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {
      benchmark::DoNotOptimize(byte_locus_counts(matrix, s).allele_two());
    }
  }
}
BENCHMARK(BM_LocusCountsByte);

void BM_LocusCountsPacked(benchmark::State& state) {
  const genomics::PackedGenotypeMatrix packed(big_cohort().dataset.genotypes());
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < packed.snp_count(); ++s) {
      benchmark::DoNotOptimize(packed.locus_counts(s).allele_two());
    }
  }
}
BENCHMARK(BM_LocusCountsPacked);

void BM_PatternTableByte(benchmark::State& state) {
  const auto& matrix = big_cohort().dataset.genotypes();
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(size);
  const auto snps = rng.sample_without_replacement(matrix.snp_count(), size);
  std::vector<std::uint32_t> everyone(matrix.individual_count());
  for (std::uint32_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::GenotypePatternTable::build(matrix, snps, everyone)
            .total_individuals());
  }
}
BENCHMARK(BM_PatternTableByte)->Arg(2)->Arg(4)->Arg(6);

void BM_PatternTablePacked(benchmark::State& state) {
  const genomics::PackedGenotypeMatrix packed(big_cohort().dataset.genotypes());
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(size);
  const auto snps = rng.sample_without_replacement(packed.snp_count(), size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::GenotypePatternTable::build_packed(packed, snps)
            .total_individuals());
  }
}
BENCHMARK(BM_PatternTablePacked)->Arg(2)->Arg(4)->Arg(6);

void BM_FitnessPipeline(benchmark::State& state) {
  // One pipeline configuration only: the packed kernel is the pipeline
  // (the packed_kernel toggle is gone), so there is no byte e2e leg to
  // race it against anymore.
  const stats::HaplotypeEvaluator evaluator(big_cohort().dataset);
  Rng rng(7);
  const auto snps = rng.sample_without_replacement(64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_full(snps).fitness);
  }
}
BENCHMARK(BM_FitnessPipeline);

/// Bit-for-bit pattern-table equivalence over random candidates of
/// every GA size: the packed DFS walk must reproduce the byte
/// reference's patterns, counts, exclusions and ordering exactly. Any
/// mismatch aborts: a fast wrong kernel is worthless.
void verify_equivalence() {
  const auto& matrix = big_cohort().dataset.genotypes();
  const genomics::PackedGenotypeMatrix packed(matrix);
  std::vector<std::uint32_t> everyone(matrix.individual_count());
  for (std::uint32_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  Rng rng(20040426);
  std::uint32_t checked = 0;
  for (std::uint32_t size = 2; size <= 6; ++size) {
    for (std::uint32_t trial = 0; trial < 20; ++trial) {
      const auto snps = rng.sample_without_replacement(64, size);
      const auto byte_table =
          stats::GenotypePatternTable::build(matrix, snps, everyone);
      const auto packed_table =
          stats::GenotypePatternTable::build_packed(packed, snps);
      bool same =
          byte_table.total_individuals() == packed_table.total_individuals() &&
          byte_table.excluded_missing() == packed_table.excluded_missing() &&
          byte_table.patterns().size() == packed_table.patterns().size();
      for (std::size_t p = 0; same && p < byte_table.patterns().size(); ++p) {
        const auto& expect = byte_table.patterns()[p];
        const auto& got = packed_table.patterns()[p];
        same = expect.hom_two_mask == got.hom_two_mask &&
               expect.het_mask == got.het_mask &&
               expect.missing_mask == got.missing_mask &&
               expect.count == got.count;
      }
      if (!same) {
        std::fprintf(stderr,
                     "FATAL: packed/byte pattern table mismatch at size %u\n",
                     size);
        std::exit(1);
      }
      ++checked;
    }
  }
  std::printf("equivalence: %u random candidates (sizes 2-6), packed "
              "pattern tables == byte reference bit-for-bit\n",
              checked);
}

/// Prints the headline per-locus counting ratio (the >= 2x criterion).
void report_locus_speedup() {
  const auto& matrix = big_cohort().dataset.genotypes();
  const genomics::PackedGenotypeMatrix packed(matrix);
  constexpr std::uint32_t kRounds = 200;
  std::uint64_t sink = 0;

  for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {  // warm-up
    sink += byte_locus_counts(matrix, s).het + packed.locus_counts(s).het;
  }
  Stopwatch byte_watch;
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {
      sink += byte_locus_counts(matrix, s).allele_two();
    }
  }
  const double byte_ms = byte_watch.elapsed_ms();
  Stopwatch packed_watch;
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    for (std::uint32_t s = 0; s < matrix.snp_count(); ++s) {
      sink += packed.locus_counts(s).allele_two();
    }
  }
  const double packed_ms = packed_watch.elapsed_ms();
  std::printf("per-locus counting, %u individuals x %u SNPs x %u rounds: "
              "byte %.1f ms, packed %.1f ms — %.1fx "
              "(acceptance floor: 2x)%s\n\n",
              matrix.individual_count(), matrix.snp_count(), kRounds,
              byte_ms, packed_ms, byte_ms / packed_ms,
              sink == 0 ? "!" : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Packed genotype kernel: byte path vs 2-bit planes ===\n\n");
  verify_equivalence();
  report_locus_speedup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
