// Transport-layer cost study (ISSUE 6): what the farm pays for moving
// its messages through each transport, and what the cross-process
// fault-tolerance machinery costs when it is actually exercised.
//
// Sections, echoed to stdout and recorded in BENCH_transport.json:
//   1. frame codec  — encode+decode throughput for farm-sized payloads;
//   2. round trip   — single ping/pong latency per transport;
//   3. farm phases  — generation-sized evaluation batches through the
//      same MasterSlaveFarm over in-process, Unix-socket, and TCP
//      transports (the socket overhead is the price of real process
//      isolation — it must stay small next to the evaluation cost);
//   4. chaos        — the Unix-socket farm re-run with injected kills
//      and corrupt frames, measuring what recovery adds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_context.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/frame.hpp"
#include "parallel/master_slave.hpp"
#include "parallel/socket_transport.hpp"
#include "parallel/transport.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table_format.hpp"

namespace {

using namespace ldga;
using parallel::FrameDecoder;
using parallel::MasterSlaveFarm;
using parallel::Message;
using parallel::Packer;
using parallel::SocketTransportConfig;
using parallel::TransportFactory;

constexpr std::int32_t kPing = 1;
constexpr std::int32_t kQuit = 2;

void report_frame_codec(std::FILE* json) {
  // A farm work message is a few dozen bytes; a result is smaller.
  Message message;
  message.source = 3;
  message.tag = kPing;
  message.payload.assign(64, 0xa5);
  constexpr int kFrames = 200000;

  Stopwatch watch;
  FrameDecoder decoder;
  std::uint64_t decoded = 0;
  for (int i = 0; i < kFrames; ++i) {
    const auto frame = parallel::encode_frame(message);
    decoder.feed(frame.data(), frame.size());
    while (decoder.next()) ++decoded;
  }
  const double seconds = watch.elapsed_seconds();
  const double per_frame_us = 1e6 * seconds / kFrames;
  std::printf("frame codec: %d x 64-byte payloads encode+decode in %.3f s "
              "(%.2f us/frame, %llu decoded)\n\n",
              kFrames, seconds, per_frame_us,
              static_cast<unsigned long long>(decoded));
  std::fprintf(json, "  \"frame_codec_us_per_frame\": %.4f,\n",
               per_frame_us);
}

/// One worker that doubles an i32 until told to quit.
parallel::Transport::WorkerBody echo_body() {
  return [](parallel::WorkerChannel& channel) {
    for (;;) {
      Message message;
      try {
        message = channel.receive_from_master();
      } catch (const parallel::TransportClosed&) {
        return;
      }
      if (message.tag == kQuit) return;
      Packer reply;
      reply.pack(message.unpacker().unpack<std::int32_t>() * 2);
      channel.send_to_master(kPing, std::move(reply));
    }
  };
}

double round_trip_us(parallel::Transport& transport, int round_trips) {
  const auto worker = transport.spawn_worker();
  // Warm-up exchange (forks, connects, and faults in the first page).
  Packer warm;
  warm.pack<std::int32_t>(1);
  transport.send_to_worker(worker, kPing, std::move(warm));
  while (transport.receive().tag != kPing) {
  }

  Stopwatch watch;
  for (int i = 0; i < round_trips; ++i) {
    Packer ping;
    ping.pack<std::int32_t>(i);
    transport.send_to_worker(worker, kPing, std::move(ping));
    for (;;) {
      const Message reply = transport.receive();
      if (reply.tag == kPing) break;  // skip heartbeats
    }
  }
  const double us = 1e6 * watch.elapsed_seconds() / round_trips;
  transport.send_to_worker(worker, kQuit, Packer{});
  return us;
}

void report_round_trips(std::FILE* json) {
  constexpr int kRoundTrips = 2000;
  std::printf("--- single-message round trip (%d iterations) ---\n",
              kRoundTrips);
  TextTable table({"transport", "round trip (us)"});

  const auto in_process = parallel::make_in_process_transport(echo_body());
  const double in_process_us = round_trip_us(*in_process, kRoundTrips);
  table.add_row({"in-process", TextTable::num(in_process_us, 2)});

  SocketTransportConfig unix_config;
  const auto unix_transport =
      parallel::make_socket_transport(echo_body(), unix_config);
  const double unix_us = round_trip_us(*unix_transport, kRoundTrips);
  table.add_row({"socket-unix", TextTable::num(unix_us, 2)});

  SocketTransportConfig tcp_config;
  tcp_config.family = SocketTransportConfig::Family::kTcp;
  const auto tcp_transport =
      parallel::make_socket_transport(echo_body(), tcp_config);
  const double tcp_us = round_trip_us(*tcp_transport, kRoundTrips);
  table.add_row({"socket-tcp", TextTable::num(tcp_us, 2)});

  std::printf("%s\n", table.str().c_str());
  std::fprintf(json,
               "  \"round_trip_us\": {\"in_process\": %.3f, "
               "\"socket_unix\": %.3f, \"socket_tcp\": %.3f},\n",
               in_process_us, unix_us, tcp_us);
}

struct FarmRun {
  double phase_seconds = 0.0;
  parallel::FarmStats stats;
};

FarmRun run_farm_phases(
    const stats::HaplotypeEvaluator& evaluator,
    const std::vector<std::vector<genomics::SnpIndex>>& batch,
    TransportFactory factory,
    std::shared_ptr<parallel::FaultInjector> injector = nullptr,
    parallel::FarmPolicy policy = {}) {
  const auto worker = [&evaluator](const std::vector<genomics::SnpIndex>& s) {
    return evaluator.evaluate_full(s).fitness;
  };
  MasterSlaveFarm<std::vector<genomics::SnpIndex>, double> farm(
      4, worker, policy, std::move(injector), std::move(factory));
  farm.run(batch);  // warm-up
  constexpr int kPhases = 3;
  Stopwatch watch;
  for (int phase = 0; phase < kPhases; ++phase) {
    benchmark::DoNotOptimize(farm.run(batch));
  }
  FarmRun result;
  result.phase_seconds = watch.elapsed_seconds() / kPhases;
  result.stats = farm.stats();
  return result;
}

void report_farm(std::FILE* json) {
  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 0;
  Rng data_rng(65);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  Rng rng(7);
  std::vector<std::vector<genomics::SnpIndex>> batch;
  for (int i = 0; i < 96; ++i) {
    batch.push_back(rng.sample_without_replacement(51, 4));
  }

  std::printf("--- evaluation farm, 4 slaves, %zu-task phases ---\n",
              batch.size());
  TextTable table({"transport", "phase (s)", "vs in-process"});

  const FarmRun in_process = run_farm_phases(
      evaluator, batch, parallel::in_process_transport_factory());
  table.add_row({"in-process", TextTable::num(in_process.phase_seconds, 4),
                 TextTable::num(1.0, 2)});

  const FarmRun unix_run = run_farm_phases(
      evaluator, batch, parallel::socket_transport_factory({}));
  table.add_row({"socket-unix", TextTable::num(unix_run.phase_seconds, 4),
                 TextTable::num(
                     unix_run.phase_seconds / in_process.phase_seconds, 2)});

  SocketTransportConfig tcp_config;
  tcp_config.family = SocketTransportConfig::Family::kTcp;
  const FarmRun tcp_run = run_farm_phases(
      evaluator, batch, parallel::socket_transport_factory(tcp_config));
  table.add_row({"socket-tcp", TextTable::num(tcp_run.phase_seconds, 4),
                 TextTable::num(
                     tcp_run.phase_seconds / in_process.phase_seconds, 2)});
  std::printf("%s\n", table.str().c_str());

  // Chaos leg: kills + corrupt frames every phase; recovery (respawn,
  // requeue) is the measured overhead.
  parallel::FaultInjector::Config faults;
  faults.kill_on_tasks = {10};
  faults.corrupt_on_tasks = {40};
  parallel::FarmPolicy policy;
  policy.max_task_retries = 8;
  policy.respawn_backoff = std::chrono::milliseconds(1);
  const FarmRun chaos = run_farm_phases(
      evaluator, batch, parallel::socket_transport_factory({}),
      std::make_shared<parallel::FaultInjector>(faults), policy);
  std::printf("socket-unix under chaos (1 kill + 1 corrupt frame per "
              "phase): %.4f s/phase (%.2fx clean socket; %llu losses, "
              "%llu respawns across run)\n\n",
              chaos.phase_seconds,
              chaos.phase_seconds / unix_run.phase_seconds,
              static_cast<unsigned long long>(chaos.stats.worker_losses),
              static_cast<unsigned long long>(chaos.stats.respawns));

  std::fprintf(json,
               "  \"farm_phase_seconds\": {\"in_process\": %.5f, "
               "\"socket_unix\": %.5f, \"socket_tcp\": %.5f, "
               "\"socket_unix_chaos\": %.5f},\n"
               "  \"socket_overhead_ratio\": %.3f,\n"
               "  \"chaos_overhead_ratio\": %.3f\n",
               in_process.phase_seconds, unix_run.phase_seconds,
               tcp_run.phase_seconds, chaos.phase_seconds,
               unix_run.phase_seconds / in_process.phase_seconds,
               chaos.phase_seconds / unix_run.phase_seconds);
}

}  // namespace

int main() {
  std::printf("=== Transport layer: in-process vs socket farm ===\n\n");
  std::FILE* json = std::fopen("BENCH_transport.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_transport.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  report_frame_codec(json);
  report_round_trips(json);
  report_farm(json);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_transport.json\n");
  return 0;
}
