// Demonstrates the §3 argument at paper scale: constructive (greedy /
// beam) search, which builds size-(k+1) haplotypes from good size-k
// ones, misses optima that the exhaustive enumeration (sizes <= 4) and
// the GA find — because "some very good haplotypes of size k are not
// always composed of haplotypes of smaller size with a good score".
#include <cstdio>

#include "analysis/enumeration.hpp"
#include "analysis/greedy_constructive.hpp"
#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper section 3: constructive methods vs the GA, "
              "51 SNPs ===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 0;
  data_config.active_snp_count = 3;
  Rng data_rng(2718);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  const ga::FeasibilityFilter filter;

  // Greedy (beam 1) and beam search (beam 10).
  analysis::GreedyConfig greedy_config;
  greedy_config.min_size = 2;
  greedy_config.max_size = 4;
  const auto greedy = analysis::greedy_construct(evaluator, greedy_config,
                                                 filter);
  analysis::GreedyConfig beam_config = greedy_config;
  beam_config.beam_width = 10;
  const auto beam = analysis::greedy_construct(evaluator, beam_config,
                                               filter);

  // The GA (full scheme, modest budget).
  ga::GaConfig ga_config;
  ga_config.min_size = 2;
  ga_config.max_size = 4;
  ga_config.population_size = 120;
  ga_config.stagnation_generations = 100;
  ga_config.max_generations = 500;
  ga_config.seed = 12;
  const stats::HaplotypeEvaluator ga_evaluator(synthetic.dataset);
  const auto ga_result =
      ga::GaEngine(ga_evaluator, ga_config,
                   stats::make_thread_pool_backend(ga_evaluator))
          .run();

  // Ground truth by enumeration.
  TextTable table({"size", "exact optimum", "greedy (beam 1)",
                   "beam 10", "GA"});
  for (std::uint32_t size = 2; size <= 4; ++size) {
    const auto exact = analysis::enumerate_all(evaluator, size);
    table.add_row({std::to_string(size),
                   TextTable::num(exact.best.front().fitness, 3),
                   TextTable::num(greedy.best_by_size[size - 2].fitness(), 3),
                   TextTable::num(beam.best_by_size[size - 2].fitness(), 3),
                   TextTable::num(ga_result.best_by_size[size - 2].fitness(),
                                  3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nevaluations: greedy %llu, beam-10 %llu, GA %llu "
              "(exhaustive size-4 alone needs 249900)\n",
              static_cast<unsigned long long>(greedy.evaluations),
              static_cast<unsigned long long>(beam.evaluations),
              static_cast<unsigned long long>(ga_result.evaluations));
  std::printf(
      "\npaper reference shape: constructive search can stall below the "
      "exact optimum at sizes >= 3 while the GA reaches it — the "
      "landscape's good large haplotypes need not contain good small "
      "ones.\n");
  return 0;
}
