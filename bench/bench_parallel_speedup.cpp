// Regenerates the §4.5 parallel claim: the synchronous master/slave
// evaluation farm (Figure 6) shortens the evaluation phase, which
// dominates the GA's wall time because the fitness function is costly
// (Figure 4).
//
// Two measurements:
//   1. REAL pipeline — a generation-sized batch of size-6 evaluations
//      across slave counts. Speedup here is bounded by the host's core
//      count (the paper ran on a PVM cluster where every slave was its
//      own processor; on a 1-core host this phase shows overhead, not
//      scaling).
//   2. SIMULATED cluster — each slave's evaluation cost is modeled as
//      wall time (sleep of the measured mean pipeline latency), exactly
//      the regime of the paper's networked PVM machine. This isolates
//      the farm's scheduling behaviour from host core count and shows
//      the near-linear phase speedup the paper's design targets.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "genomics/synthetic.hpp"
#include "parallel/master_slave.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper section 4.5 / Figure 6: master-slave evaluation "
              "speedup ===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 0;
  Rng data_rng(65);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  // A generation-sized batch of costly individuals (size 6).
  Rng rng(7);
  std::vector<std::vector<genomics::SnpIndex>> batch;
  for (int i = 0; i < 96; ++i) {
    batch.push_back(rng.sample_without_replacement(51, 6));
  }

  // Worker uses the uncached pipeline so every phase pays full cost
  // (the GA's cache would otherwise make repeats free).
  const auto worker = [&evaluator](const std::vector<genomics::SnpIndex>& s) {
    return evaluator.evaluate_full(s).fitness;
  };

  // Serial reference.
  double serial_seconds = 0.0;
  {
    Stopwatch watch;
    for (const auto& snps : batch) {
      volatile double sink = worker(snps);
      (void)sink;
    }
    serial_seconds = watch.elapsed_seconds();
  }
  const double mean_eval_ms =
      1e3 * serial_seconds / static_cast<double>(batch.size());
  std::printf("host cores: %u; serial phase: %.3f s for %zu evaluations "
              "(%.2f ms/eval)\n\n",
              parallel::default_thread_count(), serial_seconds, batch.size(),
              mean_eval_ms);

  const std::vector<std::uint32_t> slave_counts{1, 2, 4, 8};

  std::printf("--- real pipeline (bounded by host core count) ---\n");
  {
    TextTable table({"slaves", "phase time (s)", "speedup", "efficiency"});
    for (const std::uint32_t slaves : slave_counts) {
      parallel::MasterSlaveFarm<std::vector<genomics::SnpIndex>, double>
          farm(slaves, worker);
      farm.run(batch);  // warm-up phase
      Stopwatch watch;
      constexpr int kPhases = 3;
      for (int phase = 0; phase < kPhases; ++phase) farm.run(batch);
      const double seconds = watch.elapsed_seconds() / kPhases;
      const double speedup = serial_seconds / seconds;
      table.add_row({std::to_string(slaves), TextTable::num(seconds, 3),
                     TextTable::num(speedup, 2),
                     TextTable::num(speedup / slaves, 2)});
    }
    std::printf("%s", table.str().c_str());
  }

  std::printf("\n--- simulated PVM cluster (each slave = own processor; "
              "cost modeled as %.1f ms wall time) ---\n",
              mean_eval_ms);
  {
    const auto simulated_cost =
        std::chrono::duration<double, std::milli>(mean_eval_ms);
    const auto sleepy_worker =
        [simulated_cost](const std::vector<genomics::SnpIndex>& s) {
          std::this_thread::sleep_for(simulated_cost);
          return static_cast<double>(s.size());
        };
    double sim_serial = 0.0;
    {
      Stopwatch watch;
      for (const auto& snps : batch) {
        volatile double sink = sleepy_worker(snps);
        (void)sink;
      }
      sim_serial = watch.elapsed_seconds();
    }
    TextTable table({"slaves", "phase time (s)", "speedup", "efficiency"});
    for (const std::uint32_t slaves : slave_counts) {
      parallel::MasterSlaveFarm<std::vector<genomics::SnpIndex>, double>
          farm(slaves, sleepy_worker);
      Stopwatch watch;
      farm.run(batch);
      const double seconds = watch.elapsed_seconds();
      const double speedup = sim_serial / seconds;
      table.add_row({std::to_string(slaves), TextTable::num(seconds, 3),
                     TextTable::num(speedup, 2),
                     TextTable::num(speedup / slaves, 2)});
    }
    std::printf("%s", table.str().c_str());
  }

  std::printf(
      "\npaper reference shape: near-linear speedup of the evaluation "
      "phase while slaves bind the data once at start-up; the master "
      "hands one individual at a time to each free slave. On a "
      "single-core host the real-pipeline table shows farm overhead "
      "only; the simulated-cluster table shows the scheduling scaling "
      "the paper exploited.\n");
  return 0;
}
