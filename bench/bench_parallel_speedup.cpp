// Barrier vs no barrier: the synchronous §4.5 farm against the
// asynchronous island engine, on the same GA problem and the same
// evaluation budget.
//
// The synchronous GaEngine scores each generation in one parallel
// phase — every worker idles until the slowest evaluation of the batch
// returns, so one heavy-tailed straggler stalls the whole population.
// The asynchronous IslandEngine has no such phase: islands integrate
// results as they complete and a straggler delays only the lane that
// claimed it.
//
// Four legs per worker count (1..16):
//   sync / async x clean / stragglers
// where the straggler leg injects the deterministic Pareto delay
// schedule of FaultInjector::straggler_preset — the regime the barrier
// is worst at. Throughput is pipeline evaluations per second of run
// wall time; each run gets a fresh evaluator (cold cache) and the same
// seed, so legs differ only in engine and injected schedule.
//
// Results land in BENCH_parallel_speedup.json with the machine
// context. Acceptance: async >= 1.3x sync throughput at 8 workers
// under stragglers, and no worse than sync (>= 1.0x) without.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_context.hpp"
#include "ga/engine.hpp"
#include "ga/island_engine.hpp"
#include "genomics/synthetic.hpp"
#include "parallel/fault_injection.hpp"
#include "stats/evaluation_backend.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table_format.hpp"

namespace {

using namespace ldga;

constexpr std::uint64_t kStragglerSeed = 90;
constexpr double kStragglerProbability = 0.15;
constexpr std::chrono::milliseconds kStragglerScale{30};

const genomics::SyntheticDataset& cohort() {
  static const auto synthetic = [] {
    genomics::SyntheticConfig config;
    config.snp_count = 48;
    config.affected_count = 200;
    config.unaffected_count = 200;
    config.unknown_count = 0;
    config.active_snp_count = 4;
    Rng rng(65);
    return genomics::generate_synthetic(config, rng);
  }();
  return synthetic;
}

/// Costly enough per candidate that scheduling — not dispatch
/// bookkeeping — dominates both engines (T3 + Monte-Carlo CLUMP, the
/// Figure-4 regime the paper parallelized).
stats::EvaluatorConfig evaluator_config() {
  stats::EvaluatorConfig config;
  config.fitness_statistic = stats::FitnessStatistic::T3;
  config.clump.monte_carlo_trials = 1500;
  config.clump.monte_carlo_workers = 1;
  return config;
}

ga::GaConfig ga_config() {
  ga::GaConfig config;
  config.min_size = 2;
  config.max_size = 5;
  config.population_size = 120;
  config.min_subpopulation = 10;
  config.crossovers_per_generation = 20;
  config.mutations_per_generation = 40;
  config.stagnation_generations = 50;
  config.max_generations = 100;
  config.max_evaluations = 1200;  // the budget that ends every leg
  config.seed = 17;
  return config;
}

std::shared_ptr<parallel::FaultInjector> make_injector(bool stragglers) {
  if (!stragglers) return nullptr;
  return std::make_shared<parallel::FaultInjector>(
      parallel::FaultInjector::straggler_preset(
          kStragglerSeed, kStragglerProbability, kStragglerScale));
}

struct Leg {
  std::string engine;
  std::uint32_t workers = 0;
  bool stragglers = false;
  double wall_seconds = 0.0;
  std::uint64_t evaluations = 0;
  double throughput = 0.0;  ///< evaluations / wall second
  double best_fitness = 0.0;
  std::uint64_t injected_stragglers = 0;
  std::uint64_t injected_straggler_ms = 0;
};

Leg run_sync(std::uint32_t workers, bool stragglers) {
  const stats::HaplotypeEvaluator evaluator(cohort().dataset,
                                            evaluator_config());
  stats::BackendOptions options;
  options.workers = workers;
  options.fault_injector = make_injector(stragglers);
  ga::GaEngine engine(evaluator, ga_config(),
                      stats::make_farm_backend(evaluator, options));
  Stopwatch watch;
  const ga::GaResult result = engine.run();
  Leg leg{"sync_farm", workers, stragglers};
  leg.wall_seconds = watch.elapsed_seconds();
  leg.evaluations = result.evaluations;
  leg.throughput =
      static_cast<double>(result.evaluations) / leg.wall_seconds;
  leg.best_fitness = result.best_by_size.front().fitness();
  if (options.fault_injector != nullptr) {
    leg.injected_stragglers = options.fault_injector->injected_stragglers();
    leg.injected_straggler_ms = static_cast<std::uint64_t>(
        options.fault_injector->injected_straggler_time().count());
  }
  return leg;
}

Leg run_async(std::uint32_t workers, bool stragglers) {
  const stats::HaplotypeEvaluator evaluator(cohort().dataset,
                                            evaluator_config());
  ga::IslandConfig config;
  config.ga = ga_config();
  config.lanes = workers;
  config.max_coalesce = 16;
  config.max_pending = 32;
  config.fault_injector = make_injector(stragglers);
  ga::IslandEngine engine(evaluator, config);
  Stopwatch watch;
  const ga::IslandRunResult result = engine.run();
  Leg leg{"async_islands", workers, stragglers};
  leg.wall_seconds = watch.elapsed_seconds();
  leg.evaluations = result.evaluations;
  leg.throughput =
      static_cast<double>(result.evaluations) / leg.wall_seconds;
  leg.best_fitness = result.best_by_size.front().fitness();
  if (config.fault_injector != nullptr) {
    leg.injected_stragglers = config.fault_injector->injected_stragglers();
    leg.injected_straggler_ms = static_cast<std::uint64_t>(
        config.fault_injector->injected_straggler_time().count());
  }
  return leg;
}

const Leg& find_leg(const std::vector<Leg>& legs, const std::string& engine,
                    std::uint32_t workers, bool stragglers) {
  for (const Leg& leg : legs) {
    if (leg.engine == engine && leg.workers == workers &&
        leg.stragglers == stragglers) {
      return leg;
    }
  }
  std::fprintf(stderr, "FATAL: missing leg %s/%u\n", engine.c_str(),
               workers);
  std::exit(1);
}

}  // namespace

int main() {
  std::printf("=== Barrier vs no barrier: synchronous farm vs "
              "asynchronous islands ===\n\n");

  const std::vector<std::uint32_t> worker_counts{1, 2, 4, 8, 16};
  // Five interleaved sync/async pairs per leg, best throughput kept:
  // on a contended host the scheduler noise between runs (~10%) is
  // larger than the effects being measured. Interleaving keeps each
  // pair's host conditions comparable, and the best of five is the
  // fairest estimate of each engine's capability.
  constexpr int kReps = 5;
  std::vector<Leg> legs;
  for (const bool stragglers : {false, true}) {
    for (const std::uint32_t workers : worker_counts) {
      Leg sync_best, async_best;
      for (int rep = 0; rep < kReps; ++rep) {
        const Leg s = run_sync(workers, stragglers);
        const Leg a = run_async(workers, stragglers);
        if (rep == 0 || s.throughput > sync_best.throughput) sync_best = s;
        if (rep == 0 || a.throughput > async_best.throughput) async_best = a;
      }
      legs.push_back(sync_best);
      legs.push_back(async_best);
      const Leg& s = legs[legs.size() - 2];
      const Leg& a = legs.back();
      std::printf("workers %2u %-12s sync %7.1f eval/s  async %7.1f "
                  "eval/s  ratio %.2fx\n",
                  workers, stragglers ? "(stragglers)" : "(clean)",
                  s.throughput, a.throughput,
                  a.throughput / s.throughput);
    }
  }

  std::printf("\n--- throughput (pipeline evaluations / second) ---\n");
  for (const bool stragglers : {false, true}) {
    std::printf("\n%s:\n", stragglers
                               ? "with injected stragglers (Pareto tail)"
                               : "clean (no injected faults)");
    TextTable table({"workers", "sync eval/s", "async eval/s",
                     "async/sync", "sync wall (s)", "async wall (s)"});
    for (const std::uint32_t workers : worker_counts) {
      const Leg& s = find_leg(legs, "sync_farm", workers, stragglers);
      const Leg& a = find_leg(legs, "async_islands", workers, stragglers);
      table.add_row({std::to_string(workers), TextTable::num(s.throughput, 1),
                     TextTable::num(a.throughput, 1),
                     TextTable::num(a.throughput / s.throughput, 2),
                     TextTable::num(s.wall_seconds, 2),
                     TextTable::num(a.wall_seconds, 2)});
    }
    std::printf("%s", table.str().c_str());
  }

  const Leg& sync8 = find_leg(legs, "sync_farm", 8, true);
  const Leg& async8 = find_leg(legs, "async_islands", 8, true);
  const Leg& sync8_clean = find_leg(legs, "sync_farm", 8, false);
  const Leg& async8_clean = find_leg(legs, "async_islands", 8, false);
  const double straggler_ratio = async8.throughput / sync8.throughput;
  const double clean_ratio = async8_clean.throughput / sync8_clean.throughput;
  std::printf("\nheadline: async/sync at 8 workers = %.2fx under "
              "stragglers (acceptance 1.3x), %.2fx clean (floor 1.0x)\n",
              straggler_ratio, clean_ratio);

  std::FILE* json = std::fopen("BENCH_parallel_speedup.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_parallel_speedup.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  std::fprintf(json,
               "  \"workload\": {\n"
               "    \"snp_count\": 48,\n"
               "    \"cohort\": 400,\n"
               "    \"sizes\": \"2-5\",\n"
               "    \"max_evaluations\": 1200,\n"
               "    \"fitness\": \"T3 + 1500 Monte-Carlo replicates\",\n"
               "    \"straggler_probability\": %.3f,\n"
               "    \"straggler_scale_ms\": %lld,\n"
               "    \"straggler_seed\": %llu\n"
               "  },\n",
               kStragglerProbability,
               static_cast<long long>(kStragglerScale.count()),
               static_cast<unsigned long long>(kStragglerSeed));
  std::fprintf(json, "  \"legs\": [\n");
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    std::fprintf(
        json,
        "    {\"engine\": \"%s\", \"workers\": %u, \"stragglers\": %s, "
        "\"wall_seconds\": %.3f, \"evaluations\": %llu, "
        "\"throughput_eval_per_s\": %.2f, \"best_fitness_size2\": %.6f, "
        "\"injected_stragglers\": %llu, \"injected_straggler_ms\": %llu}%s\n",
        leg.engine.c_str(), leg.workers, leg.stragglers ? "true" : "false",
        leg.wall_seconds, static_cast<unsigned long long>(leg.evaluations),
        leg.throughput, leg.best_fitness,
        static_cast<unsigned long long>(leg.injected_stragglers),
        static_cast<unsigned long long>(leg.injected_straggler_ms),
        i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"async_vs_sync_8_workers_stragglers\": %.3f,\n"
               "  \"async_vs_sync_8_workers_clean\": %.3f,\n"
               "  \"acceptance_stragglers\": 1.3,\n"
               "  \"floor_clean\": 1.0\n"
               "}\n",
               straggler_ratio, clean_ratio);
  std::fclose(json);
  std::printf("\nwrote BENCH_parallel_speedup.json\n");

  if (straggler_ratio < 1.3) {
    std::printf("WARNING: straggler-leg ratio below the 1.3x acceptance\n");
  }
  return 0;
}
