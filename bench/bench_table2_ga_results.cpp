// Regenerates paper Table 2: "Results obtained by the GA for 51 SNPs".
//
// Protocol (matching §5.2): 10 runs of the full scheme (adaptive
// mutation + adaptive crossover + random immigrants) on a 51-SNP
// cohort with the paper's parameters; for every subpopulation size we
// report the best haplotype found over the runs, its fitness, the mean
// best fitness over runs, the deviation from the best expected
// haplotype, and the min / mean number of evaluations needed to reach
// each run's final best.
//
// "Best expected" comes from exhaustive enumeration for sizes 2-4
// (exactly as the paper compared against its landscape study); for
// sizes 5-6, where enumeration is out of reach, it is the best value
// seen across all runs (the paper's larger sizes rest on the same
// convention: the best known solution).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/enumeration.hpp"
#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/numeric.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper Table 2: GA results for 51 SNPs "
              "(adaptive mutation + adaptive crossover + random immigrants, "
              "10 runs) ===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 70;
  data_config.active_snp_count = 3;
  Rng data_rng(20040426);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  constexpr std::uint32_t kRuns = 10;
  constexpr std::uint32_t kMinSize = 2, kMaxSize = 6;
  const std::uint32_t n_sizes = kMaxSize - kMinSize + 1;

  struct PerRun {
    double best_fitness = 0.0;
    std::string best_haplotype;
    std::vector<genomics::SnpIndex> best_snps;
    std::uint64_t evaluations_to_best = 0;
  };
  std::vector<std::vector<PerRun>> runs(n_sizes);

  for (std::uint32_t run = 0; run < kRuns; ++run) {
    ga::GaConfig config;
    config.min_size = kMinSize;
    config.max_size = kMaxSize;
    config.population_size = 150;            // paper §5.2.1
    config.mutation_global_rate = 0.9;       // paper §5.2.1
    config.min_operator_rate = 0.01;         // paper §5.2.1 (delta)
    config.stagnation_generations = 100;     // paper §5.2.1
    config.random_immigrant_stagnation = 20; // paper §5.2.1
    config.record_history = true;
    config.seed = 1000 + run;
    ga::GaEngine engine(evaluator, config,
                        stats::make_thread_pool_backend(evaluator));
    const ga::GaResult result = engine.run();

    for (std::uint32_t s = 0; s < n_sizes; ++s) {
      PerRun per_run;
      per_run.best_fitness = result.best_by_size[s].fitness();
      per_run.best_haplotype = result.best_by_size[s].to_string();
      per_run.best_snps = result.best_by_size[s].snps();
      // Evaluations consumed when this size's best first reached its
      // final value (the paper's "# of evaluations" column).
      for (const auto& info : result.history) {
        if (info.best_by_size[s] >= per_run.best_fitness - 1e-9) {
          per_run.evaluations_to_best = info.evaluations;
          break;
        }
      }
      runs[s].push_back(std::move(per_run));
    }
    std::printf("run %2u/%u: %u generations, %llu evaluations\n", run + 1,
                kRuns, result.generations,
                static_cast<unsigned long long>(result.evaluations));
  }

  // Best expected per size: enumeration for 2..4, best-over-runs 5..6.
  std::vector<double> best_expected(n_sizes, 0.0);
  for (std::uint32_t size = 2; size <= 4; ++size) {
    const auto exact = analysis::enumerate_all(evaluator, size);
    best_expected[size - kMinSize] = exact.best.front().fitness;
  }
  for (std::uint32_t s = 3; s < n_sizes; ++s) {
    for (const auto& per_run : runs[s]) {
      best_expected[s] = std::max(best_expected[s], per_run.best_fitness);
    }
  }

  std::printf("\n");
  TextTable table({"Size", "Best haplotype (1-based)", "Fitness", "Mean",
                   "Dev", "Min #eval", "Mean #eval", "Exact opt?"});
  for (std::uint32_t s = 0; s < n_sizes; ++s) {
    const auto best_run = std::max_element(
        runs[s].begin(), runs[s].end(),
        [](const PerRun& a, const PerRun& b) {
          return a.best_fitness < b.best_fitness;
        });
    RunningStats fitness_stats;
    RunningStats eval_stats;
    double deviation_sum = 0.0;
    for (const auto& per_run : runs[s]) {
      fitness_stats.add(per_run.best_fitness);
      eval_stats.add(static_cast<double>(per_run.evaluations_to_best));
      deviation_sum += best_expected[s] - per_run.best_fitness;
    }
    const std::uint32_t size = kMinSize + s;
    table.add_row({
        std::to_string(size),
        best_run->best_haplotype,
        TextTable::num(best_run->best_fitness),
        TextTable::num(fitness_stats.mean()),
        TextTable::num(deviation_sum / kRuns),
        TextTable::num(eval_stats.min(), 0),
        TextTable::num(eval_stats.mean(), 1),
        size <= 4 ? (std::abs(best_run->best_fitness -
                              best_expected[s]) < 1e-6
                         ? "yes"
                         : "NO")
                  : "n/a",
    });
  }
  std::printf("%s", table.str().c_str());

  std::printf(
      "\nplanted risk SNPs (1-based):");
  for (const auto snp : synthetic.truth.snps) std::printf(" %u", snp + 1);
  std::printf(
      "\npaper reference shape: deviation 0 at every size; evaluations "
      "grow with size (317 min at size 3 up to ~15464 mean at size 6) "
      "while exploring a vanishing fraction of the search space "
      "(Table 1).\n");
  return 0;
}
