// Genome-scale data path, end to end: synthetic 100k-SNP packed store
// on disk → mmap open → LD prefilter over every window → windowed GA on
// the top-ranked windows — run twice, as the serial stage chain and as
// the overlapped pipeline, with the legs interleaved so OS cache state
// and clock drift hit both equally.
//
// Three claims are checked, matching the GenotypeStore and pipeline
// contracts:
//   1. bounded memory — the scan works against the mmap'd store through
//      window slices, so resident memory tracks the working window, not
//      the panel; VmRSS is sampled at each stage and the peak (VmHWM)
//      lands in the JSON;
//   2. safety — the sequential windowed GA over the mmap'd store walks
//      a bit-for-bit identical trajectory (same champions, same fitness
//      doubles, same evaluation counts) to the same scan over a fully
//      in-memory packed matrix of the same panel. Any divergence aborts
//      the benchmark: a fast wrong data path is worthless.
//   3. selection equivalence — the pipelined leg's streaming top-K
//      admission selects exactly the windows the full ranking selects.
//      Champion bits are NOT gated between the legs: overlapping
//      windows migrate elites, and the pipelined scheduler legitimately
//      sees a different (recorded) completion order.
// The speedup ratio is recorded, not enforced, here: on a single
// hardware thread the pipeline has nothing to overlap with, so the
// >= 1x expectation is CI's call, conditional on "cores" >= 2 in the
// machine context — the same refusal pattern as cross-ISA ratios.
//
// Flags: --engine sync|async, --concurrent-windows N,
// --prefilter-workers M (0 = hardware), --reps R.
// Results land in BENCH_genome_scan.json with the shared machine
// context so CI can judge comparability.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/genome_pipeline.hpp"
#include "analysis/ld_prefilter.hpp"
#include "bench_context.hpp"
#include "ga/window_scan.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/packed_store.hpp"
#include "genomics/synthetic.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/evaluator.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

constexpr std::uint32_t kPanelSnps = 100'000;
constexpr std::uint32_t kWindowSnps = 64;
constexpr std::uint32_t kStrideSnps = 48;
constexpr std::uint32_t kGaWindows = 2;

/// "VmRSS" / "VmHWM" of /proc/self/status, in MiB (0 where absent).
double proc_status_mb(const char* key) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    mb = std::strtod(line + key_len + 1, nullptr) / 1024.0;  // kB → MiB
    break;
  }
  std::fclose(status);
  return mb;
}

ga::WindowScanConfig scan_config() {
  ga::WindowScanConfig config;
  config.ga.min_size = 2;
  config.ga.max_size = 4;
  config.ga.population_size = 30;
  config.ga.min_subpopulation = 5;
  config.ga.crossovers_per_generation = 6;
  config.ga.mutations_per_generation = 10;
  config.ga.stagnation_generations = 15;
  config.ga.max_generations = 40;
  config.ga.seed = 2004;
  config.migrate_elites = 3;
  return config;
}

/// Bit-for-bit scan equivalence: every per-window champion and count
/// must match between the mmap'd and the in-memory data path.
void gate_identical(const ga::WindowScanResult& mapped,
                    const ga::WindowScanResult& memory) {
  bool ok = mapped.best_fitness == memory.best_fitness &&
            mapped.best_snps == memory.best_snps &&
            mapped.evaluations == memory.evaluations &&
            mapped.windows.size() == memory.windows.size();
  for (std::size_t w = 0; ok && w < mapped.windows.size(); ++w) {
    ok = mapped.windows[w].best_fitness == memory.windows[w].best_fitness &&
         mapped.windows[w].best_snps == memory.windows[w].best_snps;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: mmap-store scan diverged from the in-memory "
                 "reference (best %.17g vs %.17g)\n",
                 mapped.best_fitness, memory.best_fitness);
    std::exit(1);
  }
  std::printf("equivalence: mmap'd scan == in-memory scan bit-for-bit "
              "(%zu windows, %llu evaluations)\n",
              mapped.windows.size(),
              static_cast<unsigned long long>(mapped.evaluations));
}

/// Both legs must pick the same windows — streaming admission is
/// provably the full ranking, so any difference is a bug, not noise.
void gate_same_selection(const std::vector<ga::WindowSpec>& sequential,
                         const std::vector<ga::WindowSpec>& pipelined) {
  auto begins = [](std::vector<ga::WindowSpec> windows) {
    std::sort(windows.begin(), windows.end(),
              [](const ga::WindowSpec& a, const ga::WindowSpec& b) {
                return a.begin < b.begin;
              });
    std::vector<std::uint32_t> out;
    out.reserve(windows.size());
    for (const auto& w : windows) out.push_back(w.begin);
    return out;
  };
  if (begins(sequential) != begins(pipelined)) {
    std::fprintf(stderr,
                 "FATAL: pipelined streaming admission selected different "
                 "windows than the full ranking\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const std::string engine_name = args.get("engine", "sync");
  if (engine_name != "sync" && engine_name != "async") {
    throw ConfigError("--engine must be sync or async");
  }
  const auto concurrent_windows =
      static_cast<std::uint32_t>(args.get_int("concurrent-windows", 2));
  const auto prefilter_workers =
      static_cast<std::uint32_t>(args.get_int("prefilter-workers", 0));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 2));
  const std::uint32_t resolved_prefilter_workers =
      prefilter_workers > 0
          ? prefilter_workers
          : static_cast<std::uint32_t>(parallel::default_thread_count());

  std::printf("=== Genome-scale scan: packed store -> LD prefilter -> "
              "windowed GA, sequential vs pipelined ===\n\n");
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "ldga_bench_genome.pgs")
          .string();

  // --- Stage 1: stream the synthetic panel to disk, chunk by chunk.
  genomics::SyntheticStoreConfig data;
  data.cohort.snp_count = kWindowSnps;  // signal chunk = one window
  data.cohort.affected_count = 150;
  data.cohort.unaffected_count = 150;
  data.cohort.unknown_count = 0;
  data.cohort.active_snp_count = 3;
  data.total_snps = kPanelSnps;
  data.chunk_snps = 4096;
  Rng rng(20040426);

  Stopwatch build_watch;
  const genomics::SyntheticStoreResult written =
      genomics::write_synthetic_store(store_path, data, rng);
  const double build_ms = build_watch.elapsed_ms();
  const double store_mb =
      static_cast<double>(std::filesystem::file_size(store_path)) /
      (1024.0 * 1024.0);
  const double rss_after_build = proc_status_mb("VmRSS");
  std::printf("store: %u SNPs x %u individuals streamed to %.1f MiB in "
              "%.0f ms (chunk %u; RSS %.0f MiB)\n",
              written.snps_written,
              static_cast<std::uint32_t>(written.statuses.size()), store_mb,
              build_ms, data.chunk_snps, rss_after_build);

  // --- Stage 2: mmap it back (with the full payload-CRC pass).
  Stopwatch open_watch;
  const genomics::PackedGenotypeStore store =
      genomics::PackedGenotypeStore::open(store_path);
  const double open_ms = open_watch.elapsed_ms();
  std::printf("open: verified and mapped in %.1f ms\n", open_ms);

  // --- Stage 3: the two legs, interleaved. The sequential leg is the
  // PR 7 stage chain (score everything, rank, then scan serially); the
  // pipelined leg streams window scores into the top-K admission and
  // keeps up to --concurrent-windows GAs in flight while the sweep is
  // still running.
  const std::vector<ga::WindowSpec> all_windows =
      ga::plan_windows(store.snp_count(), kWindowSnps, kStrideSnps);

  analysis::GenomePipelineConfig sequential_config;
  sequential_config.prefilter.workers = prefilter_workers;
  sequential_config.keep_windows = kGaWindows;
  sequential_config.scan = scan_config();
  sequential_config.mode = analysis::PipelineMode::kSequential;

  analysis::GenomePipelineConfig pipelined_config = sequential_config;
  pipelined_config.mode = analysis::PipelineMode::kPipelined;
  pipelined_config.scan.engine = engine_name == "async"
                                     ? ga::ScanEngine::kAsync
                                     : ga::ScanEngine::kSync;
  pipelined_config.scan.concurrent_windows = concurrent_windows;

  analysis::GenomePipelineResult sequential;
  analysis::GenomePipelineResult pipelined;
  double sequential_ms = 0.0;
  double pipelined_ms = 0.0;
  double sequential_prefilter_ms = 0.0;
  double pipelined_prefilter_ms = 0.0;
  double sequential_scan_ms = 0.0;
  double pipelined_scan_tail_ms = 0.0;
  for (std::uint32_t rep = 0; rep < std::max(reps, 1u); ++rep) {
    analysis::GenomePipelineResult seq_rep = analysis::run_genome_pipeline(
        store, store.panel(), store.statuses(), all_windows,
        sequential_config);
    analysis::GenomePipelineResult pipe_rep = analysis::run_genome_pipeline(
        store, store.panel(), store.statuses(), all_windows,
        pipelined_config);
    std::printf("rep %u: sequential %.0f ms (prefilter %.0f + scan %.0f), "
                "pipelined %.0f ms (sweep %.0f, tail %.0f)\n",
                rep, seq_rep.total_seconds * 1000.0,
                seq_rep.prefilter_seconds * 1000.0,
                seq_rep.scan_tail_seconds * 1000.0,
                pipe_rep.total_seconds * 1000.0,
                pipe_rep.prefilter_seconds * 1000.0,
                pipe_rep.scan_tail_seconds * 1000.0);
    if (rep == 0 || seq_rep.total_seconds * 1000.0 < sequential_ms) {
      sequential_ms = seq_rep.total_seconds * 1000.0;
      sequential_prefilter_ms = seq_rep.prefilter_seconds * 1000.0;
      sequential_scan_ms = seq_rep.scan_tail_seconds * 1000.0;
    }
    if (rep == 0 || pipe_rep.total_seconds * 1000.0 < pipelined_ms) {
      pipelined_ms = pipe_rep.total_seconds * 1000.0;
      pipelined_prefilter_ms = pipe_rep.prefilter_seconds * 1000.0;
      pipelined_scan_tail_ms = pipe_rep.scan_tail_seconds * 1000.0;
    }
    if (rep == 0) {
      sequential = std::move(seq_rep);
      pipelined = std::move(pipe_rep);
    }
  }
  const double speedup = pipelined_ms > 0.0 ? sequential_ms / pipelined_ms : 0.0;
  const double rss_after_legs = proc_status_mb("VmRSS");

  std::uint64_t pairs = 0;
  for (const auto& score : sequential.scores) pairs += score.pairs;
  std::printf("prefilter: %zu windows, %llu pairs in %.0f ms "
              "(%.1f Mpairs/s on %u workers)\n",
              sequential.scores.size(),
              static_cast<unsigned long long>(pairs), sequential_prefilter_ms,
              static_cast<double>(pairs) / (sequential_prefilter_ms * 1000.0),
              resolved_prefilter_workers);

  bool signal_in_top = false;
  for (const auto& window : sequential.selected) {
    bool all_inside = !written.truth.snps.empty();
    for (const auto snp : written.truth.snps) {
      all_inside = all_inside && snp >= window.begin &&
                   snp < window.begin + window.count;
    }
    signal_in_top = signal_in_top || all_inside;
    std::printf("  selected window [%u, %u)\n", window.begin,
                window.begin + window.count);
  }
  std::printf("  planted signal window %s the selection\n",
              signal_in_top ? "survived" : "did not survive");

  // --- Gates. Selection must match between legs; the sequential scan
  // must match the in-memory data path bit-for-bit.
  gate_same_selection(sequential.selected, pipelined.selected);
  const genomics::PackedGenotypeMatrix in_memory =
      store.slice_loci(0, store.snp_count());
  const ga::WindowScanResult memory = ga::run_window_scan(
      in_memory, store.panel(), store.statuses(), sequential.selected,
      sequential_config.scan);
  gate_identical(sequential.scan, memory);

  const std::uint32_t hardware_threads =
      static_cast<std::uint32_t>(parallel::default_thread_count());
  std::printf("pipeline: sequential %.0f ms vs pipelined %.0f ms -> "
              "%.2fx (%s, %u concurrent windows)\n",
              sequential_ms, pipelined_ms, speedup, engine_name.c_str(),
              concurrent_windows);
  if (hardware_threads < 2) {
    std::printf("SKIP: single hardware thread — no overlap to measure, "
                "speedup ratio is informational only\n");
  }

  const double peak_mb = proc_status_mb("VmHWM");
  std::printf("memory: peak RSS %.0f MiB over a %.1f MiB store\n", peak_mb,
              store_mb);

  std::FILE* json = std::fopen("BENCH_genome_scan.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_genome_scan.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  std::fprintf(
      json,
      "  \"pipeline\": {\n"
      "    \"engine\": \"%s\",\n"
      "    \"concurrent_windows\": %u,\n"
      "    \"prefilter_workers\": %u,\n"
      "    \"reps\": %u\n"
      "  },\n",
      engine_name.c_str(), concurrent_windows, resolved_prefilter_workers,
      std::max(reps, 1u));
  std::fprintf(
      json,
      "  \"workload\": \"%u-SNP synthetic panel, %u individuals; "
      "window %u stride %u; GA over top %u windows\",\n"
      "  \"panel_snps\": %u,\n"
      "  \"individuals\": %u,\n"
      "  \"store_file_mb\": %.2f,\n"
      "  \"store_build_ms\": %.1f,\n"
      "  \"store_open_ms\": %.2f,\n"
      "  \"prefilter_windows\": %zu,\n"
      "  \"prefilter_workers\": %u,\n"
      "  \"prefilter_pairs\": %llu,\n"
      "  \"prefilter_ms\": %.1f,\n"
      "  \"prefilter_mpairs_per_s\": %.2f,\n"
      "  \"signal_window_selected\": %s,\n"
      "  \"ga_windows\": %u,\n"
      "  \"ga_scan_ms\": %.1f,\n"
      "  \"ga_evaluations\": %llu,\n"
      "  \"best_fitness\": %.6f,\n"
      "  \"sequential_total_ms\": %.1f,\n"
      "  \"pipelined_total_ms\": %.1f,\n"
      "  \"pipelined_prefilter_ms\": %.1f,\n"
      "  \"pipelined_scan_tail_ms\": %.1f,\n"
      "  \"pipelined_evaluations\": %llu,\n"
      "  \"pipelined_best_fitness\": %.6f,\n"
      "  \"pipelined_speedup\": %.3f,\n"
      "  \"selection_identical\": true,\n"
      "  \"mmap_scan_bit_identical\": true,\n"
      "  \"rss_after_build_mb\": %.1f,\n"
      "  \"rss_after_legs_mb\": %.1f,\n"
      "  \"peak_rss_mb\": %.1f\n"
      "}\n",
      kPanelSnps, static_cast<std::uint32_t>(written.statuses.size()),
      kWindowSnps, kStrideSnps, kGaWindows, kPanelSnps,
      static_cast<std::uint32_t>(written.statuses.size()), store_mb,
      build_ms, open_ms, sequential.scores.size(), resolved_prefilter_workers,
      static_cast<unsigned long long>(pairs), sequential_prefilter_ms,
      static_cast<double>(pairs) / (sequential_prefilter_ms * 1000.0),
      signal_in_top ? "true" : "false", kGaWindows, sequential_scan_ms,
      static_cast<unsigned long long>(sequential.scan.evaluations),
      sequential.scan.best_fitness, sequential_ms, pipelined_ms,
      pipelined_prefilter_ms, pipelined_scan_tail_ms,
      static_cast<unsigned long long>(pipelined.scan.evaluations),
      pipelined.scan.best_fitness, speedup, rss_after_build, rss_after_legs,
      peak_mb);
  std::fclose(json);
  std::printf("\nwrote BENCH_genome_scan.json\n");

  std::filesystem::remove(store_path);
  return 0;
} catch (const ldga::Error& error) {
  std::fprintf(stderr, "FATAL: %s\n", error.what());
  return 1;
}
