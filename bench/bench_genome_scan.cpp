// Genome-scale data path, end to end: synthetic 100k-SNP packed store
// on disk → mmap open → tiled LD prefilter over every window → windowed
// GA on the top-ranked windows.
//
// Two claims are checked, matching the GenotypeStore contract:
//   1. bounded memory — the scan works against the mmap'd store through
//      window slices, so resident memory tracks the working window, not
//      the panel; VmRSS is sampled at each stage and the peak (VmHWM)
//      lands in the JSON;
//   2. safety — the windowed GA over the mmap'd store walks a
//      bit-for-bit identical trajectory (same champions, same fitness
//      doubles, same evaluation counts) to the same scan over a fully
//      in-memory packed matrix of the same panel. Any divergence aborts
//      the benchmark: a fast wrong data path is worthless.
// Results land in BENCH_genome_scan.json with the shared machine
// context so CI can judge comparability.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/ld_prefilter.hpp"
#include "bench_context.hpp"
#include "ga/window_scan.hpp"
#include "parallel/thread_pool.hpp"
#include "genomics/packed_genotype.hpp"
#include "genomics/packed_store.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

constexpr std::uint32_t kPanelSnps = 100'000;
constexpr std::uint32_t kWindowSnps = 64;
constexpr std::uint32_t kStrideSnps = 48;
constexpr std::uint32_t kGaWindows = 2;

/// "VmRSS" / "VmHWM" of /proc/self/status, in MiB (0 where absent).
double proc_status_mb(const char* key) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    mb = std::strtod(line + key_len + 1, nullptr) / 1024.0;  // kB → MiB
    break;
  }
  std::fclose(status);
  return mb;
}

ga::WindowScanConfig scan_config() {
  ga::WindowScanConfig config;
  config.ga.min_size = 2;
  config.ga.max_size = 4;
  config.ga.population_size = 30;
  config.ga.min_subpopulation = 5;
  config.ga.crossovers_per_generation = 6;
  config.ga.mutations_per_generation = 10;
  config.ga.stagnation_generations = 15;
  config.ga.max_generations = 40;
  config.ga.seed = 2004;
  config.migrate_elites = 3;
  return config;
}

/// Bit-for-bit scan equivalence: every per-window champion and count
/// must match between the mmap'd and the in-memory data path.
void gate_identical(const ga::WindowScanResult& mapped,
                    const ga::WindowScanResult& memory) {
  bool ok = mapped.best_fitness == memory.best_fitness &&
            mapped.best_snps == memory.best_snps &&
            mapped.evaluations == memory.evaluations &&
            mapped.windows.size() == memory.windows.size();
  for (std::size_t w = 0; ok && w < mapped.windows.size(); ++w) {
    ok = mapped.windows[w].best_fitness == memory.windows[w].best_fitness &&
         mapped.windows[w].best_snps == memory.windows[w].best_snps;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: mmap-store scan diverged from the in-memory "
                 "reference (best %.17g vs %.17g)\n",
                 mapped.best_fitness, memory.best_fitness);
    std::exit(1);
  }
  std::printf("equivalence: mmap'd scan == in-memory scan bit-for-bit "
              "(%zu windows, %llu evaluations)\n",
              mapped.windows.size(),
              static_cast<unsigned long long>(mapped.evaluations));
}

}  // namespace

int main() {
  std::printf("=== Genome-scale scan: packed store -> LD prefilter -> "
              "windowed GA ===\n\n");
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "ldga_bench_genome.pgs")
          .string();

  // --- Stage 1: stream the synthetic panel to disk, chunk by chunk.
  genomics::SyntheticStoreConfig data;
  data.cohort.snp_count = kWindowSnps;  // signal chunk = one window
  data.cohort.affected_count = 150;
  data.cohort.unaffected_count = 150;
  data.cohort.unknown_count = 0;
  data.cohort.active_snp_count = 3;
  data.total_snps = kPanelSnps;
  data.chunk_snps = 4096;
  Rng rng(20040426);

  Stopwatch build_watch;
  const genomics::SyntheticStoreResult written =
      genomics::write_synthetic_store(store_path, data, rng);
  const double build_ms = build_watch.elapsed_ms();
  const double store_mb =
      static_cast<double>(std::filesystem::file_size(store_path)) /
      (1024.0 * 1024.0);
  const double rss_after_build = proc_status_mb("VmRSS");
  std::printf("store: %u SNPs x %u individuals streamed to %.1f MiB in "
              "%.0f ms (chunk %u; RSS %.0f MiB)\n",
              written.snps_written,
              static_cast<std::uint32_t>(written.statuses.size()), store_mb,
              build_ms, data.chunk_snps, rss_after_build);

  // --- Stage 2: mmap it back (with the full payload-CRC pass).
  Stopwatch open_watch;
  const genomics::PackedGenotypeStore store =
      genomics::PackedGenotypeStore::open(store_path);
  const double open_ms = open_watch.elapsed_ms();
  std::printf("open: verified and mapped in %.1f ms\n", open_ms);

  // --- Stage 3: tiled LD prefilter over every window of the panel,
  // tiles fanned across the hardware threads (scores are bit-for-bit
  // identical at any worker count — fixed-order partial reduction).
  const std::vector<ga::WindowSpec> all_windows =
      ga::plan_windows(store.snp_count(), kWindowSnps, kStrideSnps);
  analysis::LdPrefilterConfig prefilter_config;
  prefilter_config.workers = 0;  // hardware concurrency
  const std::uint32_t prefilter_workers =
      static_cast<std::uint32_t>(parallel::default_thread_count());
  Stopwatch prefilter_watch;
  const std::vector<analysis::WindowScore> scores =
      analysis::score_windows(store, all_windows, prefilter_config);
  const double prefilter_ms = prefilter_watch.elapsed_ms();
  std::uint64_t pairs = 0;
  for (const auto& score : scores) pairs += score.pairs;
  const double rss_after_prefilter = proc_status_mb("VmRSS");
  std::printf("prefilter: %zu windows, %llu pairs in %.0f ms "
              "(%.1f Mpairs/s on %u workers; RSS %.0f MiB)\n",
              scores.size(), static_cast<unsigned long long>(pairs),
              prefilter_ms,
              static_cast<double>(pairs) / (prefilter_ms * 1000.0),
              prefilter_workers, rss_after_prefilter);

  const std::vector<ga::WindowSpec> top =
      analysis::top_windows(scores, kGaWindows);
  bool signal_in_top = false;
  for (const auto& window : top) {
    bool all_inside = !written.truth.snps.empty();
    for (const auto snp : written.truth.snps) {
      all_inside = all_inside && snp >= window.begin &&
                   snp < window.begin + window.count;
    }
    signal_in_top = signal_in_top || all_inside;
    std::printf("  selected window [%u, %u)\n", window.begin,
                window.begin + window.count);
  }
  std::printf("  planted signal window %s the selection\n",
              signal_in_top ? "survived" : "did not survive");

  // --- Stage 4: windowed GA over the top windows, from the mmap'd
  // store.
  const ga::WindowScanConfig config = scan_config();
  Stopwatch scan_watch;
  const ga::WindowScanResult mapped = ga::run_window_scan(
      store, store.panel(), store.statuses(), top, config);
  const double scan_ms = scan_watch.elapsed_ms();
  const double rss_after_scan = proc_status_mb("VmRSS");
  std::printf("scan: %u windows, %llu evaluations in %.0f ms; best "
              "fitness %.3f (RSS %.0f MiB)\n",
              kGaWindows, static_cast<unsigned long long>(mapped.evaluations),
              scan_ms, mapped.best_fitness, rss_after_scan);

  // --- Gate: the same scan over a fully in-memory packed matrix.
  const genomics::PackedGenotypeMatrix in_memory =
      store.slice_loci(0, store.snp_count());
  const ga::WindowScanResult memory = ga::run_window_scan(
      in_memory, store.panel(), store.statuses(), top, config);
  gate_identical(mapped, memory);

  const double peak_mb = proc_status_mb("VmHWM");
  std::printf("memory: peak RSS %.0f MiB over a %.1f MiB store\n", peak_mb,
              store_mb);

  std::FILE* json = std::fopen("BENCH_genome_scan.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_genome_scan.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  std::fprintf(
      json,
      "  \"workload\": \"%u-SNP synthetic panel, %u individuals; "
      "window %u stride %u; GA over top %u windows\",\n"
      "  \"panel_snps\": %u,\n"
      "  \"individuals\": %u,\n"
      "  \"store_file_mb\": %.2f,\n"
      "  \"store_build_ms\": %.1f,\n"
      "  \"store_open_ms\": %.2f,\n"
      "  \"prefilter_windows\": %zu,\n"
      "  \"prefilter_workers\": %u,\n"
      "  \"prefilter_pairs\": %llu,\n"
      "  \"prefilter_ms\": %.1f,\n"
      "  \"prefilter_mpairs_per_s\": %.2f,\n"
      "  \"signal_window_selected\": %s,\n"
      "  \"ga_windows\": %u,\n"
      "  \"ga_scan_ms\": %.1f,\n"
      "  \"ga_evaluations\": %llu,\n"
      "  \"best_fitness\": %.6f,\n"
      "  \"mmap_scan_bit_identical\": true,\n"
      "  \"rss_after_build_mb\": %.1f,\n"
      "  \"rss_after_prefilter_mb\": %.1f,\n"
      "  \"rss_after_scan_mb\": %.1f,\n"
      "  \"peak_rss_mb\": %.1f\n"
      "}\n",
      kPanelSnps, static_cast<std::uint32_t>(written.statuses.size()),
      kWindowSnps, kStrideSnps, kGaWindows, kPanelSnps,
      static_cast<std::uint32_t>(written.statuses.size()), store_mb,
      build_ms, open_ms, scores.size(), prefilter_workers,
      static_cast<unsigned long long>(pairs), prefilter_ms,
      static_cast<double>(pairs) / (prefilter_ms * 1000.0),
      signal_in_top ? "true" : "false", kGaWindows, scan_ms,
      static_cast<unsigned long long>(mapped.evaluations),
      mapped.best_fitness, rss_after_build, rss_after_prefilter,
      rss_after_scan, peak_mb);
  std::fclose(json);
  std::printf("\nwrote BENCH_genome_scan.json\n");

  std::filesystem::remove(store_path);
  return 0;
}
