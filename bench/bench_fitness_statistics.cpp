// The paper's stated next step ("different objective functions are
// going to be used in order to compare them and to validate their
// biological interest"): run the same GA with each available fitness
// statistic — CLUMP T1/T2/T3/T4 and the EH-DIALL likelihood-ratio —
// and compare what each recovers, including overlap with the planted
// risk SNPs.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper conclusion: comparing objective functions "
              "===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 0;
  data_config.active_snp_count = 3;
  // A clearly detectable signal so the objectives can be compared on
  // what they recover rather than on cohort noise.
  data_config.disease.relative_risk = 9.0;
  Rng data_rng(1618);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);

  const std::vector<std::pair<std::string, stats::FitnessStatistic>> stats{
      {"T1 (raw chi2, paper)", stats::FitnessStatistic::T1},
      {"T2 (clumped chi2)", stats::FitnessStatistic::T2},
      {"T3 (best single 2x2)", stats::FitnessStatistic::T3},
      {"T4 (best group 2x2)", stats::FitnessStatistic::T4},
      {"LRT (EH-DIALL)", stats::FitnessStatistic::Lrt},
  };

  TextTable table({"objective", "best size-3 haplotype", "fitness",
                   "planted set's own fitness", "planted SNPs found",
                   "evaluations"});
  for (const auto& [name, statistic] : stats) {
    stats::EvaluatorConfig eval_config;
    eval_config.fitness_statistic = statistic;
    const stats::HaplotypeEvaluator evaluator(synthetic.dataset,
                                              eval_config);
    ga::GaConfig config;
    config.min_size = 2;
    config.max_size = 4;
    config.population_size = 90;
    config.stagnation_generations = 60;
    config.max_generations = 300;
    config.max_evaluations = 6000;
    config.seed = 77;
    const auto result =
        ga::GaEngine(evaluator, config,
                     stats::make_thread_pool_backend(evaluator))
            .run();

    const auto& best3 = result.best_by_size[1];
    std::uint32_t found = 0;
    for (const auto planted : synthetic.truth.snps) {
      if (std::find(best3.snps().begin(), best3.snps().end(), planted) !=
          best3.snps().end()) {
        ++found;
      }
    }
    const double planted_fitness =
        evaluator.evaluate_full(synthetic.truth.snps).fitness;
    table.add_row({name, best3.to_string(),
                   TextTable::num(best3.fitness(), 3),
                   TextTable::num(planted_fitness, 3),
                   std::to_string(found) + "/" +
                       std::to_string(synthetic.truth.snps.size()),
                   std::to_string(result.evaluations)});
    std::printf("finished objective: %s\n", name.c_str());
  }
  std::printf("\nplanted risk SNPs (1-based):");
  for (const auto snp : synthetic.truth.snps) std::printf(" %u", snp + 1);
  std::printf("\n\n%s", table.str().c_str());
  std::printf(
      "\nreading: the GA maximizes each objective faithfully — winners "
      "score at or above the planted set under their own objective. "
      "Which objective's winner overlaps the planted SNPs most varies "
      "by cohort (in finite samples correlated-marker combinations can "
      "out-score the causal set), which is exactly why the paper plans "
      "to compare objective functions for biological validity.\n");
  return 0;
}
