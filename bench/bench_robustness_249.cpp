// Regenerates the paper's §5.2 robustness observation: "On larger
// problems, for example a real data set of 249 SNPs, it has shown a
// good robustness (solutions provided are similar from one execution
// to another)." We run the GA several times on a 249-SNP synthetic
// cohort and report the mean pairwise Jaccard similarity of the
// per-size winners and the fitness coefficient of variation.
#include <cstdio>

#include "analysis/robustness.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper section 5.2: robustness on 249 SNPs (4 runs) "
              "===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 249;
  data_config.active_snp_count = 4;
  data_config.disease.relative_risk = 8.0;
  Rng data_rng(424242);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  ga::GaConfig config;
  config.population_size = 150;
  config.stagnation_generations = 100;  // the paper's setting
  config.max_generations = 500;
  config.seed = 10;
  const ga::FeasibilityFilter filter;

  const auto report = analysis::measure_robustness(
      evaluator, config, 4, filter,
      stats::make_thread_pool_backend(evaluator));

  TextTable table({"size", "mean pairwise Jaccard", "fitness CV",
                   "best run fitness", "runs touching planted SNPs"});
  for (std::size_t s = 0; s < report.mean_jaccard_by_size.size(); ++s) {
    double best = 0.0;
    std::uint32_t touching = 0;
    for (const auto& run : report.runs) {
      best = std::max(best, run.best_by_size[s].fitness());
      bool touches = false;
      for (const auto planted : synthetic.truth.snps) {
        if (run.best_by_size[s].contains(planted)) touches = true;
      }
      if (touches) ++touching;
    }
    table.add_row({std::to_string(config.min_size + s),
                   TextTable::num(report.mean_jaccard_by_size[s], 3),
                   TextTable::num(report.fitness_cv_by_size[s], 4),
                   TextTable::num(best, 2),
                   std::to_string(touching) + "/" +
                       std::to_string(report.runs.size())});
  }
  std::printf("%s", table.str().c_str());

  std::uint64_t evaluations = 0;
  for (const auto& run : report.runs) evaluations += run.evaluations;
  std::printf("\ntotal evaluations across runs: %llu (shared cache makes "
              "re-discovery free, as re-running the tool would be)\n",
              static_cast<unsigned long long>(evaluations));
  std::printf(
      "\npaper reference shape: solutions are \"similar from one "
      "execution to another\" — reproduced here primarily in quality "
      "(fitness CV of a few percent); exact SNP-set identity varies "
      "more, because with 106 status-known individuals over 249 SNPs "
      "the landscape holds many near-equivalent noise optima that can "
      "out-score the planted signal.\n");
  return 0;
}
