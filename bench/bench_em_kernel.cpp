// Compiled sparse EM kernel + CLUMP scan/Monte-Carlo rework, measured.
//
// Sections, each echoed to stdout and recorded in BENCH_em_kernel.json
// (the repo's machine-readable perf trajectory file):
//   1. equivalence — compiled EM must reproduce the reference fitness
//      bit-for-bit on random candidates (aborts on mismatch);
//   2. EM kernel   — reference vs compiled EH-DIALL time on 6-locus
//      candidates;
//   3. warm start  — pooled EM iterations, cold vs blended warm start;
//   4. Monte Carlo — CLUMP replicate wall time by worker count, with
//      the worker-invariance of the p-values asserted;
//   5. end-to-end  — an EM-dominated fitness evaluation (6-locus
//      candidates, Monte-Carlo trials on) through the seed-equivalent
//      baseline (visitor EM, per-column collapse_to_two T3/T4 scans,
//      serial Monte Carlo) vs the optimized pipeline of this PR
//      (compiled EM, warm-started pooled run, incremental 2×2 scans).
//      Acceptance floor: 3x.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_context.hpp"
#include "genomics/synthetic.hpp"
#include "stats/clump.hpp"
#include "stats/eh_diall.hpp"
#include "stats/em_kernel.hpp"
#include "stats/evaluator.hpp"
#include "stats/special.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace ldga;

// EM-dominated workload: a mid-size cohort where 6-locus candidates
// produce rich pattern tables (many het loci => wide phase fans).
const genomics::SyntheticDataset& cohort() {
  static const auto synthetic = [] {
    genomics::SyntheticConfig config;
    config.snp_count = 60;
    config.affected_count = 300;
    config.unaffected_count = 300;
    config.unknown_count = 0;
    config.active_snp_count = 4;
    Rng rng(2004);
    return genomics::generate_synthetic(config, rng);
  }();
  return synthetic;
}

std::vector<std::vector<genomics::SnpIndex>> candidates(std::uint32_t count,
                                                        std::uint32_t size,
                                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<genomics::SnpIndex>> result;
  result.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    result.push_back(rng.sample_without_replacement(
        cohort().dataset.genotypes().snp_count(), size));
  }
  return result;
}

// ---------------------------------------------------------------------
// Seed-equivalent CLUMP baseline: the pre-PR T3/T4 scans materialize a
// fresh 2-column table per candidate column, and the Monte-Carlo loop
// is serial on the caller's RNG. Kept here (not in the library) as the
// end-to-end comparison anchor.

double naive_best_single(const stats::ContingencyTable& table) {
  double best = 0.0;
  for (std::uint32_t c = 0; c < table.cols(); ++c) {
    best = std::max(
        best, table.collapse_to_two({c}).pearson_chi_square().statistic);
  }
  return best;
}

double naive_best_group(const stats::ContingencyTable& table) {
  double best = 0.0;
  std::uint32_t seed_col = 0;
  for (std::uint32_t c = 0; c < table.cols(); ++c) {
    const double chi =
        table.collapse_to_two({c}).pearson_chi_square().statistic;
    if (chi > best) {
      best = chi;
      seed_col = c;
    }
  }
  std::vector<std::uint32_t> group{seed_col};
  std::vector<bool> used(table.cols(), false);
  used[seed_col] = true;
  bool improved = true;
  while (improved && group.size() + 1 < table.cols()) {
    improved = false;
    double round_best = best;
    std::uint32_t round_col = 0;
    for (std::uint32_t c = 0; c < table.cols(); ++c) {
      if (used[c]) continue;
      group.push_back(c);
      const double chi =
          table.collapse_to_two(group).pearson_chi_square().statistic;
      group.pop_back();
      if (chi > round_best) {
        round_best = chi;
        round_col = c;
        improved = true;
      }
    }
    if (improved) {
      best = round_best;
      group.push_back(round_col);
      used[round_col] = true;
    }
  }
  return best;
}

/// Pre-PR-shaped CLUMP analysis: T1/T3/T4 observed + serial Monte
/// Carlo with per-replicate naive scans (T2 omitted: identical on both
/// sides of the end-to-end comparison and not part of the fitness).
double naive_clump_fitness(const stats::ContingencyTable& raw,
                           std::uint32_t trials, Rng& rng) {
  const stats::ContingencyTable table = raw.drop_empty_columns();
  const double t1 = table.pearson_chi_square().statistic;
  const double t3 = naive_best_single(table);
  const double t4 = naive_best_group(table);
  std::uint32_t ge = 0;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const stats::ContingencyTable null = table.sample_null(rng);
    if (null.pearson_chi_square().statistic >= t1) ++ge;
    benchmark::DoNotOptimize(naive_best_single(null) >= t3);
    benchmark::DoNotOptimize(naive_best_group(null) >= t4);
  }
  return t1 + static_cast<double>(ge) * 0.0;
}

// ---------------------------------------------------------------------

/// Bit-for-bit fitness equivalence, compiled vs reference EM, before
/// any timing: a fast wrong kernel is worthless.
void verify_equivalence(std::FILE* json) {
  stats::EvaluatorConfig reference_config;
  reference_config.compiled_em = false;
  const stats::HaplotypeEvaluator reference(cohort().dataset,
                                            reference_config);
  const stats::HaplotypeEvaluator compiled(cohort().dataset);
  Rng rng(20040426);
  std::uint32_t checked = 0;
  for (std::uint32_t size = 2; size <= 6; ++size) {
    for (std::uint32_t trial = 0; trial < 15; ++trial) {
      const auto snps = rng.sample_without_replacement(
          cohort().dataset.genotypes().snp_count(), size);
      const auto ref = reference.evaluate_full(snps);
      const auto fast = compiled.evaluate_full(snps);
      if (ref.fitness != fast.fitness || ref.lrt != fast.lrt ||
          ref.em_iterations_total != fast.em_iterations_total) {
        std::fprintf(stderr,
                     "FATAL: compiled/reference mismatch at size %u: "
                     "fitness %.17g vs %.17g, lrt %.17g vs %.17g\n",
                     size, fast.fitness, ref.fitness, fast.lrt, ref.lrt);
        std::exit(1);
      }
      ++checked;
    }
  }
  std::printf("equivalence: %u random candidates (sizes 2-6), compiled == "
              "reference bit-for-bit\n",
              checked);
  std::fprintf(json, "  \"equivalence_candidates_checked\": %u,\n", checked);
}

void report_em_kernel(std::FILE* json) {
  // Random synthetic candidates are the kernel's worst case: near
  // max-entropy tables reach almost every haplotype, so the support is
  // nearly dense and the win is bounded by the (bit-exactness-pinned)
  // E-step. It grows with candidate size as the reference's dense 2^k
  // bookkeeping starts to bite. Min over repetitions: this box is a
  // single shared core.
  for (const std::uint32_t size : {6u, 10u}) {
    const auto sets = candidates(20, size, 42);
    const stats::EhDiall reference(cohort().dataset, {}, false);
    const stats::EhDiall compiled(cohort().dataset, {}, true);
    double ref_ms = 1e300;
    double compiled_ms = 1e300;
    for (std::uint32_t rep = 0; rep < 5; ++rep) {
      Stopwatch ref_watch;
      for (const auto& snps : sets) {
        benchmark::DoNotOptimize(reference.analyze(snps).lrt);
      }
      ref_ms = std::min(ref_ms, ref_watch.elapsed_ms());
      Stopwatch compiled_watch;
      for (const auto& snps : sets) {
        benchmark::DoNotOptimize(compiled.analyze(snps).lrt);
      }
      compiled_ms = std::min(compiled_ms, compiled_watch.elapsed_ms());
    }
    std::printf("EH-DIALL (3 EM runs), %zu %u-locus candidates: reference "
                "%.1f ms, compiled %.1f ms — %.2fx\n",
                sets.size(), size, ref_ms, compiled_ms,
                ref_ms / compiled_ms);
    std::fprintf(json,
                 "  \"em_reference_ms_k%u\": %.3f,\n"
                 "  \"em_compiled_ms_k%u\": %.3f,\n"
                 "  \"em_speedup_k%u\": %.3f,\n",
                 size, ref_ms, size, compiled_ms, size,
                 ref_ms / compiled_ms);
  }
}

void report_warm_start(std::FILE* json) {
  const auto sets = candidates(30, 6, 43);
  const stats::EhDiall cold(cohort().dataset, {}, true, false);
  const stats::EhDiall warm(cohort().dataset, {}, true, true);
  std::uint64_t cold_iterations = 0;
  std::uint64_t warm_iterations = 0;
  std::uint32_t warm_used = 0;
  for (const auto& snps : sets) {
    cold_iterations += cold.analyze(snps).pooled.iterations;
    const auto result = warm.analyze(snps);
    warm_iterations += result.pooled.iterations;
    warm_used += result.pooled_warm_started ? 1 : 0;
  }
  std::printf("pooled EM warm start, %zu candidates: cold %llu iterations, "
              "warm %llu (%.0f%% saved, warm start used on %u/%zu)\n",
              sets.size(), static_cast<unsigned long long>(cold_iterations),
              static_cast<unsigned long long>(warm_iterations),
              100.0 * (1.0 - static_cast<double>(warm_iterations) /
                                 static_cast<double>(cold_iterations)),
              warm_used, sets.size());
  std::fprintf(json,
               "  \"pooled_cold_iterations\": %llu,\n"
               "  \"pooled_warm_iterations\": %llu,\n"
               "  \"pooled_warm_start_used\": %u,\n",
               static_cast<unsigned long long>(cold_iterations),
               static_cast<unsigned long long>(warm_iterations), warm_used);
}

void report_monte_carlo(std::FILE* json) {
  const stats::EhDiall eh(cohort().dataset);
  const auto snps = candidates(1, 6, 44).front();
  const auto table = eh.analyze(snps).to_contingency_table();

  std::fprintf(json, "  \"monte_carlo_ms_by_workers\": {");
  double p1 = -1.0;
  bool first = true;
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    stats::ClumpConfig config;
    config.monte_carlo_trials = 400;
    config.monte_carlo_workers = workers;
    const stats::Clump clump(config);
    Rng rng(2026);
    Stopwatch watch;
    const auto result = clump.analyze(table, rng);
    const double ms = watch.elapsed_ms();
    const double p = *result.t4.p_monte_carlo;
    if (p1 < 0.0) {
      p1 = p;
    } else if (p != p1) {
      std::fprintf(stderr,
                   "FATAL: Monte-Carlo p-value depends on worker count\n");
      std::exit(1);
    }
    std::printf("CLUMP Monte Carlo, 400 trials, %u worker(s): %.1f ms "
                "(T4 p = %.4f)\n",
                workers, ms, p);
    std::fprintf(json, "%s\"%u\": %.3f", first ? "" : ", ", workers, ms);
    first = false;
  }
  std::fprintf(json, "},\n");
}

void report_end_to_end(std::FILE* json) {
  const auto sets = candidates(8, 6, 45);
  constexpr std::uint32_t kTrials = 300;

  // Baseline: visitor EM, naive per-column collapse scans, serial MC.
  const stats::EhDiall baseline_eh(cohort().dataset, {}, false);
  Stopwatch baseline_watch;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const auto eh = baseline_eh.analyze(sets[i]);
    Rng rng(1000 + i);
    benchmark::DoNotOptimize(
        naive_clump_fitness(eh.to_contingency_table(), kTrials, rng));
  }
  const double baseline_ms = baseline_watch.elapsed_ms();

  // Optimized: compiled EM + warm-started pooled run + incremental 2×2
  // scans (+ pooled Monte-Carlo workers where the hardware has them).
  const stats::EhDiall optimized_eh(cohort().dataset, {}, true, true);
  stats::ClumpConfig clump_config;
  clump_config.monte_carlo_trials = kTrials;
  clump_config.monte_carlo_workers = 0;  // hardware concurrency
  const stats::Clump optimized_clump(clump_config);
  Stopwatch optimized_watch;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const auto eh = optimized_eh.analyze(sets[i]);
    Rng rng(1000 + i);
    benchmark::DoNotOptimize(
        optimized_clump.analyze(eh.to_contingency_table(), rng)
            .t1.statistic);
  }
  const double optimized_ms = optimized_watch.elapsed_ms();

  const double speedup = baseline_ms / optimized_ms;
  std::printf("end-to-end fitness evaluation (6-locus, %u MC trials, %zu "
              "candidates): baseline %.1f ms, optimized %.1f ms — %.2fx "
              "(acceptance floor: 3x)\n",
              kTrials, sets.size(), baseline_ms, optimized_ms, speedup);
  std::fprintf(json,
               "  \"end_to_end_baseline_ms\": %.3f,\n"
               "  \"end_to_end_optimized_ms\": %.3f,\n"
               "  \"end_to_end_speedup\": %.3f\n",
               baseline_ms, optimized_ms, speedup);
  if (speedup < 3.0) {
    std::fprintf(stderr, "WARNING: end-to-end speedup below the 3x floor\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Compiled sparse EM kernel vs visitor reference ===\n\n");
  std::FILE* json = std::fopen("BENCH_em_kernel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_em_kernel.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  ldga::bench::write_machine_context(json);
  std::fprintf(
      json,
      "  \"workload\": \"60 SNPs, 300+300 individuals, 6-locus candidates\","
      "\n");
  verify_equivalence(json);
  report_em_kernel(json);
  report_warm_start(json);
  report_monte_carlo(json);
  report_end_to_end(json);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_em_kernel.json\n");
  return 0;
}
