// Regenerates the §5.2 scheme ablation: "we tested the following
// schemes: without and with the random immigrant; without and with the
// reduction and the augmentation mutation; without and with the
// inter-population crossover. It appeared that mechanisms that link
// subpopulations are efficient and allow to find better solutions."
//
// Five arms, each run several times on the same 51-SNP cohort with the
// same per-run evaluation budget; we report the mean best fitness per
// size and the mean summed best, so "who wins" is directly comparable.
#include <cstdio>
#include <string>
#include <vector>

#include "ga/engine.hpp"
#include "genomics/synthetic.hpp"
#include "stats/evaluator.hpp"
#include "util/numeric.hpp"
#include "util/table_format.hpp"

int main() {
  using namespace ldga;

  std::printf("=== Paper section 5.2: scheme ablation (8 runs per arm) "
              "===\n\n");

  genomics::SyntheticConfig data_config;
  data_config.snp_count = 51;
  data_config.affected_count = 53;
  data_config.unaffected_count = 53;
  data_config.unknown_count = 70;
  data_config.active_snp_count = 3;
  Rng data_rng(819);
  const auto synthetic = genomics::generate_synthetic(data_config, data_rng);
  const stats::HaplotypeEvaluator evaluator(synthetic.dataset);

  struct Arm {
    std::string name;
    ga::GaSchemes schemes;
    ga::AllocationPolicy allocation = ga::AllocationPolicy::LogSearchSpace;
  };
  std::vector<Arm> arms;
  {
    Arm full{"full scheme", ga::GaSchemes::full()};
    arms.push_back(full);

    Arm no_ri = full;
    no_ri.name = "- random immigrants";
    no_ri.schemes.random_immigrants = false;
    arms.push_back(no_ri);

    Arm no_size = full;
    no_size.name = "- reduction/augmentation";
    no_size.schemes.size_mutations = false;
    arms.push_back(no_size);

    Arm no_inter = full;
    no_inter.name = "- inter-pop crossover";
    no_inter.schemes.inter_population_crossover = false;
    arms.push_back(no_inter);

    Arm no_adapt = full;
    no_adapt.name = "- adaptation (fixed rates)";
    no_adapt.schemes.adaptive_mutation = false;
    no_adapt.schemes.adaptive_crossover = false;
    arms.push_back(no_adapt);

    Arm uniform_alloc = full;
    uniform_alloc.name = "- log-space allocation (uniform)";
    uniform_alloc.allocation = ga::AllocationPolicy::Uniform;
    arms.push_back(uniform_alloc);

    Arm baseline{"baseline (all off)", ga::GaSchemes::baseline()};
    arms.push_back(baseline);
  }

  constexpr std::uint32_t kRuns = 8;
  constexpr std::uint64_t kBudget = 6'000;  // evaluations per run

  TextTable table({"Scheme", "mean best s3", "mean best s4", "mean best s5",
                   "mean best s6", "mean summed best"});

  for (const Arm& arm : arms) {
    std::vector<RunningStats> per_size(5);
    RunningStats summed;
    for (std::uint32_t run = 0; run < kRuns; ++run) {
      // Fresh evaluator per run so the shared cache cannot leak budget
      // across arms (each arm pays the same evaluation cost).
      const stats::HaplotypeEvaluator fresh(synthetic.dataset);
      ga::GaConfig config;
      config.population_size = 150;
      config.stagnation_generations = 100;
      config.max_generations = 400;
      config.max_evaluations = kBudget;
      config.schemes = arm.schemes;
      config.allocation = arm.allocation;
      config.seed = 4000 + run;
      ga::GaEngine engine(fresh, config,
                          stats::make_thread_pool_backend(fresh));
      const ga::GaResult result = engine.run();
      double sum = 0.0;
      for (std::uint32_t s = 0; s < 5; ++s) {
        const double best = result.best_by_size[s].fitness();
        per_size[s].add(best);
        sum += best;
      }
      summed.add(sum);
    }
    table.add_row({arm.name, TextTable::num(per_size[1].mean(), 2),
                   TextTable::num(per_size[2].mean(), 2),
                   TextTable::num(per_size[3].mean(), 2),
                   TextTable::num(per_size[4].mean(), 2),
                   TextTable::num(summed.mean(), 2)});
    std::printf("finished arm: %s\n", arm.name.c_str());
  }

  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\npaper reference shape: the full scheme dominates; removing the "
      "subpopulation-linking mechanisms (reduction/augmentation, "
      "inter-population crossover) hurts most, and random immigrants "
      "help when the search stalls.\n");
  return 0;
}
